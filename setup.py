"""Setup shim for environments without PEP 517 build isolation (offline).

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-use-pep517`` works on machines that lack the
``wheel`` package.
"""

from setuptools import setup

setup()
