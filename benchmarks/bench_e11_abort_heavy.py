"""E11 — abort-path cost: incremental undo vs full-history replay.

The event-driven engine repairs object states after an abort with
per-transaction undo segments (roll the touched objects back to the
pre-subtree snapshot, re-apply the surviving suffix) instead of replaying
the entire step log from the initial states.  This experiment drives an
abort-heavy hot-spot workload — NTO restarts aggressively under
contention — under both strategies and times the runs.  Scheduling
decisions are independent of the undo strategy, so both rows commit the
same transactions and abort the same attempts; only the abort-path cost
differs.

Each sweep also appends a ``BENCH_e11_abort_heavy.json`` file next to this
module (schema: ``{"experiment", "rows": [...]}``) so the repository's
performance trajectory is recorded run over run.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.scheduler import make_scheduler
from repro.simulation import HotspotWorkload, SimulationEngine

from .harness import append_bench_rows, print_experiment

COLUMNS = [
    "undo", "wall_seconds", "aborts", "wasted_steps", "local_steps",
    "makespan", "committed", "gave_up",
]

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e11_abort_heavy.json"


def _workload() -> HotspotWorkload:
    return HotspotWorkload(
        transactions=32,
        hot_objects=2,
        cold_objects=8,
        operations_per_transaction=3,
        hot_probability=0.7,
        seed=1111,
    )


def run_configuration(undo: str) -> dict:
    base, specs = _workload().build()
    engine = SimulationEngine(base, make_scheduler("nto"), seed=1111, undo=undo)
    engine.submit_all(specs)
    started = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - started
    metrics = result.metrics
    return {
        "experiment": "e11_abort_heavy",
        "scheduler": "nto",
        "undo": undo,
        "wall_seconds": round(elapsed, 6),
        "aborts": metrics.aborted_attempts,
        "wasted_steps": metrics.wasted_steps,
        "local_steps": metrics.local_steps,
        "makespan": metrics.total_ticks,
        "committed": metrics.committed,
        "gave_up": metrics.gave_up,
    }


def run_experiment() -> list[dict]:
    return [run_configuration(undo) for undo in ("replay", "incremental")]


def write_bench_json(rows: list[dict], path: Path = BENCH_JSON) -> None:
    """Append this sweep's rows to the recorded trajectory."""
    append_bench_rows(path, "e11_abort_heavy", rows)


def test_e11_abort_heavy(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E11: abort path — full replay vs incremental undo", rows, COLUMNS)
    write_bench_json(rows)
    by_undo = {row["undo"]: row for row in rows}
    # The strategy must not change the run itself, only its cost.
    for key in ("aborts", "wasted_steps", "local_steps", "makespan", "committed", "gave_up"):
        assert by_undo["replay"][key] == by_undo["incremental"][key]
    assert by_undo["replay"]["aborts"] > 0, "the workload must be abort-heavy"


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    experiment_rows = run_experiment()
    print_experiment("E11: abort path — full replay vs incremental undo", experiment_rows, COLUMNS)
    write_bench_json(experiment_rows)
