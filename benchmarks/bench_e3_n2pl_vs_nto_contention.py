"""E3 — blocking (N2PL) vs restarting (NTO) across a contention sweep.

Paper context (Section 5): both algorithms are correct; they differ in how
they resolve conflicts — N2PL delays and may deadlock, NTO aborts and
restarts.  We sweep the hot-spot probability and report makespan, blocking
and abort behaviour for both, via a declarative
:class:`~repro.sweep.spec.SweepSpec`.
"""

from __future__ import annotations

from repro.sweep import Axis, ScenarioSpec, SweepSpec

from .harness import print_experiment, run_sweep_rows

HOT_PROBABILITIES = [0.1, 0.5, 0.9]
SCHEDULERS = ["n2pl", "nto", "n2pl-step", "nto-step"]
COLUMNS = ["hot_probability", "scheduler", "makespan", "blocked_ticks", "aborts", "deadlocks", "ts_aborts", "serialisable"]

SWEEP = SweepSpec(
    name="e3_n2pl_vs_nto_contention",
    base=ScenarioSpec(
        workload="hotspot",
        scheduler="n2pl",
        seed=303,
        workload_params={
            "transactions": 16,
            "hot_objects": 2,
            "cold_objects": 24,
            "operations_per_transaction": 3,
            "seed": 303,
        },
    ),
    axes=(
        Axis("hot_probability", HOT_PROBABILITIES, target="workload_params.hot_probability"),
        Axis("scheduler", SCHEDULERS),
    ),
)


def run_experiment() -> list[dict]:
    return run_sweep_rows(SWEEP)


def test_e3_n2pl_vs_nto_contention(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E3: N2PL (blocking) vs NTO (restarting) under contention", rows, COLUMNS)
    for row in rows:
        if row["scheduler"].startswith("nto"):
            assert row["blocked_ticks"] == 0
            assert row["deadlocks"] == 0
        else:
            assert row["ts_aborts"] == 0
    assert all(row["serialisable"] for row in rows)
