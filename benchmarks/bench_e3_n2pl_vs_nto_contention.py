"""E3 — blocking (N2PL) vs restarting (NTO) across a contention sweep.

Paper context (Section 5): both algorithms are correct; they differ in how
they resolve conflicts — N2PL delays and may deadlock, NTO aborts and
restarts.  We sweep the hot-spot probability and report makespan, blocking
and abort behaviour for both.
"""

from __future__ import annotations

from repro.simulation import HotspotWorkload

from .harness import print_experiment, run_configuration

HOT_PROBABILITIES = [0.1, 0.5, 0.9]
SCHEDULERS = ["n2pl", "nto", "n2pl-step", "nto-step"]
COLUMNS = ["hot_probability", "scheduler", "makespan", "blocked_ticks", "aborts", "deadlocks", "ts_aborts", "serialisable"]


def run_experiment() -> list[dict]:
    rows = []
    for hot_probability in HOT_PROBABILITIES:
        for scheduler_name in SCHEDULERS:
            workload = HotspotWorkload(
                transactions=16, hot_objects=2, cold_objects=24,
                operations_per_transaction=3, hot_probability=hot_probability, seed=303,
            )
            row = run_configuration(workload, scheduler_name, seed=303)
            row["hot_probability"] = hot_probability
            rows.append(row)
    return rows


def test_e3_n2pl_vs_nto_contention(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E3: N2PL (blocking) vs NTO (restarting) under contention", rows, COLUMNS)
    for row in rows:
        if row["scheduler"].startswith("nto"):
            assert row["blocked_ticks"] == 0
            assert row["deadlocks"] == 0
        else:
            assert row["ts_aborts"] == 0
    assert all(row["serialisable"] for row in rows)
