"""Shared helpers for the experiment benchmarks (E1-E14).

The paper has no numeric tables or figures, so every benchmark regenerates
one of its comparative claims (see the experiment index in ``DESIGN.md``).
Each ``bench_eN_*`` module defines a ``run_experiment()`` function that
returns the experiment's rows and a pytest-benchmark test that times one
full sweep and prints the table (visible with
``pytest benchmarks/ --benchmark-only -s``).

Since PR 3 the parameter grids themselves are declarative: the sweep
experiments (E1, E3, E5, E8, E9, E13, E14) define a
:class:`~repro.sweep.spec.SweepSpec` and drive it through
:func:`run_sweep_rows`; their row shapes are unchanged.
:func:`run_configuration` remains for experiments that build bespoke
workload instances in-process, and delegates its row assembly to the same
:func:`repro.sweep.runner.summarise_run` the sweep runner uses, so every
experiment reports identical columns.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.analysis import format_table
from repro.scheduler import make_scheduler
from repro.simulation import SimulationEngine
from repro.sweep import SweepRunner, SweepSpec, summarise_run

__all__ = [
    "append_bench_rows",
    "run_configuration",
    "run_sweep_rows",
    "print_experiment",
    "format_table",
]


def run_configuration(
    workload,
    scheduler_name: str,
    *,
    seed: int = 0,
    certify: bool = True,
    scheduler_kwargs: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run one workload instance under one scheduler and summarise the outcome."""
    base, specs = workload.build()
    scheduler = make_scheduler(scheduler_name, **(scheduler_kwargs or {}))
    engine = SimulationEngine(base, scheduler, seed=seed)
    engine.submit_all(specs)
    result = engine.run()
    return summarise_run(result, scheduler_name, certify=certify)


def run_sweep_rows(sweep: SweepSpec, *, workers: int = 0) -> list[dict[str, Any]]:
    """Execute a declarative sweep and return its metrics rows in grid order."""
    return SweepRunner(sweep, workers=workers).run_rows()


def print_experiment(title: str, rows: list[dict[str, Any]], columns: list[str]) -> None:
    """Print one experiment's table (shown under ``pytest -s``)."""
    print()
    print(format_table(rows, columns, title=title))


def append_bench_rows(path: Path, experiment: str, rows: list[dict[str, Any]]) -> None:
    """Append rows to a ``BENCH_*.json`` trajectory file.

    The file holds ``{"experiment": <name>, "rows": [...]}``; the first
    recorded rows are the committed baseline and later sweeps append, so
    the repository's performance trajectory accumulates run over run.  An
    unreadable file is treated as empty rather than discarding the new
    measurement.
    """
    recorded: list[dict[str, Any]] = []
    if path.exists():
        try:
            recorded = json.loads(path.read_text()).get("rows", [])
        except (ValueError, AttributeError):
            recorded = []
    recorded.extend(rows)
    path.write_text(
        json.dumps({"experiment": experiment, "rows": recorded}, indent=2) + "\n"
    )
