"""Shared helpers for the experiment benchmarks (E1-E11).

The paper has no numeric tables or figures, so every benchmark regenerates
one of its comparative claims (see the experiment index in ``DESIGN.md``).
Each ``bench_eN_*`` module defines a ``run_experiment()`` function that
returns the experiment's rows and a pytest-benchmark test that times one
full sweep and prints the table (visible with
``pytest benchmarks/ --benchmark-only -s``).
"""

from __future__ import annotations

from typing import Any

from repro.analysis import certify_run, format_table
from repro.scheduler import make_scheduler
from repro.simulation import SimulationEngine

__all__ = ["run_configuration", "print_experiment", "format_table"]


def run_configuration(
    workload,
    scheduler_name: str,
    *,
    seed: int = 0,
    certify: bool = True,
    scheduler_kwargs: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run one workload under one scheduler and summarise the outcome."""
    base, specs = workload.build()
    scheduler = make_scheduler(scheduler_name, **(scheduler_kwargs or {}))
    engine = SimulationEngine(base, scheduler, seed=seed)
    engine.submit_all(specs)
    result = engine.run()
    metrics = result.metrics
    row: dict[str, Any] = {
        "scheduler": scheduler_name,
        "committed": metrics.committed,
        "aborts": metrics.aborted_attempts,
        "deadlocks": metrics.aborts_by_reason.get("deadlock", 0),
        "ts_aborts": metrics.aborts_by_reason.get("timestamp", 0),
        "validation_aborts": metrics.aborts_by_reason.get("validation", 0),
        "cascade_aborts": metrics.aborts_by_reason.get("cascade", 0),
        "inter_object_aborts": metrics.aborts_by_reason.get("inter-object", 0),
        "makespan": metrics.total_ticks,
        "blocked_ticks": metrics.blocked_ticks,
        "blocked_fraction": metrics.blocked_fraction,
        "parks": metrics.parks,
        "wakes": metrics.wakes,
        "wait_ticks": metrics.wait_ticks,
        "wasted_fraction": metrics.wasted_fraction,
        "throughput": metrics.throughput,
    }
    if certify:
        report = certify_run(result, check_legality=False)
        row["serialisable"] = report.serialisable
    return row


def print_experiment(title: str, rows: list[dict[str, Any]], columns: list[str]) -> None:
    """Print one experiment's table (shown under ``pytest -s``)."""
    print()
    print(format_table(rows, columns, title=title))
