"""E8 — deadlock behaviour of blocking protocols vs deadlock-free NTO.

Paper context (Section 5): N2PL blocks and therefore may deadlock; NTO
resolves conflicts by aborting, so it never deadlocks.  We sweep contention
and report the deadlock counts of the blocking schedulers next to the
timestamp-abort counts of NTO, via a declarative
:class:`~repro.sweep.spec.SweepSpec`.
"""

from __future__ import annotations

from repro.sweep import Axis, ScenarioSpec, SweepSpec

from .harness import print_experiment, run_sweep_rows

HOT_PROBABILITIES = [0.2, 0.6, 0.9]
SCHEDULERS = ["n2pl", "single-active", "nto"]
COLUMNS = ["hot_probability", "scheduler", "deadlocks", "ts_aborts", "aborts", "makespan", "serialisable"]

SWEEP = SweepSpec(
    name="e8_deadlock_rates",
    base=ScenarioSpec(
        workload="hotspot",
        scheduler="n2pl",
        seed=707,
        workload_params={
            "transactions": 14,
            "hot_objects": 2,
            "cold_objects": 20,
            "operations_per_transaction": 4,
            "seed": 707,
        },
    ),
    axes=(
        Axis("hot_probability", HOT_PROBABILITIES, target="workload_params.hot_probability"),
        Axis("scheduler", SCHEDULERS),
    ),
)


def run_experiment() -> list[dict]:
    return run_sweep_rows(SWEEP)


def test_e8_deadlock_rates(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E8: deadlocks under contention (blocking vs restarting)", rows, COLUMNS)
    nto_rows = [row for row in rows if row["scheduler"] == "nto"]
    assert all(row["deadlocks"] == 0 for row in nto_rows)
    n2pl_rows = [row for row in rows if row["scheduler"] == "n2pl"]
    assert n2pl_rows[-1]["deadlocks"] >= n2pl_rows[0]["deadlocks"]
    assert all(row["serialisable"] for row in rows)
