"""E5 — per-object synchronisation choices on a heterogeneous object base.

Paper claim (Sections 2 and 5.3): letting each object use the algorithm
best suited to its semantics (B-tree key locking for the catalogue,
step-level queue locking, commuting counter updates) enhances concurrency
relative to treating every object uniformly and coarsely, while the
inter-object conditions of Theorem 5 keep the run serialisable.

The three configurations are coupled scheduler+kwargs choices, so the
sweep uses explicit :class:`~repro.sweep.spec.AxisPoint` overrides; the
modular configuration asks the built workload for its per-object strategy
map in-worker (``modular_strategy_from_workload``).
"""

from __future__ import annotations

from repro.sweep import Axis, AxisPoint, ScenarioSpec, SweepSpec

from .harness import print_experiment, run_sweep_rows

COLUMNS = ["configuration", "makespan", "blocked_ticks", "blocked_fraction", "aborts", "throughput", "serialisable"]

SWEEP = SweepSpec(
    name="e5_modular_vs_uniform",
    base=ScenarioSpec(
        workload="mixed",
        scheduler="single-active",
        seed=404,
        workload_params={"customers": 8, "transactions": 24, "seed": 404},
    ),
    axes=(
        Axis(
            "configuration",
            (
                AxisPoint(
                    "single-active (coarse baseline)",
                    {"scheduler": "single-active"},
                ),
                AxisPoint(
                    "uniform n2pl (operation locks)",
                    {"scheduler": "n2pl"},
                ),
                AxisPoint(
                    "modular: per-object algorithms + Theorem 5 coordinator",
                    {"scheduler": "modular", "modular_strategy_from_workload": True},
                ),
            ),
        ),
    ),
)


def run_experiment() -> list[dict]:
    return run_sweep_rows(SWEEP)


def test_e5_modular_vs_uniform(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E5: heterogeneous per-object synchronisation (order-processing base)", rows, COLUMNS)
    coarse, uniform, modular = rows
    # Waiting no longer consumes ticks: the heterogeneous per-object mix
    # shows its concurrency win as a smaller share of the run spent parked
    # than the coarse one-method-per-object baseline.
    assert modular["blocked_fraction"] < coarse["blocked_fraction"]
    assert all(row["serialisable"] for row in rows)
