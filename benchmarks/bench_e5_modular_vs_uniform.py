"""E5 — per-object synchronisation choices on a heterogeneous object base.

Paper claim (Sections 2 and 5.3): letting each object use the algorithm
best suited to its semantics (B-tree key locking for the catalogue,
step-level queue locking, commuting counter updates) enhances concurrency
relative to treating every object uniformly and coarsely, while the
inter-object conditions of Theorem 5 keep the run serialisable.
"""

from __future__ import annotations

from repro.simulation import MixedWorkload

from .harness import print_experiment, run_configuration

COLUMNS = ["configuration", "makespan", "blocked_ticks", "blocked_fraction", "aborts", "throughput", "serialisable"]


def run_experiment() -> list[dict]:
    rows = []
    workload_seed = 404
    configurations = [
        ("single-active (coarse baseline)", "single-active", {}),
        ("uniform n2pl (operation locks)", "n2pl", {}),
        ("modular: per-object algorithms + Theorem 5 coordinator", "modular", None),
    ]
    for label, scheduler_name, kwargs in configurations:
        workload = MixedWorkload(customers=8, transactions=24, seed=workload_seed)
        if kwargs is None:
            kwargs = {"per_object_strategy": workload.modular_strategy_map()}
        row = run_configuration(workload, scheduler_name, seed=workload_seed, scheduler_kwargs=kwargs)
        row["configuration"] = label
        rows.append(row)
    return rows


def test_e5_modular_vs_uniform(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E5: heterogeneous per-object synchronisation (order-processing base)", rows, COLUMNS)
    coarse, uniform, modular = rows
    # Waiting no longer consumes ticks: the heterogeneous per-object mix
    # shows its concurrency win as a smaller share of the run spent parked
    # than the coarse one-method-per-object baseline.
    assert modular["blocked_fraction"] < coarse["blocked_fraction"]
    assert all(row["serialisable"] for row in rows)
