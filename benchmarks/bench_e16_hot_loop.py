"""E16 — hot-loop throughput: the event-driven engine against its own history.

Every benchmark before this one measured *policies* (which scheduler wins,
how restart policies recover).  E16 measures the *engine*: how many
scheduling decisions per second the hot loop can resolve on the E15
hotspot configuration, closed and streamed, across the three headline
schedulers.  It exists to lock in the PR-6 raw-speed pass (ROADMAP item
3): the ready queue that made ``_choose_frame`` O(1), the unified event
heap that made idle-tick handling a single heap probe, the slotted record
types, and the O(1) ``HistoryBuilder`` step index that killed the
quadratic ``_find_step`` scan.

Three kinds of rows accumulate in ``BENCH_e16_hot_loop.json``:

* ``engine="pre_pr"`` — the committed pre-optimisation baseline, recorded
  once (``python -m benchmarks.bench_e16_hot_loop --record-baseline``)
  before the hot-loop rewrite landed.  The bench asserts the current
  engine clears **5x** its ``decisions_per_second`` on every
  configuration (the acceptance floor; the measured factor is recorded in
  ``speedup_vs_baseline``).  This is a same-machine comparison when the
  trajectory is regenerated locally and a cross-machine one in CI, which
  is why the hard gate lives on the in-run ratio below.
* ``engine="event"`` — the current engine.  Each row also times the same
  scenario under ``hot_loop="scan"`` — the retained pre-PR frame-choice
  strategy (per-tick frame scan, per-probe list allocations) — in the
  same process, and records the *in-run* ``speedup_scan`` ratio, which is
  machine-independent the way E12's speedups are.  ``compare_bench.py``
  watches it (with a wall-clock noise floor) so the ready-queue gain can
  never silently regress.
* the two runs must be **bit-identical**: the scan engine is the oracle
  for the ready queue and event heap, and every machine-independent
  column is asserted equal before a row is accepted.

``REPRO_E16_TXNS`` / ``REPRO_E16_ARRIVALS`` shorten the scenarios for
local iteration; shortened runs are never appended to the trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.scheduler import make_scheduler
from repro.simulation import SimulationEngine
from repro.simulation.workloads import make_workload

from .harness import append_bench_rows, print_experiment

COLUMNS = [
    "scheduler", "mode", "engine", "transactions", "decisions", "makespan",
    "committed", "commit_rate", "wall_seconds", "decisions_per_second",
    "ticks_per_second", "speedup_scan", "speedup_vs_baseline",
]

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e16_hot_loop.json"

#: Closed-batch size (the E15 hotspot workload submitted at tick 0: every
#: transaction in flight at once, so frame choice is under maximum load).
DEFAULT_TXNS = 300
#: Streamed size at the near-capacity E15 arrival point (lambda = 0.055).
DEFAULT_ARRIVALS = 2000
STREAM_RATE = 0.055

TXNS = int(os.environ.get("REPRO_E16_TXNS", DEFAULT_TXNS))
ARRIVALS = int(os.environ.get("REPRO_E16_ARRIVALS", DEFAULT_ARRIVALS))
#: Timing repeats per configuration; the best (minimum) wall is kept, which
#: filters scheduler-noise spikes out of sub-second measurements.
REPEATS = max(1, int(os.environ.get("REPRO_E16_REPEATS", 2)))

SEED = 1515
SCHEDULERS = ("n2pl", "nto-step", "certifier")

#: Acceptance floor: decisions/second versus the recorded pre-PR baseline.
BASELINE_SPEEDUP_FLOOR = 5.0

#: Floor on the in-run event/scan ratio: the event loop must stay within
#: timing jitter of the scan loop even where the ready set is tiny (it
#: beats it clearly wherever frame choice actually costs something).
SCAN_SPEEDUP_FLOOR = 0.9

#: Columns that must be bit-identical between the event and scan engines
#: (pure functions of the spec; wall-clock columns are excluded).
DETERMINISTIC_COLUMNS = (
    "transactions", "decisions", "makespan", "committed", "commit_rate",
)


def _build_engine(scheduler: str, mode: str, size: int, hot_loop: str | None):
    workload = make_workload(
        "hotspot",
        transactions=size,
        hot_objects=2,
        cold_objects=128,
        operations_per_transaction=2,
        hot_probability=0.05,
        use_service_layer=False,
        seed=SEED,
    )
    base, specs = workload.build()
    engine_kwargs = {} if hot_loop is None else {"hot_loop": hot_loop}
    engine = SimulationEngine(
        base,
        make_scheduler(scheduler, restart_policy="backoff"),
        seed=SEED,
        **engine_kwargs,
    )
    if mode == "stream":
        engine.submit_stream(specs, {"name": "poisson", "rate": STREAM_RATE})
    else:
        engine.submit_all(specs)
    return engine


def measure(scheduler: str, mode: str, *, hot_loop: str | None = None) -> dict:
    """Run one configuration and report its throughput row.

    ``hot_loop=None`` omits the engine kwarg entirely, so the function can
    also drive engines that predate the parameter (how the ``pre_pr``
    baseline was recorded).  The scenario runs ``REPEATS`` times (engines
    are single-use, so each timing gets a fresh engine) and the fastest
    wall is reported; every run computes identical results, so only the
    timing varies.
    """
    size = ARRIVALS if mode == "stream" else TXNS
    wall = float("inf")
    for _ in range(REPEATS):
        engine = _build_engine(scheduler, mode, size, hot_loop)
        started = time.perf_counter()
        result = engine.run()
        wall = min(wall, time.perf_counter() - started)
    metrics = result.metrics
    decisions = getattr(metrics, "decisions", metrics.total_ticks)
    return {
        "experiment": "e16_hot_loop",
        "scheduler": scheduler,
        "mode": mode,
        "engine": hot_loop or "event",
        "transactions": size,
        "decisions": decisions,
        "makespan": metrics.total_ticks,
        "committed": metrics.committed,
        "commit_rate": metrics.commit_rate,
        "wall_seconds": wall,
        "decisions_per_second": decisions / max(wall, 1e-9),
        "ticks_per_second": metrics.total_ticks / max(wall, 1e-9),
    }


def _baseline_decisions_per_second(path: Path = BENCH_JSON) -> dict[tuple, float]:
    """The recorded pre-PR ``decisions_per_second`` per (scheduler, mode)."""
    if not path.exists():
        return {}
    try:
        rows = json.loads(path.read_text()).get("rows", [])
    except ValueError:
        return {}
    baselines: dict[tuple, float] = {}
    for row in rows:
        if row.get("engine") != "pre_pr":
            continue
        key = (row.get("scheduler"), row.get("mode"))
        if key not in baselines and isinstance(row.get("decisions_per_second"), (int, float)):
            baselines[key] = row["decisions_per_second"]
    return baselines


def run_experiment() -> list[dict]:
    """Measure every configuration under both hot-loop strategies."""
    baselines = _baseline_decisions_per_second()
    rows: list[dict] = []
    for mode in ("closed", "stream"):
        for scheduler in SCHEDULERS:
            event_row = measure(scheduler, mode, hot_loop="event")
            scan_row = measure(scheduler, mode, hot_loop="scan")
            for column in DETERMINISTIC_COLUMNS:
                assert event_row[column] == scan_row[column], (
                    f"{scheduler}/{mode}: event and scan engines diverged on "
                    f"{column}: {event_row[column]!r} != {scan_row[column]!r}"
                )
            event_row["speedup_scan"] = (
                event_row["decisions_per_second"] / max(scan_row["decisions_per_second"], 1e-9)
            )
            event_row["wall_seconds_scan"] = scan_row["wall_seconds"]
            baseline = baselines.get((scheduler, mode))
            event_row["speedup_vs_baseline"] = (
                event_row["decisions_per_second"] / baseline if baseline else None
            )
            rows.append(event_row)
    return rows


def record_baseline() -> list[dict]:
    """Record the pre-optimisation rows (run once, before the rewrite)."""
    rows = [
        measure(scheduler, mode)
        for mode in ("closed", "stream")
        for scheduler in SCHEDULERS
    ]
    for row in rows:
        row["engine"] = "pre_pr"
    if _full_size(rows):
        append_bench_rows(BENCH_JSON, "e16_hot_loop", rows)
    return rows


def _full_size(rows: list[dict]) -> bool:
    return all(
        row["transactions"] == (DEFAULT_ARRIVALS if row["mode"] == "stream" else DEFAULT_TXNS)
        for row in rows
    )


def write_bench_json(rows: list[dict], path: Path = BENCH_JSON) -> None:
    """Append full-size sweeps to the trajectory (shortened runs never)."""
    if rows and _full_size(rows):
        append_bench_rows(path, "e16_hot_loop", rows)


def test_e16_hot_loop(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E16: hot-loop decision throughput", rows, COLUMNS)
    write_bench_json(rows)
    for row in rows:
        label = f"{row['scheduler']}/{row['mode']}"
        assert row["committed"] == row["transactions"], (
            f"{label}: only {row['committed']}/{row['transactions']} commits"
        )
        # The acceptance gate: >=5x decision throughput over the recorded
        # pre-PR baseline (the measured factor is ~an order of magnitude;
        # the floor absorbs machine variance between the recording host
        # and CI runners).
        speedup = row["speedup_vs_baseline"]
        if speedup is not None:
            assert speedup >= BASELINE_SPEEDUP_FLOOR, (
                f"{label}: decision throughput only {speedup:.1f}x the "
                f"recorded pre-PR baseline (floor {BASELINE_SPEEDUP_FLOOR}x)"
            )
        # The event-driven loop must never lose to the retained scan loop.
        # Low-contention stream runs finish in ~0.5s, where both loops are
        # within each other's timing jitter; the floor leaves ~10% of noise
        # headroom (compare_bench watches the recorded ratio trend with the
        # same tolerance).
        assert row["speedup_scan"] >= SCAN_SPEEDUP_FLOOR, (
            f"{label}: event loop slower than the legacy scan "
            f"({row['speedup_scan']:.2f}x, floor {SCAN_SPEEDUP_FLOOR}x)"
        )


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    import sys

    if "--record-baseline" in sys.argv:
        baseline_rows = record_baseline()
        print_experiment("E16: pre-PR baseline", baseline_rows, COLUMNS[:11])
    else:
        experiment_rows = run_experiment()
        print_experiment("E16: hot-loop decision throughput", experiment_rows, COLUMNS)
        write_bench_json(experiment_rows)
