"""E2 — step-level (return-value aware) conflicts admit more concurrency.

Paper claim (Section 5.1): locking steps rather than operations lets an
Enqueue coexist with Dequeues of other items.  We run the producer/consumer
queue workload under both granularities of N2PL and NTO.
"""

from __future__ import annotations

from repro.simulation import QueueWorkload

from .harness import print_experiment, run_configuration

CONFIGURATIONS = ["n2pl", "n2pl-step", "nto", "nto-step"]
DEPTHS = [4, 12]
COLUMNS = ["initial_depth", "scheduler", "makespan", "blocked_ticks", "aborts", "throughput", "serialisable"]


def run_experiment() -> list[dict]:
    rows = []
    for depth in DEPTHS:
        for scheduler_name in CONFIGURATIONS:
            workload = QueueWorkload(
                queues=2, producers=10, consumers=10, items_per_transaction=3,
                initial_depth=depth, seed=202,
            )
            row = run_configuration(workload, scheduler_name, seed=202)
            row["initial_depth"] = depth
            rows.append(row)
    return rows


def test_e2_step_vs_operation_conflicts(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E2: operation-level vs step-level conflict detection (queues)", rows, COLUMNS)
    for depth in DEPTHS:
        op_level = next(r for r in rows if r["initial_depth"] == depth and r["scheduler"] == "n2pl")
        step_level = next(r for r in rows if r["initial_depth"] == depth and r["scheduler"] == "n2pl-step")
        assert step_level["blocked_ticks"] <= op_level["blocked_ticks"]
        nto_op = next(r for r in rows if r["initial_depth"] == depth and r["scheduler"] == "nto")
        nto_step = next(r for r in rows if r["initial_depth"] == depth and r["scheduler"] == "nto-step")
        assert nto_step["aborts"] <= nto_op["aborts"]
    assert all(row["serialisable"] for row in rows)
