"""E6 — internal (sibling) parallelism inside method executions.

Paper claim (Section 1(c)): the model allows a method to send messages in
parallel; incomparable sibling executions may interleave as long as their
common ancestor sees a serial view.  We run the same random workload with
fan-out 1 (sequential children) and fan-out 3 (parallel children) and check
that parallel siblings are recorded as unordered in the programme order
while every run stays serialisable.
"""

from __future__ import annotations

from repro.analysis import certify_run
from repro.scheduler import make_scheduler
from repro.simulation import RandomOperationsWorkload, SimulationEngine

from .harness import print_experiment

FANOUTS = [1, 3]
SCHEDULERS = ["n2pl", "nto"]
COLUMNS = ["fanout", "scheduler", "makespan", "unordered_sibling_pairs", "aborts", "serialisable"]


def _unordered_sibling_pairs(history) -> int:
    count = 0
    for execution in history.executions.values():
        messages = execution.message_steps()
        for index, first in enumerate(messages):
            for second in messages[index + 1 :]:
                if not execution.program_precedes(first, second) and not execution.program_precedes(
                    second, first
                ):
                    count += 1
    return count


def run_experiment() -> list[dict]:
    rows = []
    for fanout in FANOUTS:
        for scheduler_name in SCHEDULERS:
            workload = RandomOperationsWorkload(
                registers=12, transactions=10, operations_per_transaction=6,
                nesting_depth=2, parallel_fanout=fanout, seed=505,
            )
            base, specs = workload.build()
            engine = SimulationEngine(base, make_scheduler(scheduler_name), seed=505)
            engine.submit_all(specs)
            result = engine.run()
            rows.append(
                {
                    "fanout": fanout,
                    "scheduler": scheduler_name,
                    "makespan": result.metrics.total_ticks,
                    "unordered_sibling_pairs": _unordered_sibling_pairs(result.history),
                    "aborts": result.metrics.aborted_attempts,
                    "serialisable": certify_run(result, check_legality=False).serialisable,
                }
            )
    return rows


def test_e6_internal_parallelism(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E6: internal parallelism (parallel sibling invocations)", rows, COLUMNS)
    sequential = [row for row in rows if row["fanout"] == 1]
    parallel = [row for row in rows if row["fanout"] == 3]
    assert all(row["unordered_sibling_pairs"] == 0 for row in sequential)
    assert all(row["unordered_sibling_pairs"] > 0 for row in parallel)
    assert all(row["serialisable"] for row in rows)
