"""E9 — the optimistic (certifier) trade-off.

Paper claim (Section 6): certifier-like mechanisms favour unconstrained
intra-object execution at the price of "scheduling errors requiring
abortions", whereas N2PL/NTO restrict execution up front.  We compare the
optimistic certifier with N2PL across a contention sweep (a declarative
:class:`~repro.sweep.spec.SweepSpec`): the certifier never blocks but
wastes work on validation aborts as contention grows.
"""

from __future__ import annotations

from repro.sweep import Axis, ScenarioSpec, SweepSpec

from .harness import print_experiment, run_sweep_rows

HOT_PROBABILITIES = [0.2, 0.6, 0.9]
SCHEDULERS = ["certifier", "n2pl"]
COLUMNS = [
    "hot_probability", "scheduler", "makespan", "blocked_ticks",
    "validation_aborts", "cascade_aborts", "aborts", "deadlocks",
    "wasted_fraction", "serialisable",
]

SWEEP = SweepSpec(
    name="e9_optimistic_tradeoff",
    base=ScenarioSpec(
        workload="hotspot",
        scheduler="certifier",
        seed=808,
        workload_params={
            "transactions": 14,
            "hot_objects": 2,
            "cold_objects": 20,
            "operations_per_transaction": 3,
            "seed": 808,
        },
    ),
    axes=(
        Axis("hot_probability", HOT_PROBABILITIES, target="workload_params.hot_probability"),
        Axis("scheduler", SCHEDULERS),
    ),
)


def run_experiment() -> list[dict]:
    return run_sweep_rows(SWEEP)


def test_e9_optimistic_tradeoff(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E9: optimistic certification vs pessimistic locking", rows, COLUMNS)
    certifier_rows = [row for row in rows if row["scheduler"] == "certifier"]
    assert all(row["blocked_ticks"] == 0 for row in certifier_rows)
    # "Scheduling errors requiring abortions" grow with contention; with the
    # recoverability gate they surface as validation aborts, commit
    # dependency cycles and cascades, so the total abort count is the
    # trade-off's honest measure.
    assert certifier_rows[-1]["aborts"] >= certifier_rows[0]["aborts"]
    assert all(row["serialisable"] for row in rows)
