"""E10 — determinacy of legal histories (Theorem 1) under replay.

Theorem 1 guarantees that the final state of every object is independent of
which conflict-consistent topological sort of its local steps is replayed.
This benchmark replays recorded histories under many randomly tie-broken
sorts and measures the cost of the determinacy check, confirming the
theorem on every instance.
"""

from __future__ import annotations

import time

from repro.core import check_determinacy
from repro.scheduler import make_scheduler
from repro.simulation import BankingWorkload, SimulationEngine

from .harness import print_experiment

TRANSACTION_COUNTS = [6, 12, 24]
REPLAYS_PER_OBJECT = 8
COLUMNS = ["transactions", "local_steps", "objects", "replays_per_object", "deterministic", "check_seconds"]


def _committed_history(transactions: int):
    workload = BankingWorkload(accounts=8, transactions=transactions, seed=909)
    base, specs = workload.build()
    engine = SimulationEngine(base, make_scheduler("n2pl"), seed=909)
    engine.submit_all(specs)
    return engine.run().committed_history()


def run_experiment() -> list[dict]:
    rows = []
    for transactions in TRANSACTION_COUNTS:
        history = _committed_history(transactions)
        started = time.perf_counter()
        deterministic = check_determinacy(history, attempts=REPLAYS_PER_OBJECT, seed=1)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "transactions": transactions,
                "local_steps": len(history.local_steps()),
                "objects": len(history.object_names()),
                "replays_per_object": REPLAYS_PER_OBJECT,
                "deterministic": deterministic,
                "check_seconds": elapsed,
            }
        )
    return rows


def test_e10_determinacy_replay(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E10: Theorem 1 — replay determinacy of recorded histories", rows, COLUMNS)
    assert all(row["deterministic"] for row in rows)
