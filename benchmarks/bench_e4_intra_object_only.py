"""E4 — intra-object serialisability alone does not imply global correctness.

Paper claim (Section 2): each object may serialise its own method
executions correctly and the overall computation may still not be
serialisable; inter-object synchronisation is required, unless every
object implements one common *local atomicity* property.  We count
non-serialisable runs over several seeds for three regimes.
"""

from __future__ import annotations

from repro.analysis import certify_run
from repro.scheduler import make_scheduler
from repro.simulation import HotspotWorkload, SimulationEngine

from .harness import print_experiment

SEEDS = range(6)
REGIMES = [
    ("per-object timestamp, no coordination", "modular-intra-only", "timestamp"),
    ("per-object timestamp + coordinator", "modular", "timestamp"),
    ("per-object strict 2PL, no coordination", "modular-intra-only", "locking"),
]
COLUMNS = ["regime", "non_serialisable_runs", "runs", "aborts"]


def _workload(seed: int) -> HotspotWorkload:
    return HotspotWorkload(
        transactions=10, hot_objects=3, cold_objects=4, hot_probability=0.9,
        operations_per_transaction=3, use_service_layer=False, seed=seed,
    )


def run_experiment() -> list[dict]:
    rows = []
    for label, scheduler_name, strategy in REGIMES:
        violations = 0
        aborts = 0
        for seed in SEEDS:
            base, specs = _workload(seed).build()
            engine = SimulationEngine(
                base, make_scheduler(scheduler_name, default_strategy=strategy), seed=seed
            )
            engine.submit_all(specs)
            result = engine.run()
            aborts += result.metrics.aborted_attempts
            if not certify_run(result, check_legality=False).serialisable:
                violations += 1
        rows.append(
            {
                "regime": label,
                "non_serialisable_runs": violations,
                "runs": len(list(SEEDS)),
                "aborts": aborts,
            }
        )
    return rows


def test_e4_intra_object_only(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E4: why inter-object synchronisation is necessary", rows, COLUMNS)
    uncoordinated, coordinated, locking = rows
    assert uncoordinated["non_serialisable_runs"] > 0
    assert coordinated["non_serialisable_runs"] == 0
    assert locking["non_serialisable_runs"] == 0
