"""E17 — streaming certification overhead: O(new-work) checks at commit time.

Post-hoc ``certify_run`` on a 2,000-transaction history costs *minutes*
against a ~19-second run (the E12 scaling wall that originally forced
E15 to ship ``certify=False``).  The
:class:`~repro.analysis.streaming.StreamingCertifier` folds the same
checks — legality replay, serialisation-graph acyclicity, Theorem 5(a)/(b)
— into the engine's commit path, doing work proportional to each commit's
new steps against a garbage-collected window.  E17 measures what that
online certification actually costs on a long stream and gates it:

* each scheduler runs the identical **100,000-arrival** E15-shaped
  hotspot stream twice in-process — once plain (``certify=False``) and
  once with ``certify="stream"`` — and the wall-clock ratio
  ``certify_overhead = wall_stream / wall_plain`` must stay **below 2x**
  (the acceptance gate; measured ~1.3–1.8x, flat-to-falling in stream
  length because the certifier touches only committed steps against a
  GC-bounded window);
* the arrival rate sits just below the slowest scheduler's service
  capacity, so the stream is *stable*: the in-flight population — and
  with it both runs' wall clock per arrival — is independent of stream
  length, which is what makes a 100,000-arrival measurement tractable
  at all (above capacity every open-system run goes quadratic, plain or
  certified);
* the certifier is a pure observer, so the two runs must be
  **bit-identical** on every machine-independent column — asserted per
  row before it is accepted;
* every stream must certify clean (``serialisable`` and ``legal``), and
  the certified run's live-state gauge — which now includes the
  certifier's retained window — must stay O(in-flight + gc_interval),
  the same bound E15 asserts;
* ``compare_bench.py`` watches the reciprocal ratio
  ``certify_relative_throughput = wall_plain / wall_stream`` (higher is
  better, machine-independent as an in-run ratio) with a wall-clock
  noise floor, so the O(new-work) property can never silently regress
  back towards post-hoc cost.

``REPRO_E17_ARRIVALS`` shortens the stream for local iteration and the
CI smoke step; shortened runs are never appended to the trajectory.
"""

from __future__ import annotations

import gc
import os
import time
from pathlib import Path

from repro.scheduler import make_scheduler
from repro.simulation import SimulationEngine
from repro.simulation.workloads import make_workload

from .harness import append_bench_rows, print_experiment

COLUMNS = [
    "scheduler", "arrivals", "committed", "commit_rate", "makespan",
    "wall_seconds_plain", "wall_seconds_stream", "certify_overhead",
    "certify_relative_throughput", "serialisable", "legal",
    "live_state_peak", "gc_pruned",
]

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e17_streaming_certification.json"

#: Arrivals per scenario (the acceptance floor is 100,000).
DEFAULT_ARRIVALS = 100_000
ARRIVALS = int(os.environ.get("REPRO_E17_ARRIVALS", DEFAULT_ARRIVALS))
#: Timing repeats per engine variant; the best (minimum) wall is kept.
REPEATS = max(1, int(os.environ.get("REPRO_E17_REPEATS", 1)))

SEED = 1717
#: Arrival rate just below the slowest scheduler's service capacity:
#: the stream stays *stable* (bounded in-flight population), so wall
#: clock is linear in arrivals and a 100,000-arrival run is tractable.
#: Above capacity (~0.055 here) the in-flight population grows with the
#: stream and every run goes quadratic — a property of the open system,
#: not of certification.
STREAM_RATE = 0.045
#: Engine GC cadence (transactions between passes): also the certifier's
#: pruning cadence, so a tighter interval keeps the retained window — and
#: with it the per-commit classification scan — small.
GC_INTERVAL = 16
SCHEDULERS = ("n2pl", "nto-step", "certifier")

#: The acceptance gate: certified wall clock over plain wall clock.
OVERHEAD_CEILING = 2.0

#: Same bound shape as E15: peak live state within a constant multiple of
#: the retention window (in-flight peak + one GC interval of
#: not-yet-collected transactions), never of the total arrival count.
LIVE_STATE_RATIO_BOUND = 64.0

#: Columns that must be bit-identical between the plain and certified
#: runs — the certifier is an observer and must never steer the engine.
DETERMINISTIC_COLUMNS = ("committed", "commit_rate", "total_ticks", "arrived")


def _build_engine(scheduler: str, arrivals: int, certify):
    workload = make_workload(
        "hotspot",
        transactions=arrivals,
        hot_objects=2,
        cold_objects=128,
        operations_per_transaction=2,
        hot_probability=0.05,
        use_service_layer=False,
        seed=SEED,
    )
    base, specs = workload.build()
    engine = SimulationEngine(
        base,
        make_scheduler(scheduler, restart_policy="backoff"),
        seed=SEED,
        gc_interval=GC_INTERVAL,
        # At rate 0.045 the last of 100,000 arrivals lands around tick
        # 2.2M — past the engine's default cap, which would refuse the
        # run (undelivered arrivals at max_ticks raise SimulationError).
        # Scale the cap with the requested size.
        max_ticks=max(2_000_000, int(arrivals / STREAM_RATE) + 500_000),
        certify=certify,
    )
    engine.submit_stream(specs, {"name": "poisson", "rate": STREAM_RATE})
    return engine


def _timed_run(scheduler: str, arrivals: int, certify):
    """Best-of-``REPEATS`` wall clock for one engine variant.

    The cyclic collector is disabled inside the timed region (and the
    heap collected right before it): the builder retains the full
    history either way, so mid-run garbage is acyclic and refcounted
    away, while gen-2 collections rescan the ever-growing history —
    a drag that grows with stream length, hits the variant with the
    larger heap harder, and has nothing to do with certification cost.
    """
    wall = float("inf")
    for _ in range(REPEATS):
        engine = _build_engine(scheduler, arrivals, certify)
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            result = engine.run()
            wall = min(wall, time.perf_counter() - started)
        finally:
            if gc_was_enabled:
                gc.enable()
    return wall, result, engine


def measure(scheduler: str, arrivals: int = ARRIVALS) -> dict:
    """Run one scheduler plain and certified; report the overhead row."""
    wall_plain, plain, _ = _timed_run(scheduler, arrivals, False)
    wall_stream, streamed, engine = _timed_run(scheduler, arrivals, "stream")

    for column in DETERMINISTIC_COLUMNS:
        before = getattr(plain.metrics, column)
        after = getattr(streamed.metrics, column)
        assert before == after, (
            f"{scheduler}: certify='stream' changed {column}: {before!r} != {after!r}"
        )

    report = streamed.streaming_report
    return {
        "experiment": "e17_streaming_certification",
        "scheduler": scheduler,
        "arrivals": arrivals,
        "committed": streamed.metrics.committed,
        "commit_rate": streamed.metrics.commit_rate,
        "makespan": streamed.metrics.total_ticks,
        "in_flight_peak": streamed.metrics.in_flight_peak,
        "live_state_peak": streamed.metrics.live_state_peak,
        "wall_seconds_plain": wall_plain,
        "wall_seconds_stream": wall_stream,
        "certify_overhead": wall_stream / max(wall_plain, 1e-9),
        "certify_relative_throughput": wall_plain / max(wall_stream, 1e-9),
        "serialisable": report.serialisable,
        "legal": report.legal,
        "gc_pruned": engine._certifier.gc_pruned,
    }


def run_experiment(arrivals: int = ARRIVALS) -> list[dict]:
    return [measure(scheduler, arrivals) for scheduler in SCHEDULERS]


def write_bench_json(rows: list[dict], path: Path = BENCH_JSON) -> None:
    """Append full-size sweeps to the trajectory (shortened runs never)."""
    if rows and all(row.get("arrivals") == DEFAULT_ARRIVALS for row in rows):
        append_bench_rows(path, "e17_streaming_certification", rows)


def test_e17_streaming_certification(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E17: streaming certification overhead", rows, COLUMNS)
    write_bench_json(rows)
    for row in rows:
        label = row["scheduler"]
        assert row["committed"] == row["arrivals"], (
            f"{label}: only {row['committed']}/{row['arrivals']} commits"
        )
        assert row["serialisable"] is True, f"{label}: stream failed certification"
        assert row["legal"] is True, f"{label}: stream failed legality"
        # The acceptance gate: online certification under 2x plain run time.
        assert row["certify_overhead"] < OVERHEAD_CEILING, (
            f"{label}: certify='stream' costs {row['certify_overhead']:.2f}x "
            f"the plain run (ceiling {OVERHEAD_CEILING}x)"
        )
        # The certifier's window must be garbage-collected on a stream this
        # long — a zero prune count means the O(new-work) claim is hollow.
        assert row["gc_pruned"] > 0, f"{label}: certifier GC never pruned"
        window = max(1, row["in_flight_peak"]) + GC_INTERVAL
        assert row["live_state_peak"] <= LIVE_STATE_RATIO_BOUND * window, (
            f"{label}: live-state peak {row['live_state_peak']} exceeds "
            f"{LIVE_STATE_RATIO_BOUND}x the retention window {window}"
        )


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    experiment_rows = run_experiment()
    print_experiment("E17: streaming certification overhead", experiment_rows, COLUMNS)
    write_bench_json(experiment_rows)
