"""E18 — sharded execution: μ vs shard count on a sharded E15-style stream.

PR 6 made each scheduling decision cheap, but a single engine still makes
*one* decision per tick, so service capacity tops out near μ ≈ 0.055–0.065
txns/tick on the E15 hotspot config no matter how fast the loop runs.
PR 8 shards the engine: a :class:`~repro.shard.ShardMap` partitions the
object space, one full :class:`~repro.simulation.SimulationEngine` runs
per shard in lock-step tick rounds, and the
:class:`~repro.shard.InterShardCoordinator` resolves cross-shard
transactions with two-phase votes over a global precedence graph.  This
benchmark regenerates the three claims that make sharding usable:

1. **shards=1 is the plain engine** — the single-shard run must match an
   unsharded run of the same spec bit for bit (metrics, committed ids,
   final states).  Asserted unconditionally.
2. **the transport is invisible** — the ``multiprocess`` mode (one OS
   process per shard) must match the in-process oracle bit for bit at
   every shard count.  Asserted unconditionally.
3. **μ scales with shards** — measured μ (committed transactions per
   wall-second, best of ``REPRO_E18_REPEATS`` runs) should improve by
   ``SCALING_TARGET`` (1.8×) from one to two shards in multiprocess
   mode.  Scaling is a hardware fact, so like E13 the assertion is gated
   on the CPUs actually available — enforced at ≥4 CPUs on full-size
   runs, recorded-but-never-asserted below (a CPU-bound fan-out cannot
   beat serial on a single core by construction).  The walls, μ ratios
   and host CPU count land in ``BENCH_e18_sharding.json`` either way, so
   the trajectory always states the hardware it was measured on.

The scaling grid is the E15 open-system shape — a saturating Poisson
hotspot stream with mid-stream GC — restricted to single-operation
transactions so every transaction is shard-local: it measures the
partition's parallel headroom, not 2PC contention.  A separate ``cross``
case splits the hot pair across shards under multi-operation contention,
so the trajectory also tracks the coordinator's decision counters
(cross-shard commits, stall/cycle aborts) on a workload where
distributed deadlocks actually happen.

``REPRO_E18_ARRIVALS`` shortens the stream for local iteration; rows are
appended to the trajectory only when the full-size grid ran, so
shortened smoke runs never pollute the baseline.

Sharded runs must not themselves be nested inside a multiprocessing
pool: the multiprocess transport spawns daemon processes, which daemonic
pool workers cannot.  Everything here runs serially in the test process.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.shard import ShardMap, ShardedEngine
from repro.sweep import ScenarioSpec, build_engine, summarise_run, summarise_sharded_run

from .harness import append_bench_rows, print_experiment

#: Arrivals in the scaling stream (the committed baseline size).
DEFAULT_ARRIVALS = 400
ARRIVALS = int(os.environ.get("REPRO_E18_ARRIVALS", DEFAULT_ARRIVALS))

#: Walls are taken as the best of N runs (the deterministic outcome is
#: identical across repeats, only the wall varies with runner noise).
REPEATS = max(1, int(os.environ.get("REPRO_E18_REPEATS", 1)))

#: The cross-shard contention case is abort-heavy, so it runs a smaller
#: closed batch; shortened smoke runs shrink it along with the stream.
DEFAULT_CROSS_TRANSACTIONS = 120
CROSS_TRANSACTIONS = min(DEFAULT_CROSS_TRANSACTIONS, ARRIVALS)

#: Full-size batch per case — the trajectory-append gate.
FULL_SIZE = {"scaling": DEFAULT_ARRIVALS, "cross": DEFAULT_CROSS_TRANSACTIONS}

SEED = 1818
SHARD_COUNTS = (1, 2, 4)
GC_INTERVAL = 64
#: Rounds are barriers; a bench-sized round keeps their cost marginal.
#: round_ticks shapes coordinator registration order (and so victim
#: selection under contention), which is why it is pinned here: the
#: deterministic row columns are a pure function of (spec, map, round_ticks).
ROUND_TICKS = 256

#: Measured μ at 2 shards as a multiple of the 1-shard μ (multiprocess
#: mode), enforced only where two shard processes actually run
#: concurrently and only on full-size runs (short streams are jitter).
SCALING_TARGET = 1.8
MIN_CPUS_FOR_SCALING = 4

#: Pin the hot pair together so the scaling grid is dominated by local
#: work; the hashed cold tail spreads the rest of the load.
COLOCATED_HOT = {"hot-0": 0, "hot-1": 0}
#: Split the hot pair for the contention case: most transactions become
#: cross-shard and the coordinator's deadlock breakers earn their keep.
SPLIT_HOT = {"hot-0": 0, "hot-1": 1}

COLUMNS = [
    "case", "mode", "scheduler", "shards", "committed", "gave_up",
    "commit_rate", "throughput", "mu_wall", "mu_ratio_vs_one",
    "remote_invocations", "cross_commits", "cross_aborts", "stall_aborts",
    "cycle_aborts", "shard_rounds", "serialisable", "wall_seconds", "cpu_count",
]

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e18_sharding.json"


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _scaling_spec() -> ScenarioSpec:
    # The E15 open-system shape (Poisson hotspot stream, mid-stream GC)
    # at a rate that saturates a single engine, restricted to
    # single-operation transactions: every transaction lives on one
    # shard, so the grid measures the partition's parallel headroom
    # rather than 2PC contention (the ``cross`` case measures that).
    # Per-shard post-hoc certification stands in for E15's streaming
    # certifier, which is (deliberately) rejected on sharded runs.
    return ScenarioSpec(
        workload="hotspot-stream",
        scheduler="n2pl",
        seed=SEED,
        workload_params={
            "inner_params": {
                "transactions": ARRIVALS,
                "hot_objects": 2,
                "cold_objects": 48,
                "operations_per_transaction": 1,
                "hot_probability": 0.05,
                "use_service_layer": False,
                "seed": SEED,
            },
            "arrival": "poisson",
            "arrival_params": {"rate": 0.25},
        },
        scheduler_kwargs={"restart_policy": "backoff"},
        engine_params={"gc_interval": GC_INTERVAL},
        certify=True,
    )


def _cross_spec(scheduler: str) -> ScenarioSpec:
    return ScenarioSpec(
        workload="hotspot",
        scheduler=scheduler,
        seed=SEED,
        workload_params={
            "transactions": CROSS_TRANSACTIONS,
            "hot_objects": 2,
            "cold_objects": 16,
            "operations_per_transaction": 3,
            "hot_probability": 0.5,
            "use_service_layer": False,
            "seed": SEED,
        },
        scheduler_kwargs={"restart_policy": "backoff"},
        certify=True,
    )


def _spec_transactions(spec: ScenarioSpec) -> int:
    params = spec.workload_params
    return (params.get("inner_params") or params)["transactions"]


def _outcome(result) -> tuple:
    """The comparison projection: merged metrics, commits, final states."""
    return (
        result.metrics.as_dict(),
        result.committed_transaction_ids,
        result.final_states(),
        result.coordinator,
    )


def _run_sharded(spec: ScenarioSpec, shard_map: ShardMap, mode: str):
    """Run one sharded config ``REPEATS`` times; best wall, one result."""
    best_wall, result = None, None
    for _ in range(REPEATS):
        engine = ShardedEngine(
            spec,
            shard_map,
            mode=mode,
            round_ticks=ROUND_TICKS,
            mp_context="fork" if mode == "multiprocess" else None,
        )
        started = time.perf_counter()
        result = engine.run()
        wall = time.perf_counter() - started
        best_wall = wall if best_wall is None else min(best_wall, wall)
    return result, best_wall


def _run_plain(spec: ScenarioSpec):
    best_wall, result = None, None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = build_engine(spec).run()
        wall = time.perf_counter() - started
        best_wall = wall if best_wall is None else min(best_wall, wall)
    return result, best_wall


def _bench_row(case, mode, spec, shards, row, coordinator, wall, cpu) -> dict:
    return {
        "experiment": "e18_sharding",
        "case": case,
        "mode": mode,
        "scheduler": spec.scheduler,
        "shards": shards,
        "transactions": _spec_transactions(spec),
        "committed": row["committed"],
        "gave_up": row["gave_up"],
        "commit_rate": row["commit_rate"],
        "throughput": row["throughput"],
        "makespan": row["makespan"],
        "mu_wall": round(row["committed"] / max(wall, 1e-9), 2),
        "mu_ratio_vs_one": None,
        "remote_invocations": row.get("remote_invocations", 0),
        "cross_commits": row.get("cross_commits", 0),
        "cross_aborts": row.get("cross_aborts", 0),
        "stall_aborts": coordinator.get("stall_aborts", 0),
        "cycle_aborts": coordinator.get("cycle_aborts", 0),
        "shard_rounds": row.get("shard_rounds", 0),
        "serialisable": row["serialisable"],
        "wall_seconds": round(wall, 6),
        "cpu_count": cpu,
    }


def run_experiment() -> list[dict]:
    cpu = _cpu_count()
    rows: list[dict] = []
    spec = _scaling_spec()

    # Plain-engine reference: the unsharded row the shards=1 run must hit.
    plain_result, plain_wall = _run_plain(spec)
    plain_row = summarise_run(plain_result, spec.scheduler, certify=True)
    plain_reference = (
        plain_result.metrics.as_dict(),
        tuple(plain_result.committed_transaction_ids),
        {name: dict(state) for name, state in plain_result.final_states().items()},
    )
    rows.append(
        _bench_row("scaling", "plain", spec, 1, plain_row, {}, plain_wall, cpu)
    )

    for shards in SHARD_COUNTS:
        shard_map = ShardMap(
            shards=shards, assignment=COLOCATED_HOT if shards > 1 else {}
        )
        inproc, inproc_wall = _run_sharded(spec, shard_map, "inprocess")
        multi, multi_wall = _run_sharded(spec, shard_map, "multiprocess")

        inproc_row = summarise_sharded_run(inproc, spec.scheduler)
        multi_row = summarise_sharded_run(multi, spec.scheduler)
        bench_inproc = _bench_row(
            "scaling", "inprocess", spec, shards, inproc_row,
            inproc.coordinator, inproc_wall, cpu,
        )
        bench_multi = _bench_row(
            "scaling", "multiprocess", spec, shards, multi_row,
            multi.coordinator, multi_wall, cpu,
        )
        if shards == 1:
            # Claim 1: the single-shard run *is* the plain engine.
            bench_inproc["matches_plain"] = (
                _outcome(inproc)[:3] == plain_reference
                and all(plain_row[key] == inproc_row[key] for key in plain_row)
            )
        # Claim 2: the transport moves bytes, never behaviour.
        bench_multi["matches_inprocess"] = _outcome(multi) == _outcome(inproc)
        rows.extend((bench_inproc, bench_multi))

    # Claim 3's measure: per-shard-count μ over the same mode's 1-shard μ.
    one_shard_mu = {
        row["mode"]: row["mu_wall"]
        for row in rows
        if row["case"] == "scaling" and row["shards"] == 1
    }
    for row in rows:
        base = one_shard_mu.get(row["mode"], 0.0)
        row["mu_ratio_vs_one"] = round(row["mu_wall"] / max(base, 1e-9), 2)

    # Cross-shard contention: split hot pair, coordinator under fire.
    for scheduler in ("n2pl", "certifier"):
        cross_spec = _cross_spec(scheduler)
        shard_map = ShardMap(shards=2, assignment=SPLIT_HOT)
        result, wall = _run_sharded(cross_spec, shard_map, "inprocess")
        row = summarise_sharded_run(result, scheduler)
        rows.append(
            _bench_row("cross", "inprocess", cross_spec, 2, row,
                       result.coordinator, wall, cpu)
        )

    return rows


def write_bench_json(rows: list[dict], path: Path = BENCH_JSON) -> None:
    """Append this run's rows to the recorded trajectory (full runs only).

    Gated on the rows themselves, not on the environment: a shortened
    grid (however it was requested) must never enter the trajectory the
    regression gate compares against.
    """
    if rows and all(row["transactions"] == FULL_SIZE[row["case"]] for row in rows):
        append_bench_rows(path, "e18_sharding", rows)


def test_e18_sharding(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E18: sharded execution — identity, transport, μ scaling", rows, COLUMNS)
    write_bench_json(rows)

    by_key = {(row["case"], row["mode"], row["shards"]): row for row in rows}
    # Determinism is hardware-independent: always enforced.
    assert by_key[("scaling", "inprocess", 1)]["matches_plain"], (
        "shards=1 diverged from the plain engine"
    )
    for shards in SHARD_COUNTS:
        assert by_key[("scaling", "multiprocess", shards)]["matches_inprocess"], (
            f"multiprocess transport diverged from the in-process oracle at {shards} shards"
        )
    for row in rows:
        label = f"{row['case']}/{row['mode']}/{row['shards']}"
        assert row["serialisable"] is True, f"{label}: committed projection not serialisable"
        assert row["committed"] + row["gave_up"] == row["transactions"], (
            f"{label}: {row['committed']} + {row['gave_up']} != {row['transactions']}"
        )
    for row in rows:
        if row["case"] == "cross":
            assert row["remote_invocations"] > 0, "cross case never crossed a shard"
            assert row["cross_commits"] > 0, "cross case committed nothing through 2PC"
            assert row["stall_aborts"] + row["cycle_aborts"] > 0, (
                "cross case never needed the coordinator's deadlock breakers"
            )
    # Scaling is a hardware fact: enforce the 1.8x μ target only where
    # two shard processes actually run concurrently and the stream is
    # full-size (short smoke streams measure jitter); record elsewhere.
    cpu = rows[0]["cpu_count"]
    full_size = all(row["transactions"] == FULL_SIZE[row["case"]] for row in rows)
    if cpu >= MIN_CPUS_FOR_SCALING and full_size:
        ratio = by_key[("scaling", "multiprocess", 2)]["mu_ratio_vs_one"]
        assert ratio >= SCALING_TARGET, (
            f"2-shard multiprocess μ only {ratio:.2f}x of 1-shard "
            f"(target >= {SCALING_TARGET}x) on {cpu} CPUs"
        )


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    experiment_rows = run_experiment()
    print_experiment(
        "E18: sharded execution — identity, transport, μ scaling", experiment_rows, COLUMNS
    )
    write_bench_json(experiment_rows)
