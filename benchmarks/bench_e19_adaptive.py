"""E19 — adaptive per-object scheduling vs every fixed strategy.

The modularity theorem licenses any per-object synchroniser whose local
orders the coordinator can reconcile; ``AdaptiveModularScheduler`` picks
them *dynamically*, moving objects along the ``certifier → timestamp →
locking`` ladder at quiescent points as measured contention shifts (see
the "Adaptive per-object scheduling" section of DESIGN.md).  E19 asks
the only question that justifies the machinery: does adaptation track
the best fixed choice without knowing it in advance?

Four deep scenarios, each a seeded open-system stream the scheduler has
to *live through* rather than a uniform batch:

* ``zipf-mixed`` — a zipfian key mix (skew 1.1 over 48 objects): a few
  scorching objects where optimism thrashes, a long cold tail where
  locking's pessimism is pure overhead — no single fixed strategy suits
  both halves;
* ``diurnal-hotspot`` — a hot/cold hotspot under a diurnal arrival
  rhythm (amplitude 0.8, period 2,000 ticks): contention that returns
  every simulated "day", exercising demotion hysteresis between peaks;
* ``flash-crowd-orders`` — the three-ADT order-processing pipeline
  (B-tree inventory, FIFO fulfilment queue, bank accounts) under
  flash-crowd arrivals: structurally different objects whose best
  strategies differ, plus the B-tree's own key-granular synchroniser,
  which the adaptive scheduler must *pin*, not flatten;
* ``faulted-zipf`` — a skewed stream with the engine's seeded crash
  injection (a fault every ~1,500 ticks, six total): adaptation signals
  polluted by fault-driven aborts must not destabilise the ladder.

Each scenario runs under the adaptive scheduler and under the modular
scheduler fixed at every ladder rung (certifier / timestamp / locking,
all with ``backoff`` restarts).  Every run is certified and
legality-checked; the gates are:

* every adaptive row is serialisable **and** legal;
* per scenario, the adaptive commit rate is within 10% of the best
  fixed strategy's;
* on ``zipf-mixed`` the adaptive throughput strictly beats the worst
  fixed strategy's — the scenario engineered so that no fixed choice is
  safe, which is the existence proof for adapting at all;
* a fixed seed reproduces an adaptive run bit-identically, adaptation
  trajectory included (asserted by re-running one scenario).

Throughput against the *best* fixed strategy is recorded and
trend-watched (``compare_bench``) but not gated: the ladder pays its
exploration windows on the way to the right rung, which costs ticks the
clairvoyant fixed choice never spends.

``REPRO_E19_ARRIVALS`` overrides the stream length for local iteration
and the CI smoke step; rows are only appended to the trajectory file
when the full 400-arrival grid ran, so shortened runs never pollute the
baseline ``BENCH_e19_adaptive.json``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.sweep import ScenarioSpec
from repro.sweep.runner import run_scenario

from .harness import append_bench_rows, print_experiment

COLUMNS = [
    "scenario", "scheduler", "arrived", "committed", "commit_rate",
    "makespan", "throughput", "throughput_vs_best_fixed",
    "serialisable", "legal", "wall_seconds",
]

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e19_adaptive.json"

#: Arrivals per scenario (the acceptance grid runs 400).
DEFAULT_ARRIVALS = 400
ARRIVALS = int(os.environ.get("REPRO_E19_ARRIVALS", DEFAULT_ARRIVALS))

#: Adaptive commit rate must reach this fraction of the best fixed
#: strategy's on every scenario.
COMMIT_RATE_FRACTION = 0.9

SEED = 1919

#: The scenario engineered so no fixed strategy is safe: adaptive must
#: strictly beat the worst fixed throughput here.
MIXED_SCENARIO = "zipf-mixed"


def _scenarios(arrivals: int) -> dict[str, dict]:
    return {
        "zipf-mixed": dict(
            workload="zipf-stream",
            workload_params={
                "inner_params": {
                    "transactions": arrivals,
                    "objects": 48,
                    "operations_per_transaction": 3,
                    "skew": 1.1,
                    "seed": 19,
                },
                "arrival": "poisson",
                "arrival_params": {"rate": 0.04},
            },
        ),
        "diurnal-hotspot": dict(
            workload="hotspot-stream",
            workload_params={
                "inner_params": {
                    "transactions": arrivals,
                    "hot_objects": 2,
                    "cold_objects": 32,
                    "operations_per_transaction": 3,
                    "hot_probability": 0.4,
                    "use_service_layer": False,
                    "seed": 19,
                },
                "arrival": "diurnal",
                "arrival_params": {"rate": 0.05, "amplitude": 0.8, "period": 2000},
            },
        ),
        "flash-crowd-orders": dict(
            workload="order-processing-stream",
            workload_params={
                "inner_params": {
                    "transactions": arrivals,
                    "customers": 12,
                    "items": 32,
                    "seed": 19,
                },
                "arrival": "flash-crowd",
                "arrival_params": {
                    "rate": 0.02,
                    "spike_factor": 6.0,
                    "spike_length": 60,
                    "mean_calm": 500,
                },
            },
        ),
        "faulted-zipf": dict(
            workload="zipf-stream",
            workload_params={
                "inner_params": {
                    "transactions": arrivals,
                    "objects": 48,
                    "operations_per_transaction": 3,
                    "skew": 1.3,
                    "seed": 23,
                },
                "arrival": "poisson",
                "arrival_params": {"rate": 0.03},
            },
            engine_params={
                "fault_plan": {"name": "crash", "period": 1500, "max_faults": 6}
            },
        ),
    }


SCHEDULERS: dict[str, dict] = {
    "adaptive": {
        "scheduler": "adaptive",
        "scheduler_kwargs": {
            "restart_policy": "backoff",
            "window": 64,
            "promote_threshold": 4,
        },
    },
    "fixed-certifier": {
        "scheduler": "modular",
        "scheduler_kwargs": {
            "restart_policy": "backoff",
            "default_strategy": "certifier",
        },
    },
    "fixed-timestamp": {
        "scheduler": "modular",
        "scheduler_kwargs": {
            "restart_policy": "backoff",
            "default_strategy": "timestamp",
        },
    },
    "fixed-locking": {
        "scheduler": "modular",
        "scheduler_kwargs": {
            "restart_policy": "backoff",
            "default_strategy": "locking",
        },
    },
}


def _make_spec(scenario_kwargs: dict, scheduler_kwargs: dict) -> ScenarioSpec:
    return ScenarioSpec(
        seed=SEED, certify=True, check_legality=True,
        **scenario_kwargs, **scheduler_kwargs,
    )


def _run_cell(scenario: str, scenario_kwargs: dict, scheduler: str) -> dict:
    started = time.perf_counter()
    row = dict(run_scenario(_make_spec(scenario_kwargs, SCHEDULERS[scheduler])).row)
    row["experiment"] = "e19_adaptive"
    row["scenario"] = scenario
    row["scheduler"] = scheduler
    row["wall_seconds"] = round(time.perf_counter() - started, 3)
    return row


def run_experiment(arrivals: int = ARRIVALS) -> list[dict]:
    rows = []
    for scenario, scenario_kwargs in _scenarios(arrivals).items():
        cells = [
            _run_cell(scenario, scenario_kwargs, scheduler)
            for scheduler in SCHEDULERS
        ]
        # The trend-watched ratio: adaptive throughput over the *best*
        # fixed strategy's — the clairvoyant-choice gap the ladder's
        # exploration windows cost.  Only adaptive rows carry it (None
        # skips comparison for the fixed rows, as in E18's cross cases).
        best_fixed = max(
            cell["throughput"] for cell in cells if cell["scheduler"] != "adaptive"
        )
        for cell in cells:
            if cell["scheduler"] == "adaptive":
                cell["throughput_vs_best_fixed"] = round(
                    cell["throughput"] / best_fixed, 4
                ) if best_fixed else None
            else:
                cell["throughput_vs_best_fixed"] = None
        rows.extend(cells)
    return rows


def write_bench_json(rows: list[dict], path: Path = BENCH_JSON) -> None:
    """Append this grid's rows to the recorded trajectory (full runs only).

    Gated on the rows themselves, not on the environment: a shortened
    stream (however it was requested) must never enter the trajectory the
    regression gate compares against.
    """
    if rows and all(row.get("arrived") == DEFAULT_ARRIVALS for row in rows):
        append_bench_rows(path, "e19_adaptive", rows)


def test_e19_adaptive(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E19: adaptive per-object scheduling vs fixed strategies", rows, COLUMNS)
    write_bench_json(rows)

    by_scenario: dict[str, dict[str, dict]] = {}
    for row in rows:
        by_scenario.setdefault(row["scenario"], {})[row["scheduler"]] = row
        # Every cell — fixed strategies included — must certify clean and
        # pass legality; a scenario only a subset can execute correctly
        # would not be a fair comparison grid.
        label = f"{row['scenario']}/{row['scheduler']}"
        assert row["serialisable"] is True, f"{label}: failed certification"
        assert row["legal"] is True, f"{label}: committed an illegal history"
        assert row["arrived"] == ARRIVALS, f"{label}: stream released {row['arrived']}"

    for scenario, cells in by_scenario.items():
        adaptive = cells["adaptive"]
        fixed = [cells[name] for name in cells if name != "adaptive"]
        best_rate = max(cell["commit_rate"] for cell in fixed)
        # The headline gate: adaptation lands within 10% of the best fixed
        # strategy's commit rate without being told which one it is.
        assert adaptive["commit_rate"] >= COMMIT_RATE_FRACTION * best_rate, (
            f"{scenario}: adaptive commit rate {adaptive['commit_rate']:.3f} "
            f"below {COMMIT_RATE_FRACTION}x the best fixed {best_rate:.3f}"
        )

    mixed = by_scenario[MIXED_SCENARIO]
    worst_thr = min(
        cell["throughput"] for name, cell in mixed.items() if name != "adaptive"
    )
    assert mixed["adaptive"]["throughput"] > worst_thr, (
        f"{MIXED_SCENARIO}: adaptive throughput {mixed['adaptive']['throughput']:.5f} "
        f"does not beat the worst fixed strategy's {worst_thr:.5f}"
    )

    # Determinism, adaptation trajectory included: re-running one adaptive
    # scenario under the same seed must reproduce the row bit-identically
    # on every deterministic column (wall time and the derived ratio are
    # the only non-spec-determined fields).
    def deterministic(row: dict) -> dict:
        return {
            key: value
            for key, value in row.items()
            if key not in ("wall_seconds", "throughput_vs_best_fixed")
        }

    scenario_kwargs = _scenarios(ARRIVALS)["flash-crowd-orders"]
    repeat = _run_cell("flash-crowd-orders", scenario_kwargs, "adaptive")
    assert deterministic(repeat) == deterministic(
        by_scenario["flash-crowd-orders"]["adaptive"]
    ), "adaptive run is not bit-identical under a fixed seed"


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    experiment_rows = run_experiment()
    print_experiment(
        "E19: adaptive per-object scheduling vs fixed strategies",
        experiment_rows, COLUMNS,
    )
    write_bench_json(experiment_rows)
