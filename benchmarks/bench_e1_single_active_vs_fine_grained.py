"""E1 — treating each object as a single data item curtails parallelism.

Paper claim (Section 1): requiring one active method execution per object
"has the virtue of simplicity" but sacrifices the concurrency the
object-base model permits.  We sweep the number of concurrent transactions
on the B-tree index workload and compare the coarse baseline against
fine-grained N2PL and NTO.  The grid is a declarative
:class:`~repro.sweep.spec.SweepSpec` driven by the shared sweep runner.
"""

from __future__ import annotations

from repro.sweep import Axis, ScenarioSpec, SweepSpec

from .harness import print_experiment, run_sweep_rows

SCHEDULERS = ["single-active", "n2pl", "nto", "certifier"]
TRANSACTION_COUNTS = [8, 16, 32]
COLUMNS = [
    "transactions", "scheduler", "makespan", "blocked_ticks", "blocked_fraction",
    "aborts", "throughput", "serialisable",
]

SWEEP = SweepSpec(
    name="e1_single_active_vs_fine_grained",
    base=ScenarioSpec(
        workload="btree",
        scheduler="single-active",
        seed=101,
        workload_params={"operations_per_transaction": 4, "seed": 101},
    ),
    axes=(
        Axis("transactions", TRANSACTION_COUNTS, target="workload_params.transactions"),
        Axis("scheduler", SCHEDULERS),
    ),
)


def run_experiment() -> list[dict]:
    return run_sweep_rows(SWEEP)


def test_e1_single_active_vs_fine_grained(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E1: coarse object-level locking vs fine-grained schedulers", rows, COLUMNS)
    for transactions in TRANSACTION_COUNTS:
        coarse = next(r for r in rows if r["transactions"] == transactions and r["scheduler"] == "single-active")
        fine = next(r for r in rows if r["transactions"] == transactions and r["scheduler"] == "n2pl")
        # Under the event-driven engine waiting no longer consumes ticks, so
        # curtailed parallelism shows as a larger share of the run spent
        # parked behind coarse object locks.
        assert coarse["blocked_fraction"] > fine["blocked_fraction"]
    assert all(row["serialisable"] for row in rows)
