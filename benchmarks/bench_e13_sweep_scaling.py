"""E13 — sweep fan-out scaling: serial vs multiprocessing wall-clock.

PR 3 introduced the declarative sweep subsystem (:mod:`repro.sweep`).
This benchmark drives its headline guarantees on a 20-scenario hotspot
contention grid (4 contention levels × 5 scheduler configurations —
including the optimistic certifier under the ``backoff`` restart policy,
re-admitted to the grid once PR 4's restart policies tamed its cascade
storms; under ``immediate`` restarts its storm wall-clock used to
dominate the comparison):

1. **determinism** — the 4-worker multiprocessing run must produce
   metrics rows *identical* to the serial run of the same seeded
   :class:`~repro.sweep.spec.SweepSpec` (asserted unconditionally);
2. **scaling** — with 4 workers the sweep should complete in at most
   ``SPEEDUP_TARGET`` (0.6×) of the serial wall-clock.  The speedup is a
   hardware fact, so the assertion is gated on the cores actually
   available: enforced at ≥4 CPUs, relaxed to ``RELAXED_TARGET`` at 2-3
   CPUs, and recorded-but-not-asserted on single-core hosts (where a
   CPU-bound fan-out cannot beat serial by construction).  The measured
   wall-clocks, the speedup and the host's CPU count are appended to
   ``BENCH_e13_sweep_scaling.json`` either way, so the recorded
   trajectory always states the hardware it was measured on.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.sweep import Axis, AxisPoint, ScenarioSpec, SweepRunner, SweepSpec, sweep_report

from .harness import append_bench_rows, print_experiment

WORKERS = 4
SPEEDUP_TARGET = 0.6  # parallel wall-clock as a fraction of serial, ≥4 CPUs
RELAXED_TARGET = 0.85  # 2-3 CPUs: some speedup must still materialise

HOT_PROBABILITIES = (0.05, 0.1, 0.2, 0.3)
SCHEDULERS = (
    "n2pl",
    "n2pl-step",
    "nto",
    "single-active",
    AxisPoint(
        "certifier-backoff",
        {
            "scheduler": "certifier",
            "scheduler_kwargs.restart_policy": "backoff",
        },
    ),
)

COLUMNS = [
    "scenarios", "workers", "cpu_count", "serial_seconds", "parallel_seconds",
    "parallel_fraction", "speedup", "rows_identical",
]

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e13_sweep_scaling.json"

SWEEP = SweepSpec(
    name="e13_sweep_scaling",
    base=ScenarioSpec(
        workload="hotspot",
        scheduler="n2pl",
        seed=1313,
        workload_params={
            "transactions": 28,
            "hot_objects": 3,
            "cold_objects": 48,
            "operations_per_transaction": 4,
            "seed": 1313,
        },
    ),
    axes=(
        Axis("hot_probability", HOT_PROBABILITIES, target="workload_params.hot_probability"),
        Axis("scheduler", SCHEDULERS),
    ),
)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def run_experiment() -> list[dict]:
    started = time.perf_counter()
    serial_rows = SweepRunner(SWEEP, workers=0).run_rows()
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel_rows = SweepRunner(SWEEP, workers=WORKERS).run_rows()
    parallel_seconds = time.perf_counter() - started

    row = {
        "experiment": "e13_sweep_scaling",
        "scenarios": len(SWEEP),
        "workers": WORKERS,
        "cpu_count": _cpu_count(),
        "serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "parallel_fraction": round(parallel_seconds / max(serial_seconds, 1e-9), 4),
        "speedup": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
        "rows_identical": serial_rows == parallel_rows,
        "grid": sweep_report(
            SWEEP.name,
            serial_rows,
            group_by=("scheduler",),
            metrics=("committed", "aborts", "makespan"),
        ),
    }
    return [row]


def write_bench_json(rows: list[dict], path: Path = BENCH_JSON) -> None:
    """Append this run's measurement to the recorded trajectory."""
    append_bench_rows(path, "e13_sweep_scaling", rows)


def test_e13_sweep_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E13: sweep fan-out — serial vs 4-worker wall-clock", rows, COLUMNS)
    write_bench_json(rows)
    row = rows[0]
    # Determinism is hardware-independent: always enforced.
    assert row["rows_identical"], "parallel sweep rows diverged from the serial run"
    # Scaling is a hardware fact: enforce the 0.6x target where 4 workers can
    # actually run concurrently, a relaxed target on 2-3 cores, and record
    # without asserting on single-core hosts.
    if row["cpu_count"] >= WORKERS:
        assert row["parallel_fraction"] <= SPEEDUP_TARGET, (
            f"4-worker sweep took {row['parallel_fraction']:.2f}x of serial "
            f"(target <= {SPEEDUP_TARGET}) on {row['cpu_count']} CPUs"
        )
    elif row["cpu_count"] >= 2:
        assert row["parallel_fraction"] <= RELAXED_TARGET, (
            f"4-worker sweep took {row['parallel_fraction']:.2f}x of serial "
            f"(relaxed target <= {RELAXED_TARGET}) on {row['cpu_count']} CPUs"
        )


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    experiment_rows = run_experiment()
    print_experiment(
        "E13: sweep fan-out — serial vs 4-worker wall-clock", experiment_rows, COLUMNS
    )
    write_bench_json(experiment_rows)
