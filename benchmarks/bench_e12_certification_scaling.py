"""E12 — certification cost scaling: indexed/incremental vs from-scratch.

PR 2 made post-run certification near-linear: histories carry persistent
indexes (per-object step lists, cached ancestor chains, sorted-interval
sweeps) and the serialisation-graph builders enumerate only
actually-ordered conflicting pairs, with an :class:`IncrementalSG` variant
that consumes steps in commit order.  The original permutation builders
are retained as ``sg_mode="legacy"`` — this experiment certifies the same
committed projection under all three modes and times them, across run
lengths and two schedulers (blocking n2pl produces long committed
histories; the optimistic certifier exercises the incremental commit-time
validation during the run itself).

Each sweep appends to ``BENCH_e12_certification_scaling.json`` (schema:
``{"experiment", "rows": [...]}``) with a setup/run/certify timing
breakdown per configuration, so the repository's performance trajectory is
recorded run over run; CI diffs the file against the committed baseline
and warns on >30% wall-time regressions (``benchmarks/compare_bench.py``).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import certify_history
from repro.scheduler import make_scheduler
from repro.simulation import HotspotWorkload, SimulationEngine

from .harness import append_bench_rows, print_experiment

COLUMNS = [
    "scheduler", "transactions", "committed", "committed_steps",
    "setup_seconds", "run_seconds",
    "certify_legacy_seconds", "certify_indexed_seconds", "certify_incremental_seconds",
    "speedup_indexed", "speedup_incremental",
]

LENGTHS = (12, 24, 48)
SCHEDULERS = ("n2pl", "certifier")
SPEEDUP_FLOOR = 5.0

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e12_certification_scaling.json"


def _workload(transactions: int) -> HotspotWorkload:
    # Low contention so most transactions commit: post-run certification
    # cost is driven by the *committed* history's length.
    return HotspotWorkload(
        transactions=transactions,
        hot_objects=2,
        cold_objects=max(24, transactions),
        operations_per_transaction=4,
        hot_probability=0.05,
        seed=2202,
    )


def run_configuration(scheduler_name: str, transactions: int) -> dict:
    started = time.perf_counter()
    base, specs = _workload(transactions).build()
    scheduler = make_scheduler(scheduler_name)
    engine = SimulationEngine(base, scheduler, seed=2202)
    engine.submit_all(specs)
    setup_seconds = time.perf_counter() - started

    started = time.perf_counter()
    result = engine.run()
    run_seconds = time.perf_counter() - started

    committed = result.committed_history()
    timings: dict[str, float] = {}
    reports = {}
    for sg_mode in ("legacy", "indexed", "incremental"):
        started = time.perf_counter()
        reports[sg_mode] = certify_history(committed, check_legality=False, sg_mode=sg_mode)
        timings[sg_mode] = time.perf_counter() - started
    verdicts = {
        (report.serialisable, report.theorem5_holds, report.sg_edges)
        for report in reports.values()
    }
    if len(verdicts) != 1:
        raise AssertionError(f"certification modes disagree: {verdicts!r}")

    row = {
        "experiment": "e12_certification_scaling",
        "scheduler": scheduler_name,
        "transactions": transactions,
        "committed": result.metrics.committed,
        "committed_steps": len(committed.local_steps()),
        "sg_edges": reports["indexed"].sg_edges,
        "serialisable": reports["indexed"].serialisable,
        "setup_seconds": round(setup_seconds, 6),
        "run_seconds": round(run_seconds, 6),
        "certify_legacy_seconds": round(timings["legacy"], 6),
        "certify_indexed_seconds": round(timings["indexed"], 6),
        "certify_incremental_seconds": round(timings["incremental"], 6),
        "speedup_indexed": round(timings["legacy"] / max(timings["indexed"], 1e-9), 2),
        "speedup_incremental": round(timings["legacy"] / max(timings["incremental"], 1e-9), 2),
    }
    if scheduler_name == "certifier":
        description = scheduler.describe()
        row["commit_conflict_calls"] = description.get("commit_conflict_calls", 0)
    return row


def run_experiment() -> list[dict]:
    return [
        run_configuration(scheduler_name, transactions)
        for scheduler_name in SCHEDULERS
        for transactions in LENGTHS
    ]


def write_bench_json(rows: list[dict], path: Path = BENCH_JSON) -> None:
    """Append this sweep's rows to the recorded trajectory."""
    append_bench_rows(path, "e12_certification_scaling", rows)


def test_e12_certification_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E12: certification cost — legacy vs indexed/incremental", rows, COLUMNS)
    write_bench_json(rows)
    # The online certifier must never re-enumerate step pairs at commit.
    for row in rows:
        if row["scheduler"] == "certifier":
            assert row["commit_conflict_calls"] == 0
    # At the longest run length the indexed path must beat the from-scratch
    # builders by at least SPEEDUP_FLOOR on the scheduler with the longest
    # committed history.
    longest = max(
        (row for row in rows if row["transactions"] == max(LENGTHS)),
        key=lambda row: row["committed_steps"],
    )
    assert longest["committed_steps"] >= 100, "workload must produce a long committed history"
    assert longest["speedup_indexed"] >= SPEEDUP_FLOOR, (
        f"indexed certification only {longest['speedup_indexed']}x faster than legacy "
        f"at {longest['transactions']} transactions"
    )


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    experiment_rows = run_experiment()
    print_experiment(
        "E12: certification cost — legacy vs indexed/incremental", experiment_rows, COLUMNS
    )
    write_bench_json(experiment_rows)
