"""E7 — cost of building and checking serialisation graphs (Theorem 2).

The serialisability theorem turns correctness into an acyclicity check of
``SG(h)``.  This benchmark measures how the cost of constructing the graph
and extracting the serial order scales with history size, which is what a
certification-based inter-object mechanism (Section 6) would pay online.
"""

from __future__ import annotations

import time

from repro.core import execution_serial_order, is_serialisable, serialisation_graph
from repro.scheduler import make_scheduler
from repro.simulation import RandomOperationsWorkload, SimulationEngine

from .harness import print_experiment

TRANSACTION_COUNTS = [5, 10, 20]
COLUMNS = ["transactions", "executions", "local_steps", "sg_nodes", "sg_edges", "build_seconds", "serialisable"]


def _history_of_size(transactions: int):
    workload = RandomOperationsWorkload(
        registers=10, transactions=transactions, operations_per_transaction=4,
        nesting_depth=2, seed=606,
    )
    base, specs = workload.build()
    engine = SimulationEngine(base, make_scheduler("n2pl"), seed=606)
    engine.submit_all(specs)
    return engine.run().committed_history()


def run_experiment() -> list[dict]:
    rows = []
    for transactions in TRANSACTION_COUNTS:
        history = _history_of_size(transactions)
        started = time.perf_counter()
        graph = serialisation_graph(history)
        serialisable = is_serialisable(history)
        if serialisable:
            execution_serial_order(history)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "transactions": transactions,
                "executions": len(history.execution_ids()),
                "local_steps": len(history.local_steps()),
                "sg_nodes": graph.number_of_nodes(),
                "sg_edges": graph.number_of_edges(),
                "build_seconds": elapsed,
                "serialisable": serialisable,
            }
        )
    return rows


def test_e7_sg_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E7: serialisation-graph construction cost vs history size", rows, COLUMNS)
    assert all(row["serialisable"] for row in rows)
    sizes = [row["sg_edges"] for row in rows]
    assert sizes == sorted(sizes)
