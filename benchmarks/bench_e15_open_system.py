"""E15 — open-system workloads: arrival streams, latency, and bounded state.

Every earlier experiment ran a *closed* system: a fixed batch submitted at
tick 0 and drained.  E15 measures the schedulers the way a production
object base would meet them — transactions *arriving over time* from a
seeded :class:`~repro.simulation.arrivals.ArrivalProcess` — and sweeps
the arrival rate λ towards the engine's service capacity:

* the engine resolves one scheduling decision per tick, so its raw
  capacity on this workload (~14 productive ticks per transaction) is
  roughly ``μ ≈ 0.065`` transactions/tick; the poisson points at
  λ = 0.02 / 0.045 / 0.055 step utilisation from ~30% to ~85%, and the
  queueing-theory knee shows up exactly as expected: mean latency grows
  gently until ~70% utilisation and then turns sharply upward
  approaching capacity (beyond it the optimistic schedulers tip into a
  restart-thrash regime whose makespan diverges — the cliff E15
  deliberately stops short of), while a ``bursty`` stream (16
  back-to-back arrivals per burst) shows the flash-crowd version of the
  same queueing at a *lower* average rate;
* each scenario streams **2,000 arrivals** through a bounded-memory
  engine: the live-state gauge (scheduler records + candidate edges +
  undo segments + parked frames, sampled at every garbage-collection
  pass) must stay within a constant multiple of the in-flight peak —
  O(in-flight), *not* O(total arrivals) — which is asserted on every
  row;
* four scheduler configurations run the identical stream: ``n2pl``,
  ``nto-step``, the optimistic ``certifier`` and the ``modular``
  intra-/inter-object split (all with ``backoff`` restarts; immediate
  restarts thrash at these concurrencies, see E14).  ``modular`` joined
  the grid once its coordinator records and timestamp synchronisers
  became garbage-collected (ROADMAP item 5) — before that its retained
  state grew with the arrival count and the bounded-memory assertion
  could not hold.

Rows are a pure function of the spec (the arrival schedule is seeded),
so ``commit_rate`` and ``throughput`` are machine-independent and
``compare_bench.py`` guards them against the committed
``BENCH_e15_open_system.json`` baseline.  Every scenario is certified
**online** (``certify="stream"``): post-hoc certification of a
2,000-transaction history is an experiment-sized cost of its own (see
the E12 scaling notes), but the streaming certifier's O(new-work)
commit-time checks ride along at a small constant factor (E17 gates it
below 2x at 100k arrivals), so every row now carries a machine-checked
``serialisable`` verdict and the certifier's retained window is counted
into the bounded-memory live-state gauge.  The streaming verdicts are
oracle-tested against post-hoc ``certify_run`` at smaller sizes by
``tests/analysis/test_streaming_certification.py``, and the engine's GC
by ``tests/simulation/test_open_system.py`` ``check=True`` cross-checks.

``REPRO_E15_ARRIVALS`` overrides the stream length for local iteration;
rows are only appended to the trajectory file when the full 2,000-arrival
sweep ran, so shortened smoke runs never pollute the baseline.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.sweep import Axis, AxisPoint, ScenarioSpec, SweepSpec

from .harness import append_bench_rows, print_experiment, run_sweep_rows

COLUMNS = [
    "scheduler", "arrival", "committed", "commit_rate", "arrived",
    "in_flight_peak", "mean_latency", "latency_max", "live_state_peak",
    "live_state_ratio", "saturated", "makespan", "throughput", "serialisable",
]

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e15_open_system.json"

#: Arrivals per scenario (the acceptance floor is 2,000).
DEFAULT_ARRIVALS = 2000
ARRIVALS = int(os.environ.get("REPRO_E15_ARRIVALS", DEFAULT_ARRIVALS))

#: A scenario counts as saturated when its mean latency exceeds this
#: multiple of the same scheduler's latency at the lightest arrival rate.
SATURATION_FACTOR = 4.0

#: Peak live state may exceed the retention window — the in-flight peak
#: plus at most ``gc_interval`` resolved-but-not-yet-collected
#: transactions (the gauge samples just before each pruning pass) — by at
#: most this factor: records scale with the steps *per* retained
#: transaction, never with the total arrival count.  The factor covers
#: the engine's own records *and*, since certification went online, the
#: streaming certifier's retained window (graph nodes/edges, per-object
#: graphs, the classification step window and the replay heap — roughly
#: another ~25 items per not-yet-collected transaction; measured worst
#: case ~52x on the ``certifier`` scheduler, whose optimistic candidate
#: edges stack on top).
LIVE_STATE_RATIO_BOUND = 64.0

GC_INTERVAL = 64

ARRIVAL_POINTS = (
    AxisPoint(
        "poisson@0.02",
        {
            "workload_params.arrival": "poisson",
            "workload_params.arrival_params": {"rate": 0.02},
        },
    ),
    AxisPoint(
        "poisson@0.045",
        {
            "workload_params.arrival": "poisson",
            "workload_params.arrival_params": {"rate": 0.045},
        },
    ),
    AxisPoint(
        "poisson@0.055",
        {
            "workload_params.arrival": "poisson",
            "workload_params.arrival_params": {"rate": 0.055},
        },
    ),
    AxisPoint(
        "bursty@16x640",
        {
            "workload_params.arrival": "bursty",
            "workload_params.arrival_params": {
                "burst": 16,
                "mean_gap": 640,
                "within_gap": 8,
            },
        },
    ),
)

SCHEDULER_POINTS = (
    AxisPoint(
        "n2pl",
        {
            "scheduler": "n2pl",
            "scheduler_kwargs.restart_policy": "backoff",
        },
    ),
    AxisPoint(
        "nto-step",
        {
            "scheduler": "nto-step",
            "scheduler_kwargs.restart_policy": "backoff",
        },
    ),
    AxisPoint(
        "certifier",
        {
            "scheduler": "certifier",
            "scheduler_kwargs.restart_policy": "backoff",
        },
    ),
    # Admitted once ROADMAP item 5 landed: the coordinator's frontier GC
    # and the timestamp synchronisers' watermarks bound its retained state,
    # so the long-horizon grid's live-state assertion holds for it too.
    AxisPoint(
        "modular",
        {
            "scheduler": "modular",
            "scheduler_kwargs.restart_policy": "backoff",
        },
    ),
)


def make_sweep(arrivals: int = ARRIVALS) -> SweepSpec:
    return SweepSpec(
        name="e15_open_system",
        base=ScenarioSpec(
            workload="hotspot-stream",
            scheduler="n2pl",
            seed=1515,
            workload_params={
                "inner_params": {
                    "transactions": arrivals,
                    "hot_objects": 2,
                    "cold_objects": 128,
                    "operations_per_transaction": 2,
                    "hot_probability": 0.05,
                    "use_service_layer": False,
                    "seed": 1515,
                },
                "arrival": "poisson",
                "arrival_params": {"rate": 0.02},
            },
            engine_params={"gc_interval": GC_INTERVAL},
            certify="stream",
        ),
        axes=(
            Axis("scheduler", SCHEDULER_POINTS, target="scheduler"),
            Axis("arrival", ARRIVAL_POINTS),
        ),
    )


def run_experiment(arrivals: int = ARRIVALS) -> list[dict]:
    rows = run_sweep_rows(make_sweep(arrivals))
    # Per-scheduler saturation flag: latency vs the lightest poisson point.
    lightest = {
        row["scheduler"]: row["mean_latency"]
        for row in rows
        if row["arrival"] == ARRIVAL_POINTS[0].label
    }
    for row in rows:
        floor = max(lightest.get(row["scheduler"], 0.0), 1e-9)
        row["experiment"] = "e15_open_system"
        row["saturated"] = bool(row["mean_latency"] > SATURATION_FACTOR * floor)
    return rows


def write_bench_json(rows: list[dict], path: Path = BENCH_JSON) -> None:
    """Append this sweep's rows to the recorded trajectory (full runs only).

    Gated on the rows themselves, not on the environment: a shortened
    stream (however it was requested) must never enter the trajectory the
    regression gate compares against.
    """
    if rows and all(row.get("arrived") == DEFAULT_ARRIVALS for row in rows):
        append_bench_rows(path, "e15_open_system", rows)


def test_e15_open_system(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E15: open-system arrival streams (saturation & latency)", rows, COLUMNS)
    write_bench_json(rows)
    for row in rows:
        label = f"{row['scheduler']}/{row['arrival']}"
        # Every arrival enters the system and (with backoff restarts at
        # these utilisations) every transaction eventually commits.
        assert row["arrived"] == ARRIVALS, f"{label}: stream released {row['arrived']}"
        assert row["committed"] == ARRIVALS, (
            f"{label}: only {row['committed']}/{ARRIVALS} commits"
        )
        # Certification runs online now; every stream must certify clean.
        assert row["serialisable"] is True, f"{label}: stream failed certification"
        # The bounded-memory claim: peak retained live state tracks the
        # retention window (in-flight + one GC interval), not the total
        # arrival count.
        window = max(1, row["in_flight_peak"]) + GC_INTERVAL
        assert row["live_state_peak"] <= LIVE_STATE_RATIO_BOUND * window, (
            f"{label}: live-state peak {row['live_state_peak']} exceeds "
            f"{LIVE_STATE_RATIO_BOUND}x the retention window {window} "
            f"(in-flight peak {row['in_flight_peak']} + gc_interval {GC_INTERVAL})"
        )
    # The latency knee: every scheduler's near-capacity poisson point is
    # strictly slower than its lightest one.
    for scheduler in ("n2pl", "nto-step", "certifier", "modular"):
        by_arrival = {
            row["arrival"]: row for row in rows if row["scheduler"] == scheduler
        }
        light = by_arrival[ARRIVAL_POINTS[0].label]["mean_latency"]
        heavy = by_arrival[ARRIVAL_POINTS[2].label]["mean_latency"]
        assert heavy > light, f"{scheduler}: no latency growth towards capacity"


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    experiment_rows = run_experiment()
    print_experiment(
        "E15: open-system arrival streams (saturation & latency)", experiment_rows, COLUMNS
    )
    write_bench_json(experiment_rows)
