"""Diff the latest recorded benchmark sweeps against their committed baselines.

The watched benchmarks append one row per configuration to their
``BENCH_*.json`` trajectory on every sweep, so the first recorded row per
configuration is the committed baseline and the last is the sweep that
just ran.  This script compares the two and reports when a watched ratio
dropped by more than ``THRESHOLD`` — the watched columns are
machine-independent by construction, so a drop means behaviour (or the
fast path) regressed, wherever the sweep ran.  Run it as
``python -m benchmarks.compare_bench``.

By default regressions *warn* (GitHub Actions ``::warning::``
annotations; exit code stays 0).  With ``--fail-on-regression`` they
become ``::error::`` annotations and the exit code is 1 when any
regression fired, which is how CI gates pull requests while staying
warn-only on pushes.

Watched files:

* ``BENCH_e12_certification_scaling.json`` — the indexed/incremental
  certification speedups over the legacy builders, measured within one
  sweep on one machine (a wall-time *ratio*, hence machine-independent).
* ``BENCH_e14_restart_policies.json`` — each restart/contention policy's
  ``recovery_ratio`` (its commit rate over the storm baseline's), a pure
  function of the deterministic scenario spec.
* ``BENCH_e15_open_system.json`` — each open-system scenario's
  ``commit_rate`` and ``throughput`` (committed over makespan), pure
  functions of the deterministic arrival stream.
* ``BENCH_e17_streaming_certification.json`` — each scheduler's
  ``certify_relative_throughput`` (plain wall clock over certified wall
  clock, an in-run ratio): the streaming certifier's O(new-work)
  overhead drifting back towards post-hoc cost shows up here.
* ``BENCH_e18_sharding.json`` — each shard count's ``mu_ratio_vs_one``
  (measured μ over the same mode's 1-shard μ, an in-run wall ratio)
  plus ``commit_rate`` as the deterministic canary: the sharded engine's
  parallel headroom eroding — or a coordinator change that thrashes
  more — shows up here.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
THRESHOLD = 1.30  # flag when a watched ratio degrades beyond 30%


@dataclass(frozen=True)
class Watch:
    """One benchmark trajectory file and the ratio columns to guard.

    ``noise_floor`` optionally names a (column, minimum) pair the
    *baseline* row must satisfy for its configuration to be compared at
    all: wall-time ratios built on sub-millisecond measurements are pure
    scheduling jitter, and gating pull requests on jitter would make CI
    flaky.  Configurations below the floor count as not-compared.
    """

    name: str
    path: Path
    key_fields: tuple[str, ...]
    columns: tuple[str, ...]
    noise_floor: tuple[str, float] | None = None


WATCHES = (
    Watch(
        name="E12",
        path=BENCH_DIR / "BENCH_e12_certification_scaling.json",
        key_fields=("scheduler", "transactions"),
        columns=("speedup_indexed", "speedup_incremental"),
        # The certifier configurations' legacy certification takes well
        # under a millisecond — their speedup ratios are noise; only the
        # meaningfully-timed configurations gate.
        noise_floor=("certify_legacy_seconds", 0.05),
    ),
    Watch(
        name="E14",
        path=BENCH_DIR / "BENCH_e14_restart_policies.json",
        key_fields=("policy",),
        columns=("recovery_ratio",),
    ),
    Watch(
        name="E15",
        path=BENCH_DIR / "BENCH_e15_open_system.json",
        key_fields=("scheduler", "arrival"),
        columns=("commit_rate", "throughput"),
    ),
    Watch(
        name="E16",
        path=BENCH_DIR / "BENCH_e16_hot_loop.json",
        # ``engine`` in the key keeps the committed ``pre_pr`` rows out of
        # the comparison (they are a single sweep, never re-recorded); the
        # ratio columns are the in-run event/scan and event/baseline
        # factors, both machine-independent enough to trend-watch.
        key_fields=("scheduler", "mode", "engine"),
        columns=("speedup_scan", "speedup_vs_baseline"),
        # Stream scenarios finish the scan run in ~half a second; anything
        # quicker than the floor is timing jitter, not signal.
        noise_floor=("wall_seconds_scan", 0.25),
    ),
    Watch(
        name="E17",
        path=BENCH_DIR / "BENCH_e17_streaming_certification.json",
        key_fields=("scheduler",),
        # The certification overhead as a *throughput* ratio (plain wall
        # over certified wall) so that, like every watched column, higher
        # is better; ``commit_rate`` rides along as the determinism canary.
        columns=("certify_relative_throughput", "commit_rate"),
        # Both walls come from the same in-process run pair, but a plain
        # run quicker than the floor makes the ratio scheduling jitter.
        noise_floor=("wall_seconds_plain", 0.25),
    ),
    Watch(
        name="E18",
        path=BENCH_DIR / "BENCH_e18_sharding.json",
        key_fields=("case", "mode", "scheduler", "shards"),
        # ``mu_ratio_vs_one`` is each shard count's measured μ over the
        # same mode's 1-shard μ — an in-run wall ratio, so it needs the
        # noise floor; ``commit_rate`` rides along as the deterministic
        # canary (a coordinator change that thrashes more degrades it
        # identically on every machine).  The cross rows carry no μ ratio
        # (``None`` skips comparison) but their commit_rate still gates.
        columns=("mu_ratio_vs_one", "commit_rate"),
        noise_floor=("wall_seconds", 0.25),
    ),
    Watch(
        name="E19",
        path=BENCH_DIR / "BENCH_e19_adaptive.json",
        key_fields=("scenario", "scheduler"),
        # ``commit_rate`` and ``throughput_vs_best_fixed`` (the adaptive
        # rows' throughput over the best fixed strategy's on the same
        # scenario; None on fixed rows skips them) are pure functions of
        # the seeded spec, but sub-floor smoke cells would make the grid
        # itself untrustworthy, so the wall floor keeps only
        # experiment-sized baselines gating.
        columns=("commit_rate", "throughput_vs_best_fixed"),
        noise_floor=("wall_seconds", 0.25),
    ),
)


def compare(watch: Watch) -> tuple[list[str], list[str], int]:
    """Return ``(notices, warnings, compared)`` for one watched file.

    ``notices`` are file problems, ``warnings`` genuine regressions, and
    ``compared`` counts the configurations that actually had both a
    baseline and a fresh sweep — so the caller can distinguish "all clear"
    from "nothing was compared".
    """
    if not watch.path.exists():
        return [f"no benchmark file at {watch.path}; nothing to compare"], [], 0
    try:
        rows = json.loads(watch.path.read_text()).get("rows", [])
    except ValueError:
        return [f"unreadable benchmark file at {watch.path}"], [], 0
    by_config: dict[tuple, list[dict]] = {}
    for row in rows:
        key = tuple(row.get(field) for field in watch.key_fields)
        by_config.setdefault(key, []).append(row)

    warnings: list[str] = []
    compared = 0
    for key, config_rows in sorted(
        by_config.items(), key=lambda item: tuple(str(part) for part in item[0])
    ):
        if len(config_rows) < 2:
            continue  # only the baseline sweep is recorded
        baseline, latest = config_rows[0], config_rows[-1]
        if watch.noise_floor is not None:
            floor_column, floor = watch.noise_floor
            floor_value = baseline.get(floor_column)
            if not isinstance(floor_value, (int, float)) or floor_value < floor:
                continue  # measurement too small to carry signal
        label = "/".join(str(part) for part in key)
        config_compared = False
        for column in watch.columns:
            before = baseline.get(column)
            after = latest.get(column)
            if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
                continue
            if isinstance(before, bool) or isinstance(after, bool):
                continue
            if before != before or after != after:  # NaN: every compare is false
                continue
            if before <= 0:
                continue
            config_compared = True
            degradation = before / max(after, 1e-9)
            if degradation > THRESHOLD:
                warnings.append(
                    f"{label} {column}: {before:.2f}x -> {after:.2f}x "
                    f"({degradation:.2f}x drop, threshold {THRESHOLD:.2f}x)"
                )
        compared += config_compared
    return [], warnings, compared


def report(watch: Watch, *, strict: bool = False) -> int:
    """Print one watch's verdicts; returns the number of regressions.

    Args:
        watch: the trajectory file and columns to compare.
        strict: annotate regressions as ``::error::`` instead of
            ``::warning::`` (the caller decides whether to fail on them).
    """
    annotation = "error" if strict else "warning"
    notices, warnings, compared = compare(watch)
    for message in notices:
        print(f"{watch.name} comparison skipped: {message}")
    for message in warnings:
        print(f"::{annotation}::{watch.name} ratio regression: {message}")
    if warnings:
        print(f"{watch.name}: {len(warnings)} regression(s); see above.")
    elif not notices:
        if compared:
            print(
                f"{watch.name} ratios within 30% of the committed baseline "
                f"({compared} configuration(s) compared)."
            )
        else:
            print(
                f"{watch.name} comparison skipped: no configuration had both a "
                f"baseline and a fresh sweep recorded (did the {watch.name} "
                "bench step run?)."
            )
    return len(warnings)


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    strict = "--fail-on-regression" in arguments
    if strict:
        arguments.remove("--fail-on-regression")
    if arguments:
        # Explicit path: compare it with the watch whose file name matches,
        # defaulting to the E12 shape for unknown files (backward compat).
        path = Path(arguments[0])
        matching = next((w for w in WATCHES if w.path.name == path.name), WATCHES[0])
        watches = (
            Watch(
                matching.name,
                path,
                matching.key_fields,
                matching.columns,
                matching.noise_floor,
            ),
        )
    else:
        watches = WATCHES
    regressions = sum(report(watch, strict=strict) for watch in watches)
    if strict and regressions:
        print(
            f"{regressions} benchmark regression(s) beyond the {THRESHOLD:.2f}x "
            "threshold; failing (--fail-on-regression)."
        )
        return 1
    return 0  # without --fail-on-regression, regressions only warn


if __name__ == "__main__":
    raise SystemExit(main())
