"""Diff the latest E12 sweep against the committed baseline.

The E12 benchmark appends one row per configuration to
``BENCH_e12_certification_scaling.json`` on every sweep, so the first
recorded row per ``(scheduler, transactions)`` configuration is the
committed baseline and the last is the sweep that just ran.  This script
compares the two and *warns* (GitHub Actions ``::warning::`` annotations;
exit code stays 0) when a configuration's indexed/incremental speedup over
the legacy builders dropped by more than ``THRESHOLD`` — a
machine-independent proxy for "the fast path got slower".  Run it as
``python -m benchmarks.compare_bench``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_JSON = Path(__file__).resolve().parent / "BENCH_e12_certification_scaling.json"
THRESHOLD = 1.30  # warn when a watched ratio degrades beyond 30%

# Absolute wall times are machine-dependent (the committed baseline was
# recorded on a different box than the CI runner), so the comparison
# watches the *ratios* recorded within each sweep: the indexed and
# incremental speedups over the legacy builders measured on the same
# machine in the same process.  A >30% drop means the indexed path
# regressed relative to the legacy yardstick, wherever the sweep ran.
WATCHED = ("speedup_indexed", "speedup_incremental")


def compare(path: Path = DEFAULT_JSON) -> tuple[list[str], list[str]]:
    """Return ``(notices, warnings)``: file problems vs genuine regressions."""
    if not path.exists():
        return [f"no benchmark file at {path}; nothing to compare"], []
    try:
        rows = json.loads(path.read_text()).get("rows", [])
    except ValueError:
        return [f"unreadable benchmark file at {path}"], []
    by_config: dict[tuple, list[dict]] = {}
    for row in rows:
        key = (row.get("scheduler"), row.get("transactions"))
        by_config.setdefault(key, []).append(row)

    warnings: list[str] = []
    for (scheduler, transactions), config_rows in sorted(
        by_config.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
    ):
        if len(config_rows) < 2:
            continue  # only the baseline sweep is recorded
        baseline, latest = config_rows[0], config_rows[-1]
        for column in WATCHED:
            before = baseline.get(column)
            after = latest.get(column)
            if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
                continue
            if before <= 0:
                continue
            degradation = before / max(after, 1e-9)
            if degradation > THRESHOLD:
                warnings.append(
                    f"{scheduler}/{transactions} {column}: {before:.2f}x -> {after:.2f}x "
                    f"({degradation:.2f}x drop, threshold {THRESHOLD:.2f}x)"
                )
    return [], warnings


def main() -> int:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_JSON
    notices, warnings = compare(path)
    for message in notices:
        print(f"E12 comparison skipped: {message}")
    for message in warnings:
        print(f"::warning::E12 speedup regression: {message}")
    if warnings:
        print(f"{len(warnings)} regression warning(s); see above.")
    elif not notices:
        print("E12 speedups within 30% of the committed baseline.")
    return 0  # warn-only: never fail the build


if __name__ == "__main__":
    raise SystemExit(main())
