"""Diff the latest E12 sweep against the committed baseline.

The E12 benchmark appends one row per configuration to
``BENCH_e12_certification_scaling.json`` on every sweep, so the first
recorded row per ``(scheduler, transactions)`` configuration is the
committed baseline and the last is the sweep that just ran.  This script
compares the two and *warns* (GitHub Actions ``::warning::`` annotations;
exit code stays 0) when a configuration's indexed/incremental speedup over
the legacy builders dropped by more than ``THRESHOLD`` — a
machine-independent proxy for "the fast path got slower".  Run it as
``python -m benchmarks.compare_bench``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_JSON = Path(__file__).resolve().parent / "BENCH_e12_certification_scaling.json"
THRESHOLD = 1.30  # warn when a watched ratio degrades beyond 30%

# Absolute wall times are machine-dependent (the committed baseline was
# recorded on a different box than the CI runner), so the comparison
# watches the *ratios* recorded within each sweep: the indexed and
# incremental speedups over the legacy builders measured on the same
# machine in the same process.  A >30% drop means the indexed path
# regressed relative to the legacy yardstick, wherever the sweep ran.
WATCHED = ("speedup_indexed", "speedup_incremental")


def compare(path: Path = DEFAULT_JSON) -> tuple[list[str], list[str], int]:
    """Return ``(notices, warnings, compared)``.

    ``notices`` are file problems, ``warnings`` genuine regressions, and
    ``compared`` counts the configurations that actually had both a
    baseline and a fresh sweep — so the caller can distinguish "all clear"
    from "nothing was compared".
    """
    if not path.exists():
        return [f"no benchmark file at {path}; nothing to compare"], [], 0
    try:
        rows = json.loads(path.read_text()).get("rows", [])
    except ValueError:
        return [f"unreadable benchmark file at {path}"], [], 0
    by_config: dict[tuple, list[dict]] = {}
    for row in rows:
        key = (row.get("scheduler"), row.get("transactions"))
        by_config.setdefault(key, []).append(row)

    warnings: list[str] = []
    compared = 0
    for (scheduler, transactions), config_rows in sorted(
        by_config.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
    ):
        if len(config_rows) < 2:
            continue  # only the baseline sweep is recorded
        baseline, latest = config_rows[0], config_rows[-1]
        config_compared = False
        for column in WATCHED:
            before = baseline.get(column)
            after = latest.get(column)
            if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
                continue
            if before <= 0:
                continue
            config_compared = True
            degradation = before / max(after, 1e-9)
            if degradation > THRESHOLD:
                warnings.append(
                    f"{scheduler}/{transactions} {column}: {before:.2f}x -> {after:.2f}x "
                    f"({degradation:.2f}x drop, threshold {THRESHOLD:.2f}x)"
                )
        compared += config_compared
    return [], warnings, compared


def main() -> int:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_JSON
    notices, warnings, compared = compare(path)
    for message in notices:
        print(f"E12 comparison skipped: {message}")
    for message in warnings:
        print(f"::warning::E12 speedup regression: {message}")
    if warnings:
        print(f"{len(warnings)} regression warning(s); see above.")
    elif not notices:
        if compared:
            print(
                f"E12 speedups within 30% of the committed baseline "
                f"({compared} configuration(s) compared)."
            )
        else:
            print(
                "E12 comparison skipped: no configuration had both a baseline "
                "and a fresh sweep recorded (did the E12 bench step run?)."
            )
    return 0  # warn-only: never fail the build


if __name__ == "__main__":
    raise SystemExit(main())
