"""E14 — restart & contention policies: taming CommitGate cascade storms.

Under the legacy ``immediate`` restart policy and the ``cascade`` commit
gate, the optimistic certifier's commit rate collapses on contended
hotspot workloads: every hot-object conflict seeds a read-from
dependency, each validation abort cascades through the commit-waiters,
and every cascaded victim restarts straight back into the unchanged hot
set until it exhausts its restart budget (the storm DESIGN.md tracked as
a known limitation through PR 3).

PR 4 made both halves of the pathology pluggable policies, and this
experiment measures the recovery on the storm scenario itself: one
certifier configuration per ``(restart_policy, gate_mode)`` point —

* ``immediate/cascade`` — the storm baseline (commit rate ≤ 0.1 here);
* ``backoff/cascade`` — seeded randomized-exponential restart delays
  de-correlate the retries;
* ``ordered/cascade``  — wait-die-style seniority: young lineages defer
  to old ones, so the oldest can never cascade forever;
* ``immediate/aca``    — the gate blocks conflicting reads of
  uncommitted effects at execution time, so commits never cascade;
* ``backoff/aca``      — both levers at once.

Every scenario certifies its committed projection with the *full*
legality replay check (``check_legality=True``); the policies may only
change *throughput*, never correctness, so the ``legal`` and
``serialisable`` columns must be true in every mode.  Each row's
``recovery_ratio`` — its commit rate over the storm baseline's (floored
at half a transaction to stay finite when the baseline commits nothing)
— is machine-independent, and ``compare_bench.py`` warns when it
regresses >30% against the committed ``BENCH_e14_restart_policies.json``
baseline.
"""

from __future__ import annotations

from pathlib import Path

from repro.sweep import Axis, AxisPoint, ScenarioSpec, SweepSpec

from .harness import append_bench_rows, print_experiment, run_sweep_rows

COLUMNS = [
    "policy", "commit_rate", "recovery_ratio", "committed", "aborts", "gave_up",
    "cascade_aborts", "deadlocks", "restarts", "delayed_restarts", "makespan",
    "legal", "serialisable",
]

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_e14_restart_policies.json"

#: The storm scenario: 28 update transactions fighting over 3 hot
#: registers half the time.  Under immediate/cascade this commits 0/28.
TRANSACTIONS = 28

BASELINE_POLICY = "immediate/cascade"

POLICY_POINTS = (
    AxisPoint(
        "immediate/cascade",
        {
            "scheduler_kwargs.restart_policy": "immediate",
            "scheduler_kwargs.gate_mode": "cascade",
        },
    ),
    AxisPoint(
        "backoff/cascade",
        {
            "scheduler_kwargs.restart_policy": "backoff",
            "scheduler_kwargs.gate_mode": "cascade",
        },
    ),
    AxisPoint(
        "ordered/cascade",
        {
            "scheduler_kwargs.restart_policy": "ordered",
            "scheduler_kwargs.gate_mode": "cascade",
        },
    ),
    AxisPoint(
        "immediate/aca",
        {
            "scheduler_kwargs.restart_policy": "immediate",
            "scheduler_kwargs.gate_mode": "aca",
        },
    ),
    AxisPoint(
        "backoff/aca",
        {
            "scheduler_kwargs.restart_policy": "backoff",
            "scheduler_kwargs.gate_mode": "aca",
        },
    ),
)

SWEEP = SweepSpec(
    name="e14_restart_policies",
    base=ScenarioSpec(
        workload="hotspot",
        scheduler="certifier",
        seed=1313,
        workload_params={
            "transactions": TRANSACTIONS,
            "hot_objects": 3,
            "cold_objects": 48,
            "operations_per_transaction": 4,
            "hot_probability": 0.5,
            "seed": 1313,
        },
        certify=True,
        check_legality=True,
    ),
    axes=(Axis("policy", POLICY_POINTS),),
)


def run_experiment() -> list[dict]:
    rows = run_sweep_rows(SWEEP)
    baseline = next(row for row in rows if row["policy"] == BASELINE_POLICY)
    # Commit rates are deterministic counts, so the ratio is comparable
    # across machines; the floor keeps it finite when the storm baseline
    # commits nothing at all.
    floor = max(baseline["commit_rate"], 0.5 / TRANSACTIONS)
    for row in rows:
        row["experiment"] = "e14_restart_policies"
        row["recovery_ratio"] = round(row["commit_rate"] / floor, 2)
    return rows


def write_bench_json(rows: list[dict], path: Path = BENCH_JSON) -> None:
    """Append this sweep's rows to the recorded trajectory."""
    append_bench_rows(path, "e14_restart_policies", rows)


def test_e14_restart_policies(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_experiment("E14: restart & contention policies vs the cascade storm", rows, COLUMNS)
    write_bench_json(rows)
    by_policy = {row["policy"]: row for row in rows}
    # Correctness is policy-independent: every mode's committed history
    # must replay legally and serialise.
    for row in rows:
        assert row["legal"] is True, f"{row['policy']}: committed history not legal"
        assert row["serialisable"] is True, f"{row['policy']}: committed history not serialisable"
    # The storm baseline really is a storm...
    assert by_policy[BASELINE_POLICY]["commit_rate"] <= 0.1, "baseline storm disappeared"
    # ...and at least one policy recovers the commit rate past 0.5.
    recovered = max(
        row["commit_rate"] for row in rows if row["policy"] != BASELINE_POLICY
    )
    assert recovered >= 0.5, f"no policy recovered the commit rate (best {recovered:.2f})"


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    experiment_rows = run_experiment()
    print_experiment(
        "E14: restart & contention policies vs the cascade storm", experiment_rows, COLUMNS
    )
    write_bench_json(experiment_rows)
