"""Experiment benchmarks (E1-E11); see DESIGN.md for the experiment index.

A package so the ``bench_e*`` modules can share :mod:`benchmarks.harness`
whether they are run under pytest (``pytest benchmarks/``) or as modules
(``python -m benchmarks.bench_e11_abort_heavy``).
"""
