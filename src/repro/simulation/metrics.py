"""Run metrics and results.

Every simulation run produces a :class:`RunResult`: the recorded history,
the set of executions that belong to aborted transaction attempts, and a
:class:`RunMetrics` summary with the quantities the experiments report —
committed/aborted transaction counts, abort reasons, blocking, wasted work
and the makespan in scheduler ticks.  A tick is one *productive*
scheduling decision for a runnable frame: parked frames consume no ticks,
so restarts lengthen the makespan (aborted work is redone) while blocking
shows up in the waiting counters below, not as a longer tick count.

The engine is event-driven: a frame whose operation is BLOCKed is *parked*
(removed from the runnable set) until a wake-up fires, so ``blocked_ticks``
measures the ticks frames actually spent waiting on conflicting owners —
contention — rather than how often a busy-wait loop re-polled the
scheduler.  ``parks``/``wakes`` count the park/wake transitions themselves,
and ``commit_wait_ticks`` separately accounts for time spent parked at the
commit point waiting for read-from dependencies to resolve (an optimistic
scheduler that never blocks an *operation* still reports 0 blocked ticks).

Restart policies (:mod:`repro.scheduler.restart`) add their own counters:
``restarts`` counts resubmissions actually performed, ``delayed_restarts``
the subset that waited on the engine's delayed-restart queue, and
``restart_delay_ticks`` the total scheduled waiting time.  A delayed
restart consumes no scheduling decisions while waiting; its delay overlaps
with other frames' work and only stretches the makespan when nothing else
is runnable (the engine then fast-forwards the clock to the next due
restart).  ``commit_rate`` — committed over submitted — is the headline
policy metric: cascade storms collapse it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from ..core.history import History
from .events import Trace


@dataclass
class RunMetrics:
    """Aggregate counters of one simulation run."""

    total_ticks: int = 0
    #: Scheduling decisions actually made (one runnable frame advanced per
    #: decision).  Equal to ``total_ticks`` on closed runs; smaller on runs
    #: whose clock fast-forwarded across idle gaps (delayed restarts,
    #: arrival streams), where the difference is exactly the skipped idle
    #: time.  ``decisions / wall-clock`` is the engine's raw service
    #: throughput, which ``benchmarks/bench_e16_hot_loop.py`` tracks.
    decisions: int = 0
    committed: int = 0
    aborted_attempts: int = 0
    gave_up: int = 0
    restarts: int = 0
    delayed_restarts: int = 0
    restart_delay_ticks: int = 0
    local_steps: int = 0
    wasted_steps: int = 0
    blocked_ticks: int = 0
    invocations: int = 0
    #: Invocations shipped to another shard's engine (0 on plain runs).
    remote_invocations: int = 0
    aborts_by_reason: Counter = field(default_factory=Counter)
    faults_injected: int = 0
    submitted: int = 0
    parks: int = 0
    wakes: int = 0
    forced_wakes: int = 0
    commit_parks: int = 0
    wait_ticks: int = 0
    commit_wait_ticks: int = 0
    # Open-system (streaming) quantities.  ``arrived`` counts transactions
    # released by an arrival stream (0 for closed-batch runs); the latency
    # aggregates cover every committed transaction, measured in ticks from
    # its arrival (tick 0 for closed submissions) to its commit, across
    # restarts.  ``in_flight_peak`` is the largest number of transactions
    # simultaneously in the system (arrived but not yet committed or given
    # up).
    arrived: int = 0
    in_flight_peak: int = 0
    latency_count: int = 0
    latency_sum: int = 0
    latency_max: int = 0
    # Live-state gauge, sampled at every garbage-collection pass: retained
    # scheduler records + candidate edges + undo-log segments + parked
    # frames.  ``live_state_peak`` is the largest sample;
    # ``live_state_ratio_peak`` the largest sample-to-in-flight ratio,
    # which a bounded-memory run keeps (roughly) flat however long the
    # stream goes.
    live_state_peak: int = 0
    live_state_ratio_peak: float = 0.0
    live_state_samples: int = 0

    # -- recording helpers -------------------------------------------------------

    def note_latency(self, latency: int) -> None:
        """Record one committed transaction's arrival-to-commit latency."""
        self.latency_count += 1
        self.latency_sum += latency
        if latency > self.latency_max:
            self.latency_max = latency

    def note_live_state(self, sample: int, in_flight: int) -> None:
        """Record one live-state gauge sample against the in-flight count."""
        self.live_state_samples += 1
        if sample > self.live_state_peak:
            self.live_state_peak = sample
        ratio = sample / max(1, in_flight)
        if ratio > self.live_state_ratio_peak:
            self.live_state_ratio_peak = ratio

    # -- derived quantities -----------------------------------------------------

    @property
    def throughput(self) -> float:
        """Committed transactions per tick (the headline concurrency metric)."""
        if self.total_ticks == 0:
            return 0.0
        return self.committed / self.total_ticks

    @property
    def commit_rate(self) -> float:
        """Committed transactions as a fraction of submissions.

        The headline restart-policy metric: a cascade storm shows up as a
        collapse of this rate (most submissions exhaust their restart
        budget and give up), independent of the machine the run executed
        on.
        """
        if self.submitted == 0:
            return 0.0
        return self.committed / self.submitted

    @property
    def abort_rate(self) -> float:
        """Aborted attempts as a fraction of all finished attempts."""
        finished = self.committed + self.aborted_attempts
        if finished == 0:
            return 0.0
        return self.aborted_attempts / finished

    @property
    def blocked_fraction(self) -> float:
        """Blocked waiting time relative to the makespan.

        Waiting frames overlap, so the fraction can exceed 1.0 on heavily
        contended runs — it is an aggregate waiting ratio, not a share of a
        single timeline.
        """
        if self.total_ticks == 0:
            return 0.0
        return self.blocked_ticks / self.total_ticks

    @property
    def wasted_fraction(self) -> float:
        """Fraction of executed local steps that belonged to aborted attempts."""
        if self.local_steps == 0:
            return 0.0
        return self.wasted_steps / self.local_steps

    @property
    def mean_latency(self) -> float:
        """Mean arrival-to-commit latency in ticks over committed transactions."""
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum / self.latency_count

    @property
    def live_state_per_in_flight(self) -> float:
        """Peak live-state gauge relative to the peak in-flight population.

        The bounded-memory headline: on a garbage-collected stream this
        stays a (workload-dependent) constant however many transactions
        pass through, because retained state tracks the in-flight
        population, not the total arrival count.
        """
        if self.live_state_peak == 0:
            return 0.0
        return self.live_state_peak / max(1, self.in_flight_peak)

    def as_dict(self) -> dict[str, Any]:
        return {
            "total_ticks": self.total_ticks,
            "decisions": self.decisions,
            "committed": self.committed,
            "aborted_attempts": self.aborted_attempts,
            "gave_up": self.gave_up,
            "restarts": self.restarts,
            "delayed_restarts": self.delayed_restarts,
            "restart_delay_ticks": self.restart_delay_ticks,
            "local_steps": self.local_steps,
            "wasted_steps": self.wasted_steps,
            "blocked_ticks": self.blocked_ticks,
            "invocations": self.invocations,
            "remote_invocations": self.remote_invocations,
            "submitted": self.submitted,
            "parks": self.parks,
            "wakes": self.wakes,
            "forced_wakes": self.forced_wakes,
            "commit_parks": self.commit_parks,
            "wait_ticks": self.wait_ticks,
            "commit_wait_ticks": self.commit_wait_ticks,
            "arrived": self.arrived,
            "in_flight_peak": self.in_flight_peak,
            "mean_latency": self.mean_latency,
            "latency_max": self.latency_max,
            "live_state_peak": self.live_state_peak,
            "live_state_ratio_peak": self.live_state_ratio_peak,
            "live_state_samples": self.live_state_samples,
            "live_state_per_in_flight": self.live_state_per_in_flight,
            "throughput": self.throughput,
            "commit_rate": self.commit_rate,
            "abort_rate": self.abort_rate,
            "blocked_fraction": self.blocked_fraction,
            "wasted_fraction": self.wasted_fraction,
            "aborts_by_reason": dict(self.aborts_by_reason),
            "faults_injected": self.faults_injected,
        }


def merge_run_metrics(parts: "list[RunMetrics]") -> RunMetrics:
    """Fold per-shard metrics into one fleet-level :class:`RunMetrics`.

    Counters add across shards.  ``total_ticks`` is the maximum — shards
    advance lock-step rounds towards a common horizon, so the slowest
    shard's clock is the fleet makespan.  The two peak gauges
    (``in_flight_peak``, ``live_state_peak``) add as a documented *upper
    bound*: per-shard peaks need not coincide in time, so the sum can
    overstate the simultaneous fleet peak but never understates it (the
    bounded-memory assertions stay conservative).  The ratio peak takes
    the worst shard.
    """
    merged = RunMetrics()
    for metrics in parts:
        merged.total_ticks = max(merged.total_ticks, metrics.total_ticks)
        merged.decisions += metrics.decisions
        merged.committed += metrics.committed
        merged.aborted_attempts += metrics.aborted_attempts
        merged.gave_up += metrics.gave_up
        merged.restarts += metrics.restarts
        merged.delayed_restarts += metrics.delayed_restarts
        merged.restart_delay_ticks += metrics.restart_delay_ticks
        merged.local_steps += metrics.local_steps
        merged.wasted_steps += metrics.wasted_steps
        merged.blocked_ticks += metrics.blocked_ticks
        merged.invocations += metrics.invocations
        merged.remote_invocations += metrics.remote_invocations
        merged.aborts_by_reason.update(metrics.aborts_by_reason)
        merged.faults_injected += metrics.faults_injected
        merged.submitted += metrics.submitted
        merged.parks += metrics.parks
        merged.wakes += metrics.wakes
        merged.forced_wakes += metrics.forced_wakes
        merged.commit_parks += metrics.commit_parks
        merged.wait_ticks += metrics.wait_ticks
        merged.commit_wait_ticks += metrics.commit_wait_ticks
        merged.arrived += metrics.arrived
        merged.in_flight_peak += metrics.in_flight_peak
        merged.latency_count += metrics.latency_count
        merged.latency_sum += metrics.latency_sum
        merged.latency_max = max(merged.latency_max, metrics.latency_max)
        merged.live_state_peak += metrics.live_state_peak
        merged.live_state_ratio_peak = max(
            merged.live_state_ratio_peak, metrics.live_state_ratio_peak
        )
        merged.live_state_samples += metrics.live_state_samples
    return merged


@dataclass
class RunResult:
    """Everything a simulation run produced."""

    history: History
    metrics: RunMetrics
    scheduler_description: dict[str, Any]
    aborted_execution_ids: frozenset[str]
    committed_transaction_ids: tuple[str, ...]
    #: The :class:`~repro.analysis.certify.CertificationReport` built online
    #: by the streaming certifier when the engine ran with
    #: ``certify="stream"``; ``None`` otherwise.  Typed loosely because
    #: :mod:`repro.analysis.certify` imports this module.
    streaming_report: Any | None = None
    trace: Trace | None = None
    #: The arrival process configuration of an open-system run
    #: (:meth:`~repro.simulation.arrivals.ArrivalProcess.describe`);
    #: ``None`` for closed-batch runs.
    arrival_description: dict[str, Any] | None = None

    def committed_history(self) -> History:
        """The committed projection: aborted transaction subtrees removed.

        Interval-backed histories (everything the engine records) keep the
        surviving intervals verbatim — the temporal order is never
        materialised as explicit pairs.  Order-pair histories restrict the
        *transitive* order to the surviving steps
        (:meth:`~repro.core.history.History.projected_order_pairs`), so
        orderings that passed through a dropped step are preserved.
        """
        surviving = [
            execution
            for execution_id, execution in self.history.executions.items()
            if execution_id not in self.aborted_execution_ids
        ]
        intervals = self.history.intervals()
        surviving_step_ids = {
            step.step_id for execution in surviving for step in execution.steps()
        }
        if intervals is not None:
            kept_intervals = {
                step_id: interval
                for step_id, interval in intervals.items()
                if step_id in surviving_step_ids
            }
            return History(
                surviving,
                self.history.initial_states,
                conflicts=self.history.conflicts,
                intervals=kept_intervals,
            )
        return History(
            surviving,
            self.history.initial_states,
            conflicts=self.history.conflicts,
            order_pairs=self.history.projected_order_pairs(surviving_step_ids),
        )

    def final_states(self) -> dict[str, Any]:
        """Final object states of the committed projection of the run.

        The full recorded history also contains the steps of aborted
        attempts, whose effects the engine undid, so replaying it would not
        reflect the object base's actual end state; the committed projection
        does.
        """
        return self.committed_history().final_states()

    def summary(self) -> dict[str, Any]:
        """A flat dictionary convenient for printing experiment tables."""
        data = self.metrics.as_dict()
        data["scheduler"] = self.scheduler_description.get("name", "?")
        return data
