"""Seeded arrival processes for open-system simulation.

Every experiment before E15 ran a *closed* system: a fixed batch of
transactions was submitted up front and the engine drained it, so the
schedulers were only ever measured on the transient of a starting burst.
An :class:`ArrivalProcess` turns the same transaction list into an *open*
workload: it assigns each transaction a deterministic arrival tick, and
:meth:`~repro.simulation.engine.SimulationEngine.submit_stream` releases
the transactions into the running engine as the simulated clock crosses
those ticks.  Per-transaction latency (arrival → commit), sustained
throughput and the in-flight count then become measurable, and the
saturation point — the arrival rate beyond which the in-flight population
grows without bound — becomes a property of the scheduler, which
``benchmarks/bench_e15_open_system.py`` sweeps.

All randomness is owned by the process and seeded deterministically: a
run remains a pure function of ``(workload seed, engine seed, arrival
process configuration)``, exactly like the restart policies
(:mod:`repro.scheduler.restart`), so the sweep layer's serial/parallel
determinism guarantee extends to streaming scenarios.  Like those
policies, processes are built from JSON-friendly shapes (a registry name,
or a ``{"name": ..., **kwargs}`` mapping) so sweep axes can target them
declaratively.
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Mapping

from ..core.registry import resolve_component

#: Registry name of the default arrival process.
POISSON_ARRIVALS = "poisson"


class ArrivalProcess:
    """Assigns deterministic arrival ticks to a stream of transactions.

    The engine drives one process instance per run:

    * :meth:`bind` — called once at stream submission with the engine
      seed; must reset all process state (a process may be constructed
      once and bound to a fresh run later);
    * :meth:`schedule` — return the non-decreasing arrival ticks of the
      next ``count`` transactions.
    """

    name = "abstract"

    def bind(self, seed: int) -> None:
        """Reset the process for a fresh run seeded with the engine seed."""

    def interarrival(self, index: int) -> int:
        """Ticks between arrival ``index - 1`` and arrival ``index`` (>= 0).

        ``index`` counts from 0; the first transaction arrives
        ``interarrival(0)`` ticks after the stream starts.
        """
        return 0

    def schedule(self, count: int) -> list[int]:
        """The cumulative arrival ticks of ``count`` transactions."""
        ticks: list[int] = []
        current = 0
        for index in range(count):
            gap = int(self.interarrival(index))
            if gap < 0:
                raise ValueError(
                    f"arrival process {self.name!r} produced a negative gap {gap}"
                )
            current += gap
            ticks.append(current)
        return ticks

    def describe(self) -> dict[str, Any]:
        """Process description merged into run metadata."""
        return {"name": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PoissonArrivals(ArrivalProcess):
    """Deterministic Poisson-like arrivals at a target rate.

    Inter-arrival gaps are drawn from a seeded exponential distribution
    with mean ``1 / rate`` ticks and rounded to whole ticks, so the
    long-run arrival rate is ``rate`` transactions per tick and the gaps
    are memoryless — the standard open-system reference stream.

    Args:
        rate: mean arrivals per tick (``0.1`` = one transaction every 10
            ticks on average).  Must be positive.
        seed: explicit RNG seed; ``None`` derives one from the engine
            seed at :meth:`bind` time (the common case — keeps a scenario
            a pure function of its spec without repeating the seed here).
    """

    name = "poisson"

    def __init__(self, rate: float = 0.1, seed: int | None = None):
        if not rate > 0:
            raise ValueError(f"poisson arrival rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.seed = seed
        self._rng = random.Random(seed)

    def bind(self, seed: int) -> None:
        # XOR with a fixed odd constant decouples the arrival stream from
        # the engine's tick-choice stream (and from the restart policy's
        # stream, which uses a different constant) without introducing any
        # process-dependent state.
        effective = self.seed if self.seed is not None else seed ^ 0x85EBCA6B
        self._rng = random.Random(effective)

    def interarrival(self, index: int) -> int:
        return round(self._rng.expovariate(self.rate))

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "rate": self.rate}


class BurstyArrivals(ArrivalProcess):
    """Clustered arrivals: bursts of back-to-back transactions, then silence.

    Every ``burst`` consecutive transactions arrive ``within_gap`` ticks
    apart; the next burst starts after a seeded uniformly random pause
    from ``[1, 2 * mean_gap]`` (mean ``mean_gap + 0.5``), modelling the
    flash-crowd traffic shape that stresses admission far harder than a
    smooth Poisson stream of the same average rate.

    Args:
        burst: transactions per burst (>= 1).
        mean_gap: mean pause in ticks between bursts (>= 1).
        within_gap: ticks between the members of one burst (>= 0).
        seed: explicit RNG seed; ``None`` derives one from the engine
            seed at :meth:`bind` time.
    """

    name = "bursty"

    def __init__(
        self,
        burst: int = 8,
        mean_gap: int = 64,
        within_gap: int = 0,
        seed: int | None = None,
    ):
        if burst < 1:
            raise ValueError(f"burst size must be >= 1, got {burst}")
        if mean_gap < 1:
            raise ValueError(f"mean burst gap must be >= 1, got {mean_gap}")
        if within_gap < 0:
            raise ValueError(f"within-burst gap must be >= 0, got {within_gap}")
        self.burst = burst
        self.mean_gap = mean_gap
        self.within_gap = within_gap
        self.seed = seed
        self._rng = random.Random(seed)

    def bind(self, seed: int) -> None:
        effective = self.seed if self.seed is not None else seed ^ 0xC2B2AE35
        self._rng = random.Random(effective)

    def interarrival(self, index: int) -> int:
        if index % self.burst == 0 and index > 0:
            return 1 + self._rng.randrange(2 * self.mean_gap)
        return 0 if index == 0 else self.within_gap

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "burst": self.burst,
            "mean_gap": self.mean_gap,
            "within_gap": self.within_gap,
        }


class DiurnalArrivals(ArrivalProcess):
    """Poisson arrivals whose rate follows a smooth day/night load curve.

    The instantaneous rate oscillates sinusoidally around ``rate`` with
    relative amplitude ``amplitude`` and period ``period`` ticks:
    ``rate * (1 + amplitude * sin(2π * t / period))``, evaluated at the
    previous arrival's tick.  A scheduler tuned on the mean rate sees
    alternating stretches of near-idle and near-double load — the shape
    that rewards demoting objects to optimistic strategies during the
    trough and promoting them before the peak saturates.

    Args:
        rate: mean arrivals per tick, as for :class:`PoissonArrivals`.
        amplitude: relative swing of the rate in ``[0, 1)``; ``0.8`` means
            the rate sweeps between 0.2× and 1.8× the mean.
        period: full day length in ticks (>= 2).
        seed: explicit RNG seed; ``None`` derives one from the engine
            seed at :meth:`bind` time.
    """

    name = "diurnal"

    def __init__(
        self,
        rate: float = 0.1,
        amplitude: float = 0.8,
        period: int = 4096,
        seed: int | None = None,
    ):
        if not rate > 0:
            raise ValueError(f"diurnal mean rate must be > 0, got {rate}")
        if not 0 <= amplitude < 1:
            raise ValueError(
                f"diurnal amplitude must lie in [0, 1), got {amplitude}"
            )
        if period < 2:
            raise ValueError(f"diurnal period must be >= 2 ticks, got {period}")
        self.rate = float(rate)
        self.amplitude = float(amplitude)
        self.period = int(period)
        self.seed = seed
        self._rng = random.Random(seed)
        self._clock = 0

    def bind(self, seed: int) -> None:
        effective = self.seed if self.seed is not None else seed ^ 0x27D4EB2F
        self._rng = random.Random(effective)
        self._clock = 0

    def interarrival(self, index: int) -> int:
        phase = math.sin(math.tau * (self._clock % self.period) / self.period)
        instantaneous = self.rate * (1.0 + self.amplitude * phase)
        gap = round(self._rng.expovariate(instantaneous))
        self._clock += gap
        return gap

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "rate": self.rate,
            "amplitude": self.amplitude,
            "period": self.period,
        }


class FlashCrowdArrivals(ArrivalProcess):
    """A steady Poisson baseline punctuated by sudden sustained spikes.

    Arrivals follow the baseline ``rate`` until a seeded exponential timer
    (mean ``mean_calm`` ticks) fires; the rate then jumps to
    ``rate * spike_factor`` for ``spike_length`` ticks before collapsing
    back.  Unlike :class:`BurstyArrivals` — whose bursts are a fixed-size
    clump of back-to-back transactions — a flash crowd is an *interval* of
    elevated rate: the in-flight population climbs for the whole spike,
    which is the admission pattern that forces an adaptive scheduler to
    promote hot objects mid-run and demote them after the crowd passes.

    Args:
        rate: baseline arrivals per tick (> 0).
        spike_factor: rate multiplier during a spike (> 1).
        spike_length: duration of one spike in ticks (>= 1).
        mean_calm: mean ticks of baseline traffic between spikes (>= 1).
        seed: explicit RNG seed; ``None`` derives one from the engine
            seed at :meth:`bind` time.
    """

    name = "flash-crowd"

    def __init__(
        self,
        rate: float = 0.05,
        spike_factor: float = 8.0,
        spike_length: int = 256,
        mean_calm: int = 2048,
        seed: int | None = None,
    ):
        if not rate > 0:
            raise ValueError(f"flash-crowd baseline rate must be > 0, got {rate}")
        if not spike_factor > 1:
            raise ValueError(
                f"flash-crowd spike factor must be > 1, got {spike_factor}"
            )
        if spike_length < 1:
            raise ValueError(
                f"flash-crowd spike length must be >= 1, got {spike_length}"
            )
        if mean_calm < 1:
            raise ValueError(
                f"flash-crowd mean calm period must be >= 1, got {mean_calm}"
            )
        self.rate = float(rate)
        self.spike_factor = float(spike_factor)
        self.spike_length = int(spike_length)
        self.mean_calm = int(mean_calm)
        self.seed = seed
        self._rng = random.Random(seed)
        self._clock = 0
        self._spike_until = 0
        self._next_spike = 0

    def bind(self, seed: int) -> None:
        effective = self.seed if self.seed is not None else seed ^ 0x165667B1
        self._rng = random.Random(effective)
        self._clock = 0
        self._spike_until = 0
        self._next_spike = 1 + round(self._rng.expovariate(1.0 / self.mean_calm))

    def interarrival(self, index: int) -> int:
        if self._clock >= self._next_spike:
            self._spike_until = self._next_spike + self.spike_length
            self._next_spike = self._spike_until + 1 + round(
                self._rng.expovariate(1.0 / self.mean_calm)
            )
        instantaneous = (
            self.rate * self.spike_factor
            if self._clock < self._spike_until
            else self.rate
        )
        gap = round(self._rng.expovariate(instantaneous))
        self._clock += gap
        return gap

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "rate": self.rate,
            "spike_factor": self.spike_factor,
            "spike_length": self.spike_length,
            "mean_calm": self.mean_calm,
        }


ARRIVAL_REGISTRY: dict[str, Callable[..., ArrivalProcess]] = {
    "poisson": PoissonArrivals,
    "bursty": BurstyArrivals,
    "diurnal": DiurnalArrivals,
    "flash-crowd": FlashCrowdArrivals,
}


def arrival_process_names() -> list[str]:
    """Names accepted by :func:`make_arrival_process` (and streaming workloads)."""
    return sorted(ARRIVAL_REGISTRY)


def make_arrival_process(
    process: "str | Mapping[str, Any] | ArrivalProcess" = POISSON_ARRIVALS,
    **kwargs: Any,
) -> ArrivalProcess:
    """Build an arrival process from a name, a config mapping, or an instance.

    Accepted shapes (all JSON-friendly, so sweep axes can target the
    streaming workloads' ``arrival`` / ``arrival_params`` fields
    directly):

    * ``"poisson"`` — a registry name, optionally with ``**kwargs``;
    * ``{"name": "bursty", "burst": 16}`` — a registry name plus
      constructor keywords (``**kwargs`` are merged in);
    * a ready :class:`ArrivalProcess` instance (returned unchanged;
      keywords are rejected).

    Raises:
        KeyError: on an unknown process name.
        TypeError: on keywords the process does not accept, or an
            unsupported specification type.
    """
    return resolve_component(
        ARRIVAL_REGISTRY,
        process,
        kind="arrival process",
        instance_of=ArrivalProcess,
        **kwargs,
    )
