"""Seeded arrival processes for open-system simulation.

Every experiment before E15 ran a *closed* system: a fixed batch of
transactions was submitted up front and the engine drained it, so the
schedulers were only ever measured on the transient of a starting burst.
An :class:`ArrivalProcess` turns the same transaction list into an *open*
workload: it assigns each transaction a deterministic arrival tick, and
:meth:`~repro.simulation.engine.SimulationEngine.submit_stream` releases
the transactions into the running engine as the simulated clock crosses
those ticks.  Per-transaction latency (arrival → commit), sustained
throughput and the in-flight count then become measurable, and the
saturation point — the arrival rate beyond which the in-flight population
grows without bound — becomes a property of the scheduler, which
``benchmarks/bench_e15_open_system.py`` sweeps.

All randomness is owned by the process and seeded deterministically: a
run remains a pure function of ``(workload seed, engine seed, arrival
process configuration)``, exactly like the restart policies
(:mod:`repro.scheduler.restart`), so the sweep layer's serial/parallel
determinism guarantee extends to streaming scenarios.  Like those
policies, processes are built from JSON-friendly shapes (a registry name,
or a ``{"name": ..., **kwargs}`` mapping) so sweep axes can target them
declaratively.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Mapping

#: Registry name of the default arrival process.
POISSON_ARRIVALS = "poisson"


class ArrivalProcess:
    """Assigns deterministic arrival ticks to a stream of transactions.

    The engine drives one process instance per run:

    * :meth:`bind` — called once at stream submission with the engine
      seed; must reset all process state (a process may be constructed
      once and bound to a fresh run later);
    * :meth:`schedule` — return the non-decreasing arrival ticks of the
      next ``count`` transactions.
    """

    name = "abstract"

    def bind(self, seed: int) -> None:
        """Reset the process for a fresh run seeded with the engine seed."""

    def interarrival(self, index: int) -> int:
        """Ticks between arrival ``index - 1`` and arrival ``index`` (>= 0).

        ``index`` counts from 0; the first transaction arrives
        ``interarrival(0)`` ticks after the stream starts.
        """
        return 0

    def schedule(self, count: int) -> list[int]:
        """The cumulative arrival ticks of ``count`` transactions."""
        ticks: list[int] = []
        current = 0
        for index in range(count):
            gap = int(self.interarrival(index))
            if gap < 0:
                raise ValueError(
                    f"arrival process {self.name!r} produced a negative gap {gap}"
                )
            current += gap
            ticks.append(current)
        return ticks

    def describe(self) -> dict[str, Any]:
        """Process description merged into run metadata."""
        return {"name": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PoissonArrivals(ArrivalProcess):
    """Deterministic Poisson-like arrivals at a target rate.

    Inter-arrival gaps are drawn from a seeded exponential distribution
    with mean ``1 / rate`` ticks and rounded to whole ticks, so the
    long-run arrival rate is ``rate`` transactions per tick and the gaps
    are memoryless — the standard open-system reference stream.

    Args:
        rate: mean arrivals per tick (``0.1`` = one transaction every 10
            ticks on average).  Must be positive.
        seed: explicit RNG seed; ``None`` derives one from the engine
            seed at :meth:`bind` time (the common case — keeps a scenario
            a pure function of its spec without repeating the seed here).
    """

    name = "poisson"

    def __init__(self, rate: float = 0.1, seed: int | None = None):
        if not rate > 0:
            raise ValueError(f"poisson arrival rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.seed = seed
        self._rng = random.Random(seed)

    def bind(self, seed: int) -> None:
        # XOR with a fixed odd constant decouples the arrival stream from
        # the engine's tick-choice stream (and from the restart policy's
        # stream, which uses a different constant) without introducing any
        # process-dependent state.
        effective = self.seed if self.seed is not None else seed ^ 0x85EBCA6B
        self._rng = random.Random(effective)

    def interarrival(self, index: int) -> int:
        return round(self._rng.expovariate(self.rate))

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "rate": self.rate}


class BurstyArrivals(ArrivalProcess):
    """Clustered arrivals: bursts of back-to-back transactions, then silence.

    Every ``burst`` consecutive transactions arrive ``within_gap`` ticks
    apart; the next burst starts after a seeded uniformly random pause
    from ``[1, 2 * mean_gap]`` (mean ``mean_gap + 0.5``), modelling the
    flash-crowd traffic shape that stresses admission far harder than a
    smooth Poisson stream of the same average rate.

    Args:
        burst: transactions per burst (>= 1).
        mean_gap: mean pause in ticks between bursts (>= 1).
        within_gap: ticks between the members of one burst (>= 0).
        seed: explicit RNG seed; ``None`` derives one from the engine
            seed at :meth:`bind` time.
    """

    name = "bursty"

    def __init__(
        self,
        burst: int = 8,
        mean_gap: int = 64,
        within_gap: int = 0,
        seed: int | None = None,
    ):
        if burst < 1:
            raise ValueError(f"burst size must be >= 1, got {burst}")
        if mean_gap < 1:
            raise ValueError(f"mean burst gap must be >= 1, got {mean_gap}")
        if within_gap < 0:
            raise ValueError(f"within-burst gap must be >= 0, got {within_gap}")
        self.burst = burst
        self.mean_gap = mean_gap
        self.within_gap = within_gap
        self.seed = seed
        self._rng = random.Random(seed)

    def bind(self, seed: int) -> None:
        effective = self.seed if self.seed is not None else seed ^ 0xC2B2AE35
        self._rng = random.Random(effective)

    def interarrival(self, index: int) -> int:
        if index % self.burst == 0 and index > 0:
            return 1 + self._rng.randrange(2 * self.mean_gap)
        return 0 if index == 0 else self.within_gap

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "burst": self.burst,
            "mean_gap": self.mean_gap,
            "within_gap": self.within_gap,
        }


ARRIVAL_REGISTRY: dict[str, Callable[..., ArrivalProcess]] = {
    "poisson": PoissonArrivals,
    "bursty": BurstyArrivals,
}


def arrival_process_names() -> list[str]:
    """Names accepted by :func:`make_arrival_process` (and streaming workloads)."""
    return sorted(ARRIVAL_REGISTRY)


def make_arrival_process(
    process: "str | Mapping[str, Any] | ArrivalProcess" = POISSON_ARRIVALS,
    **kwargs: Any,
) -> ArrivalProcess:
    """Build an arrival process from a name, a config mapping, or an instance.

    Accepted shapes (all JSON-friendly, so sweep axes can target the
    streaming workloads' ``arrival`` / ``arrival_params`` fields
    directly):

    * ``"poisson"`` — a registry name, optionally with ``**kwargs``;
    * ``{"name": "bursty", "burst": 16}`` — a registry name plus
      constructor keywords (``**kwargs`` are merged in);
    * a ready :class:`ArrivalProcess` instance (returned unchanged;
      keywords are rejected).

    Raises:
        KeyError: on an unknown process name.
        TypeError: on keywords the process does not accept, or an
            unsupported specification type.
    """
    if isinstance(process, ArrivalProcess):
        if kwargs:
            raise TypeError(
                "cannot apply keyword arguments to a ready ArrivalProcess instance"
            )
        return process
    if isinstance(process, str):
        name, merged = process, dict(kwargs)
    elif isinstance(process, Mapping):
        merged = {key: value for key, value in process.items() if key != "name"}
        merged.update(kwargs)
        name = process.get("name")
        if not isinstance(name, str):
            raise TypeError(
                f"arrival process mapping needs a 'name' entry, got {dict(process)!r}"
            )
    else:
        raise TypeError(
            f"arrival process must be a name, a mapping or an ArrivalProcess, got {process!r}"
        )
    try:
        factory = ARRIVAL_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown arrival process {name!r}; available: {', '.join(arrival_process_names())}"
        ) from exc
    return factory(**merged)
