"""Simulation substrate: engine, transaction programmes, metrics, workloads."""

from .arrivals import (
    ARRIVAL_REGISTRY,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    arrival_process_names,
    make_arrival_process,
)
from .engine import INCREMENTAL_UNDO, REPLAY_UNDO, SimulationEngine
from .events import Trace, TraceEvent
from .faults import (
    CrashPlan,
    FAULT_REGISTRY,
    FaultPlan,
    fault_plan_names,
    make_fault_plan,
)
from .metrics import RunMetrics, RunResult
from .transactions import (
    InvokeRequest,
    LocalRequest,
    MethodContext,
    ParallelRequest,
    TransactionSpec,
)
from .workloads import (
    BankingWorkload,
    BTreeWorkload,
    HotspotWorkload,
    MixedWorkload,
    OrderProcessingWorkload,
    QueueWorkload,
    RandomOperationsWorkload,
    StreamingWorkload,
    WORKLOAD_REGISTRY,
    ZipfianWorkload,
    make_workload,
    workload_names,
)

__all__ = [
    "ARRIVAL_REGISTRY",
    "ArrivalProcess",
    "BankingWorkload",
    "BTreeWorkload",
    "BurstyArrivals",
    "CrashPlan",
    "DiurnalArrivals",
    "FAULT_REGISTRY",
    "FaultPlan",
    "FlashCrowdArrivals",
    "HotspotWorkload",
    "InvokeRequest",
    "LocalRequest",
    "MethodContext",
    "MixedWorkload",
    "OrderProcessingWorkload",
    "ParallelRequest",
    "PoissonArrivals",
    "QueueWorkload",
    "RandomOperationsWorkload",
    "RunMetrics",
    "RunResult",
    "INCREMENTAL_UNDO",
    "REPLAY_UNDO",
    "SimulationEngine",
    "StreamingWorkload",
    "Trace",
    "TraceEvent",
    "TransactionSpec",
    "WORKLOAD_REGISTRY",
    "ZipfianWorkload",
    "arrival_process_names",
    "fault_plan_names",
    "make_arrival_process",
    "make_fault_plan",
    "make_workload",
    "workload_names",
]
