"""Simulation substrate: engine, transaction programmes, metrics, workloads."""

from .engine import INCREMENTAL_UNDO, REPLAY_UNDO, SimulationEngine
from .events import Trace, TraceEvent
from .metrics import RunMetrics, RunResult
from .transactions import (
    InvokeRequest,
    LocalRequest,
    MethodContext,
    ParallelRequest,
    TransactionSpec,
)
from .workloads import (
    BankingWorkload,
    BTreeWorkload,
    HotspotWorkload,
    MixedWorkload,
    QueueWorkload,
    RandomOperationsWorkload,
)

__all__ = [
    "BankingWorkload",
    "BTreeWorkload",
    "HotspotWorkload",
    "InvokeRequest",
    "LocalRequest",
    "MethodContext",
    "MixedWorkload",
    "ParallelRequest",
    "QueueWorkload",
    "RandomOperationsWorkload",
    "RunMetrics",
    "RunResult",
    "INCREMENTAL_UNDO",
    "REPLAY_UNDO",
    "SimulationEngine",
    "Trace",
    "TraceEvent",
    "TransactionSpec",
]
