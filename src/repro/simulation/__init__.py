"""Simulation substrate: engine, transaction programmes, metrics, workloads."""

from .engine import INCREMENTAL_UNDO, REPLAY_UNDO, SimulationEngine
from .events import Trace, TraceEvent
from .metrics import RunMetrics, RunResult
from .transactions import (
    InvokeRequest,
    LocalRequest,
    MethodContext,
    ParallelRequest,
    TransactionSpec,
)
from .workloads import (
    BankingWorkload,
    BTreeWorkload,
    HotspotWorkload,
    MixedWorkload,
    QueueWorkload,
    RandomOperationsWorkload,
    WORKLOAD_REGISTRY,
    make_workload,
    workload_names,
)

__all__ = [
    "BankingWorkload",
    "BTreeWorkload",
    "HotspotWorkload",
    "InvokeRequest",
    "LocalRequest",
    "MethodContext",
    "MixedWorkload",
    "ParallelRequest",
    "QueueWorkload",
    "RandomOperationsWorkload",
    "RunMetrics",
    "RunResult",
    "INCREMENTAL_UNDO",
    "REPLAY_UNDO",
    "SimulationEngine",
    "Trace",
    "TraceEvent",
    "TransactionSpec",
    "WORKLOAD_REGISTRY",
    "make_workload",
    "workload_names",
]
