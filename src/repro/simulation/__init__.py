"""Simulation substrate: engine, transaction programmes, metrics, workloads."""

from .arrivals import (
    ARRIVAL_REGISTRY,
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    arrival_process_names,
    make_arrival_process,
)
from .engine import INCREMENTAL_UNDO, REPLAY_UNDO, SimulationEngine
from .events import Trace, TraceEvent
from .metrics import RunMetrics, RunResult
from .transactions import (
    InvokeRequest,
    LocalRequest,
    MethodContext,
    ParallelRequest,
    TransactionSpec,
)
from .workloads import (
    BankingWorkload,
    BTreeWorkload,
    HotspotWorkload,
    MixedWorkload,
    QueueWorkload,
    RandomOperationsWorkload,
    StreamingWorkload,
    WORKLOAD_REGISTRY,
    make_workload,
    workload_names,
)

__all__ = [
    "ARRIVAL_REGISTRY",
    "ArrivalProcess",
    "BankingWorkload",
    "BTreeWorkload",
    "BurstyArrivals",
    "HotspotWorkload",
    "InvokeRequest",
    "LocalRequest",
    "MethodContext",
    "MixedWorkload",
    "ParallelRequest",
    "PoissonArrivals",
    "QueueWorkload",
    "RandomOperationsWorkload",
    "RunMetrics",
    "RunResult",
    "INCREMENTAL_UNDO",
    "REPLAY_UNDO",
    "SimulationEngine",
    "StreamingWorkload",
    "Trace",
    "TraceEvent",
    "TransactionSpec",
    "WORKLOAD_REGISTRY",
    "arrival_process_names",
    "make_arrival_process",
    "make_workload",
    "workload_names",
]
