"""Trace events emitted by the simulation engine.

The trace is an append-only list of :class:`TraceEvent` records that the
analysis layer and the tests can inspect to understand what the engine and
scheduler decided as the run progressed: grants, parks (``blocked``),
wake-ups (``woken``), commits, aborts and restarts, stamped with the tick
at which they happened.  Traces can grow large; the engine only records
them when asked to (``record_trace=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One scheduler-visible event of a run."""

    tick: int
    kind: str
    execution_id: str
    object_name: str = ""
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        location = f" on {self.object_name}" if self.object_name else ""
        detail = f": {self.detail}" if self.detail else ""
        return f"[{self.tick:>6}] {self.kind:<10} {self.execution_id}{location}{detail}"


# Event kinds used by the engine (kept as constants so tests can reference
# them without typos).
BEGIN = "begin"
INVOKE = "invoke"
GRANTED = "granted"
BLOCKED = "blocked"
WOKEN = "woken"
ABORTED = "aborted"
RESTARTED = "restarted"
RESTART_SCHEDULED = "restart-scheduled"
COMPLETED = "completed"
COMMITTED = "committed"
GAVE_UP = "gave-up"
FAULT_INJECTED = "fault-injected"


@dataclass
class Trace:
    """An ordered collection of trace events."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def for_execution(self, execution_id: str) -> list[TraceEvent]:
        return [event for event in self.events if event.execution_id == execution_id]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def render(self, limit: int | None = None) -> str:
        """A human-readable dump of (up to ``limit``) events."""
        selected = self.events if limit is None else self.events[:limit]
        return "\n".join(str(event) for event in selected)
