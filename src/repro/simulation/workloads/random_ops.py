"""Synthetic random-operation workload.

Transactions perform random reads and writes over a pool of register
objects through a configurable hierarchy of stateless service objects, so
nesting depth, fan-out (internal parallelism) and conflict probability can
all be dialled independently.  Experiments E6 (internal parallelism) and E7
(serialisation-graph scaling) and several property-based tests use it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...core.errors import WorkloadError
from ...objectbase.adts.register import register_definition
from ...objectbase.base import MethodDefinition, ObjectBase, ObjectDefinition
from ..transactions import TransactionSpec


def _register_name(index: int) -> str:
    return f"register-{index:03d}"


def _service_name(depth: int) -> str:
    return f"service-depth-{depth}"


@dataclass
class RandomOperationsWorkload:
    """Random read/write transactions with configurable nesting and fan-out."""

    registers: int = 32
    transactions: int = 20
    operations_per_transaction: int = 4
    write_fraction: float = 0.5
    nesting_depth: int = 2
    parallel_fanout: int = 1
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.nesting_depth < 1:
            raise WorkloadError("nesting_depth must be at least 1")
        if self.parallel_fanout < 1:
            raise WorkloadError("parallel_fanout must be at least 1")
        if not 0 <= self.write_fraction <= 1:
            raise WorkloadError("write_fraction must lie in [0, 1]")
        self._rng = random.Random(self.seed)

    # -- object base ---------------------------------------------------------------

    def build_object_base(self) -> ObjectBase:
        base = ObjectBase()
        for index in range(self.registers):
            base.register(register_definition(_register_name(index), 0))
        for depth in range(2, self.nesting_depth + 1):
            base.register(self._service_definition(depth))
        self._register_transactions(base)
        return base

    def _service_definition(self, depth: int) -> ObjectDefinition:
        """A service that forwards an access list one level further down."""
        definition = ObjectDefinition(name=_service_name(depth))
        deeper = depth - 1

        def perform(ctx, accesses):
            if deeper >= 2:
                result = yield ctx.invoke(_service_name(deeper), "perform", accesses)
                return result
            outcomes = []
            for kind, register_name, value in accesses:
                if kind == "read":
                    outcomes.append((yield ctx.invoke(register_name, "read")))
                else:
                    outcomes.append((yield ctx.invoke(register_name, "write", value)))
            return tuple(outcomes)

        definition.add_method(MethodDefinition("perform", perform))
        return definition

    # -- transactions ----------------------------------------------------------------

    def _register_transactions(self, base: ObjectBase) -> None:
        depth = self.nesting_depth
        fanout = self.parallel_fanout

        def run(ctx, access_groups):
            if depth >= 2:
                calls = [
                    ctx.call(_service_name(depth), "perform", group) for group in access_groups
                ]
            else:
                calls = None
            if calls is not None and fanout > 1 and len(access_groups) > 1:
                results = yield ctx.parallel(*calls)
                return tuple(results)
            outcomes = []
            for group in access_groups:
                if calls is not None:
                    outcomes.append((yield ctx.invoke(_service_name(depth), "perform", group)))
                else:
                    for kind, register_name, value in group:
                        if kind == "read":
                            outcomes.append((yield ctx.invoke(register_name, "read")))
                        else:
                            outcomes.append((yield ctx.invoke(register_name, "write", value)))
            return tuple(outcomes)

        base.register_transaction(MethodDefinition("run", run))

    def _random_accesses(self, count: int, label: str) -> tuple:
        accesses = []
        for sequence in range(count):
            register = _register_name(self._rng.randrange(self.registers))
            if self._rng.random() < self.write_fraction:
                accesses.append(("write", register, f"{label}-{sequence}"))
            else:
                accesses.append(("read", register, None))
        return tuple(accesses)

    def build_transactions(self) -> list[TransactionSpec]:
        specs: list[TransactionSpec] = []
        for index in range(self.transactions):
            groups = []
            per_group = max(1, self.operations_per_transaction // self.parallel_fanout)
            for group_index in range(self.parallel_fanout):
                groups.append(self._random_accesses(per_group, f"t{index}g{group_index}"))
            specs.append(TransactionSpec("run", (tuple(groups),), label=f"run-{index}"))
        return specs

    def build(self) -> tuple[ObjectBase, list[TransactionSpec]]:
        return self.build_object_base(), self.build_transactions()
