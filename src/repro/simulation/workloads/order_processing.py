"""Order-processing workload: btree + fifo_queue + bank_account pipeline.

A leaner, skewed sibling of :class:`~repro.simulation.workloads.mixed.MixedWorkload`:
exactly the three ADTs whose synchronisation profiles differ most — a
B-tree inventory index (structure-modifying inserts), a FIFO fulfilment
queue (head/tail conflicts) and bank accounts (commuting deposits,
balance-guarded withdrawals) — wired into an order → fulfil pipeline.

Two deliberate pressure points make it a scenario worth *adapting* to:

* item popularity is zipf-skewed (``skew``), so a handful of bestseller
  keys in the inventory tree are scorching while the tail is idle — no
  single fixed intra-object strategy suits the whole index's traffic mix;
* every fulfilment deposits into one merchant account and pops the shared
  fulfilment queue, giving two structurally hot objects whose best
  strategy differs from the cold customer accounts'.

Transactions are top-level methods over the shared objects (no service
object in between), so per-object signals attribute cleanly.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field

from ...core.errors import WorkloadError
from ...objectbase.adts.bank_account import bank_account_definition
from ...objectbase.adts.btree import btree_definition
from ...objectbase.adts.fifo_queue import fifo_queue_definition
from ...objectbase.base import MethodDefinition, ObjectBase
from ..transactions import TransactionSpec

INVENTORY = "inventory"
FULFILMENT_QUEUE = "fulfilment-queue"
MERCHANT_ACCOUNT = "merchant"


def _customer_account(index: int) -> str:
    return f"customer-{index:03d}"


@dataclass
class OrderProcessingWorkload:
    """Zipf-skewed orders flowing through inventory, queue and accounts."""

    customers: int = 16
    items: int = 48
    transactions: int = 30
    order_fraction: float = 0.55
    fulfil_fraction: float = 0.25
    restock_fraction: float = 0.1
    skew: float = 1.2
    price: float = 10.0
    initial_balance: float = 400.0
    initial_stock: int = 5
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _cumulative: list[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.customers < 1 or self.items < 1:
            raise WorkloadError("order processing needs customers and items")
        fractions = (self.order_fraction, self.fulfil_fraction, self.restock_fraction)
        if any(f < 0 for f in fractions) or sum(fractions) > 1:
            raise WorkloadError(
                "order/fulfil/restock fractions must be non-negative and sum to at most 1"
            )
        if self.skew < 0:
            raise WorkloadError(f"zipf skew must be >= 0, got {self.skew}")
        if self.initial_stock < 0 or self.initial_balance < 0 or self.price <= 0:
            raise WorkloadError(
                "initial stock and balances must be >= 0 and the price positive"
            )
        self._rng = random.Random(self.seed)
        total = 0.0
        self._cumulative = []
        for rank in range(1, self.items + 1):
            total += 1.0 / rank**self.skew
            self._cumulative.append(total)

    def _pick_item(self) -> int:
        point = self._rng.random() * self._cumulative[-1]
        return bisect.bisect_left(self._cumulative, point)

    # -- object base ---------------------------------------------------------------

    def build_object_base(self) -> ObjectBase:
        base = ObjectBase()
        stock = {item: self.initial_stock for item in range(self.items)}
        base.register(btree_definition(INVENTORY, degree=3, initial_items=stock))
        base.register(fifo_queue_definition(FULFILMENT_QUEUE))
        base.register(bank_account_definition(MERCHANT_ACCOUNT, 0.0))
        for index in range(self.customers):
            base.register(
                bank_account_definition(_customer_account(index), self.initial_balance)
            )
        self._register_transactions(base)
        return base

    def _register_transactions(self, base: ObjectBase) -> None:
        def order(ctx, customer: str, item: int, price: float):
            stock = yield ctx.invoke(INVENTORY, "search", item)
            if stock is None or stock <= 0:
                return "out-of-stock"
            paid = yield ctx.invoke(customer, "withdraw", price)
            if not paid:
                return "insufficient-funds"
            yield ctx.invoke(INVENTORY, "insert", item, stock - 1)
            yield ctx.invoke(FULFILMENT_QUEUE, "enqueue", (customer, item, price))
            return "ordered"

        def fulfil(ctx, batch: int):
            takings = 0.0
            shipped = 0
            for _ in range(batch):
                parcel = yield ctx.invoke(FULFILMENT_QUEUE, "dequeue")
                if parcel is None:
                    break
                takings += parcel[2]
                shipped += 1
            if shipped:
                yield ctx.invoke(MERCHANT_ACCOUNT, "deposit", takings)
            return shipped

        def restock(ctx, item: int, quantity: int):
            stock = yield ctx.invoke(INVENTORY, "search", item)
            yield ctx.invoke(INVENTORY, "insert", item, (stock or 0) + quantity)
            return (stock or 0) + quantity

        def audit(ctx, sample_customers, low_item: int, high_item: int):
            balances = yield ctx.parallel(
                *[ctx.call(customer, "balance") for customer in sample_customers]
            )
            takings = yield ctx.invoke(MERCHANT_ACCOUNT, "balance")
            backlog = yield ctx.invoke(FULFILMENT_QUEUE, "length")
            in_range = yield ctx.invoke(INVENTORY, "range", low_item, high_item)
            return round(sum(balances) + takings, 2), backlog, len(in_range)

        base.register_transaction(MethodDefinition("order", order))
        base.register_transaction(MethodDefinition("fulfil", fulfil))
        base.register_transaction(MethodDefinition("restock", restock))
        base.register_transaction(MethodDefinition("audit", audit, read_only=True))

    # -- transactions ----------------------------------------------------------------

    def build_transactions(self) -> list[TransactionSpec]:
        specs: list[TransactionSpec] = []
        order_cut = self.order_fraction
        fulfil_cut = order_cut + self.fulfil_fraction
        restock_cut = fulfil_cut + self.restock_fraction
        for index in range(self.transactions):
            draw = self._rng.random()
            if draw < order_cut:
                customer = _customer_account(self._rng.randrange(self.customers))
                specs.append(
                    TransactionSpec(
                        "order",
                        (customer, self._pick_item(), self.price),
                        label=f"order-{index}",
                    )
                )
            elif draw < fulfil_cut:
                specs.append(TransactionSpec("fulfil", (3,), label=f"fulfil-{index}"))
            elif draw < restock_cut:
                specs.append(
                    TransactionSpec(
                        "restock",
                        (self._pick_item(), self._rng.randrange(3, 9)),
                        label=f"restock-{index}",
                    )
                )
            else:
                sample = tuple(
                    _customer_account(i)
                    for i in self._rng.sample(
                        range(self.customers), min(3, self.customers)
                    )
                )
                low = self._rng.randrange(self.items)
                specs.append(
                    TransactionSpec(
                        "audit",
                        (sample, low, min(self.items, low + 8)),
                        label=f"audit-{index}",
                    )
                )
        return specs

    def build(self) -> tuple[ObjectBase, list[TransactionSpec]]:
        return self.build_object_base(), self.build_transactions()
