"""Mixed-object workload: an order-processing object base.

The base combines several object types with very different semantics — a
B-tree catalogue index, bank accounts, a FIFO shipping queue, a counter of
orders and an append-only audit log — which is exactly the setting in which
the paper's modular scheme shines: each object can use the intra-object
synchronisation algorithm that suits it (key locking for the index,
step-level queue locking, commuting counter updates) while the inter-object
coordinator keeps the overall execution serialisable (experiment E5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...core.errors import WorkloadError
from ...objectbase.adts.append_log import append_log_definition
from ...objectbase.adts.bank_account import bank_account_definition
from ...objectbase.adts.btree import btree_definition
from ...objectbase.adts.counter import counter_definition
from ...objectbase.adts.fifo_queue import fifo_queue_definition
from ...objectbase.base import MethodDefinition, ObjectBase, ObjectDefinition
from ..transactions import TransactionSpec

CATALOGUE = "catalogue"
SHIPPING_QUEUE = "shipping-queue"
ORDER_COUNTER = "orders-placed"
AUDIT_LOG = "audit-log"
ORDER_DESK = "order-desk"


def _customer_account(index: int) -> str:
    return f"customer-{index:03d}"


@dataclass
class MixedWorkload:
    """Order placement, restocking and reporting over heterogeneous objects."""

    customers: int = 12
    catalogue_items: int = 60
    transactions: int = 30
    order_fraction: float = 0.6
    restock_fraction: float = 0.2
    price_range: tuple[float, float] = (5.0, 25.0)
    initial_balance: float = 500.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.order_fraction + self.restock_fraction <= 1:
            raise WorkloadError("transaction mix fractions must sum to at most 1")
        self._rng = random.Random(self.seed)

    # -- object base ---------------------------------------------------------------

    def build_object_base(self) -> ObjectBase:
        base = ObjectBase()
        initial_stock = {item: self._rng.randrange(1, 20) for item in range(self.catalogue_items)}
        base.register(btree_definition(CATALOGUE, degree=3, initial_items=initial_stock))
        base.register(fifo_queue_definition(SHIPPING_QUEUE))
        base.register(counter_definition(ORDER_COUNTER, 0))
        base.register(append_log_definition(AUDIT_LOG))
        for index in range(self.customers):
            base.register(bank_account_definition(_customer_account(index), self.initial_balance))
        base.register(self._order_desk_definition())
        self._register_transactions(base)
        return base

    def _order_desk_definition(self) -> ObjectDefinition:
        definition = ObjectDefinition(name=ORDER_DESK)

        def place_order(ctx, customer: str, item: int, price: float):
            stock = yield ctx.invoke(CATALOGUE, "search", item)
            if stock is None or stock <= 0:
                return "out-of-stock"
            paid = yield ctx.invoke(customer, "withdraw", price)
            if not paid:
                return "insufficient-funds"
            yield ctx.invoke(CATALOGUE, "insert", item, stock - 1)
            yield ctx.invoke(SHIPPING_QUEUE, "enqueue", (customer, item))
            yield ctx.invoke(ORDER_COUNTER, "add", 1)
            return "ordered"

        def restock(ctx, item: int, quantity: int):
            stock = yield ctx.invoke(CATALOGUE, "search", item)
            new_stock = (stock or 0) + quantity
            yield ctx.invoke(CATALOGUE, "insert", item, new_stock)
            return new_stock

        definition.add_method(MethodDefinition("place_order", place_order))
        definition.add_method(MethodDefinition("restock", restock))
        return definition

    # -- transactions ----------------------------------------------------------------

    def _register_transactions(self, base: ObjectBase) -> None:
        def order(ctx, customer: str, item: int, price: float):
            outcome = yield ctx.invoke(ORDER_DESK, "place_order", customer, item, price)
            yield ctx.invoke(AUDIT_LOG, "append", (customer, item, outcome))
            return outcome

        def restock(ctx, item: int, quantity: int):
            new_stock = yield ctx.invoke(ORDER_DESK, "restock", item, quantity)
            yield ctx.invoke(AUDIT_LOG, "append", ("restock", item, quantity))
            return new_stock

        def ship(ctx, batch: int):
            shipped = []
            for _ in range(batch):
                parcel = yield ctx.invoke(SHIPPING_QUEUE, "dequeue")
                if parcel is None:
                    break
                shipped.append(parcel)
            return tuple(shipped)

        def report(ctx, sample_customers, low_item: int, high_item: int):
            balances = yield ctx.parallel(
                *[ctx.call(customer, "balance") for customer in sample_customers]
            )
            in_range = yield ctx.invoke(CATALOGUE, "range", low_item, high_item)
            orders = yield ctx.invoke(ORDER_COUNTER, "get")
            return sum(balances), len(in_range), orders

        base.register_transaction(MethodDefinition("order", order))
        base.register_transaction(MethodDefinition("restock", restock))
        base.register_transaction(MethodDefinition("ship", ship))
        base.register_transaction(MethodDefinition("report", report, read_only=True))

    def build_transactions(self) -> list[TransactionSpec]:
        specs: list[TransactionSpec] = []
        for index in range(self.transactions):
            draw = self._rng.random()
            if draw < self.order_fraction:
                customer = _customer_account(self._rng.randrange(self.customers))
                item = self._rng.randrange(self.catalogue_items)
                price = round(self._rng.uniform(*self.price_range), 2)
                specs.append(TransactionSpec("order", (customer, item, price), label=f"order-{index}"))
            elif draw < self.order_fraction + self.restock_fraction:
                item = self._rng.randrange(self.catalogue_items)
                specs.append(
                    TransactionSpec("restock", (item, self._rng.randrange(5, 15)), label=f"restock-{index}")
                )
            elif self._rng.random() < 0.5:
                specs.append(TransactionSpec("ship", (3,), label=f"ship-{index}"))
            else:
                sample = tuple(
                    _customer_account(i)
                    for i in self._rng.sample(range(self.customers), min(3, self.customers))
                )
                low = self._rng.randrange(self.catalogue_items)
                specs.append(
                    TransactionSpec(
                        "report", (sample, low, min(self.catalogue_items, low + 10)), label=f"report-{index}"
                    )
                )
        return specs

    def build(self) -> tuple[ObjectBase, list[TransactionSpec]]:
        return self.build_object_base(), self.build_transactions()

    def modular_strategy_map(self) -> dict[str, str]:
        """Per-object intra-object synchroniser choices for the modular scheduler."""
        strategies = {
            CATALOGUE: "btree-key-locking",
            SHIPPING_QUEUE: "locking",
            ORDER_COUNTER: "timestamp",
            AUDIT_LOG: "timestamp",
            ORDER_DESK: "locking",
        }
        for index in range(self.customers):
            strategies[_customer_account(index)] = "locking"
        return strategies
