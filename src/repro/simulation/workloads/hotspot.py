"""Hot-spot workload: read/write registers with a tunable contention knob.

Every transaction reads and rewrites a handful of registers; with
probability ``hot_probability`` each access lands on one of a few *hot*
registers, otherwise on a private cold register.  Sweeping
``hot_probability`` from 0 to 1 moves the system from no contention to
every transaction fighting over the same objects — the axis experiments E3
(N2PL vs NTO) and E8 (deadlock rates) explore.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...core.errors import WorkloadError
from ...objectbase.adts.register import register_definition
from ...objectbase.base import MethodDefinition, ObjectBase, ObjectDefinition
from ..transactions import TransactionSpec


def _hot_name(index: int) -> str:
    return f"hot-{index}"


def _cold_name(index: int) -> str:
    return f"cold-{index:03d}"


@dataclass
class HotspotWorkload:
    """Update transactions over a small hot set and a large cold set."""

    transactions: int = 24
    hot_objects: int = 2
    cold_objects: int = 48
    operations_per_transaction: int = 4
    hot_probability: float = 0.5
    use_service_layer: bool = True
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.hot_probability <= 1:
            raise WorkloadError("hot_probability must lie in [0, 1]")
        if self.hot_objects < 1 or self.cold_objects < 1:
            raise WorkloadError("the hotspot workload needs hot and cold objects")
        self._rng = random.Random(self.seed)

    def build_object_base(self) -> ObjectBase:
        base = ObjectBase()
        for index in range(self.hot_objects):
            base.register(register_definition(_hot_name(index), 0))
        for index in range(self.cold_objects):
            base.register(register_definition(_cold_name(index), 0))
        if self.use_service_layer:
            base.register(self._service_definition())
        self._register_transactions(base)
        return base

    def _service_definition(self) -> ObjectDefinition:
        """A stateless service object, adding one extra nesting level."""
        definition = ObjectDefinition(name="update-service")

        def bump(ctx, register_name: str, delta: int):
            current = yield ctx.invoke(register_name, "read")
            yield ctx.invoke(register_name, "write", (current or 0) + delta)
            return current

        definition.add_method(MethodDefinition("bump", bump))
        return definition

    def _register_transactions(self, base: ObjectBase) -> None:
        use_service = self.use_service_layer

        def update(ctx, register_names, delta: int):
            previous = []
            for register_name in register_names:
                if use_service:
                    value = yield ctx.invoke("update-service", "bump", register_name, delta)
                else:
                    value = yield ctx.invoke(register_name, "read")
                    yield ctx.invoke(register_name, "write", (value or 0) + delta)
                previous.append(value)
            return tuple(previous)

        def scan(ctx, register_names):
            values = yield ctx.parallel(
                *[ctx.call(register_name, "read") for register_name in register_names]
            )
            return tuple(values)

        base.register_transaction(MethodDefinition("update", update))
        base.register_transaction(MethodDefinition("scan", scan, read_only=True))

    def _pick_register(self, transaction_index: int) -> str:
        if self._rng.random() < self.hot_probability:
            return _hot_name(self._rng.randrange(self.hot_objects))
        return _cold_name(self._rng.randrange(self.cold_objects))

    def _reachable_registers(self) -> int:
        """How many distinct registers accesses can land on at all."""
        reachable = 0
        if self.hot_probability > 0:
            reachable += self.hot_objects
        if self.hot_probability < 1:
            reachable += self.cold_objects
        return reachable

    def build_transactions(self) -> list[TransactionSpec]:
        specs: list[TransactionSpec] = []
        # Degenerate contention settings (e.g. hot_probability=1.0 with two
        # hot registers) cannot yield operations_per_transaction *distinct*
        # names; cap the target so generation terminates.
        distinct_target = min(self.operations_per_transaction, self._reachable_registers())
        for index in range(self.transactions):
            names: list[str] = []
            while len(names) < distinct_target:
                candidate = self._pick_register(index)
                if candidate not in names:
                    names.append(candidate)
            specs.append(
                TransactionSpec("update", (tuple(names), 1), label=f"update-{index}")
            )
        return specs

    def build(self) -> tuple[ObjectBase, list[TransactionSpec]]:
        return self.build_object_base(), self.build_transactions()
