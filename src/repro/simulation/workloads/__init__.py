"""Workload generators: object bases plus transaction mixes for the engine.

Each workload is a plain dataclass whose fields are the knobs an
experiment sweeps (population sizes, contention probabilities, seeds) and
whose :meth:`build` method returns an :class:`~repro.objectbase.base.ObjectBase`
together with the :class:`~repro.simulation.transactions.TransactionSpec`
list to submit.  :data:`WORKLOAD_REGISTRY` maps short names to the
classes so that declarative scenario specifications (:mod:`repro.sweep`)
can reference workloads by name and construct them inside worker
processes from JSON-serialisable parameters.
"""

from __future__ import annotations

from typing import Any

from .banking import BankingWorkload
from .btree_load import BTreeWorkload
from .hotspot import HotspotWorkload
from .mixed import MixedWorkload
from .queues import QueueWorkload
from .random_ops import RandomOperationsWorkload
from .stream import (
    StreamingBankingWorkload,
    StreamingBTreeWorkload,
    StreamingHotspotWorkload,
    StreamingMixedWorkload,
    StreamingQueueWorkload,
    StreamingRandomOperationsWorkload,
    StreamingWorkload,
)

#: Short names accepted by :func:`make_workload` and ``repro.sweep`` specs.
#: The ``*-stream`` entries wrap the matching closed-batch generator in an
#: arrival process (see :mod:`repro.simulation.workloads.stream`); the
#: generic ``"stream"`` entry picks the inner workload via its ``inner``
#: parameter.
WORKLOAD_REGISTRY: dict[str, type] = {
    "banking": BankingWorkload,
    "btree": BTreeWorkload,
    "hotspot": HotspotWorkload,
    "mixed": MixedWorkload,
    "queue": QueueWorkload,
    "random-ops": RandomOperationsWorkload,
    "stream": StreamingWorkload,
    "banking-stream": StreamingBankingWorkload,
    "btree-stream": StreamingBTreeWorkload,
    "hotspot-stream": StreamingHotspotWorkload,
    "mixed-stream": StreamingMixedWorkload,
    "queue-stream": StreamingQueueWorkload,
    "random-ops-stream": StreamingRandomOperationsWorkload,
}


def make_workload(name: str, **params: Any):
    """Instantiate a workload by its registry name.

    Args:
        name: a key of :data:`WORKLOAD_REGISTRY` (e.g. ``"hotspot"``).
        **params: constructor arguments of the workload dataclass.

    Returns:
        The workload instance (not yet built — call :meth:`build` on it).

    Raises:
        KeyError: when ``name`` is not registered.
    """
    try:
        workload_class = WORKLOAD_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOAD_REGISTRY))}"
        ) from exc
    return workload_class(**params)


def workload_names() -> list[str]:
    """Names accepted by :func:`make_workload`."""
    return sorted(WORKLOAD_REGISTRY)


__all__ = [
    "BankingWorkload",
    "BTreeWorkload",
    "HotspotWorkload",
    "MixedWorkload",
    "QueueWorkload",
    "RandomOperationsWorkload",
    "StreamingBankingWorkload",
    "StreamingBTreeWorkload",
    "StreamingHotspotWorkload",
    "StreamingMixedWorkload",
    "StreamingQueueWorkload",
    "StreamingRandomOperationsWorkload",
    "StreamingWorkload",
    "WORKLOAD_REGISTRY",
    "make_workload",
    "workload_names",
]
