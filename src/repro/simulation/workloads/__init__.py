"""Workload generators: object bases plus transaction mixes for the engine.

Each workload is a plain dataclass whose fields are the knobs an
experiment sweeps (population sizes, contention probabilities, seeds) and
whose :meth:`build` method returns an :class:`~repro.objectbase.base.ObjectBase`
together with the :class:`~repro.simulation.transactions.TransactionSpec`
list to submit.  :data:`WORKLOAD_REGISTRY` maps short names to the
classes so that declarative scenario specifications (:mod:`repro.sweep`)
can reference workloads by name and construct them inside worker
processes from JSON-serialisable parameters.
"""

from __future__ import annotations

from typing import Any, Mapping

from ...core.registry import resolve_component
from .banking import BankingWorkload
from .btree_load import BTreeWorkload
from .hotspot import HotspotWorkload
from .mixed import MixedWorkload
from .order_processing import OrderProcessingWorkload
from .queues import QueueWorkload
from .random_ops import RandomOperationsWorkload
from .stream import (
    StreamingBankingWorkload,
    StreamingBTreeWorkload,
    StreamingHotspotWorkload,
    StreamingMixedWorkload,
    StreamingOrderProcessingWorkload,
    StreamingQueueWorkload,
    StreamingRandomOperationsWorkload,
    StreamingWorkload,
    StreamingZipfianWorkload,
)
from .zipf import ZipfianWorkload

#: Short names accepted by :func:`make_workload` and ``repro.sweep`` specs.
#: The ``*-stream`` entries wrap the matching closed-batch generator in an
#: arrival process (see :mod:`repro.simulation.workloads.stream`); the
#: generic ``"stream"`` entry picks the inner workload via its ``inner``
#: parameter.
WORKLOAD_REGISTRY: dict[str, type] = {
    "banking": BankingWorkload,
    "btree": BTreeWorkload,
    "hotspot": HotspotWorkload,
    "mixed": MixedWorkload,
    "order-processing": OrderProcessingWorkload,
    "queue": QueueWorkload,
    "random-ops": RandomOperationsWorkload,
    "zipf": ZipfianWorkload,
    "stream": StreamingWorkload,
    "banking-stream": StreamingBankingWorkload,
    "btree-stream": StreamingBTreeWorkload,
    "hotspot-stream": StreamingHotspotWorkload,
    "mixed-stream": StreamingMixedWorkload,
    "order-processing-stream": StreamingOrderProcessingWorkload,
    "queue-stream": StreamingQueueWorkload,
    "random-ops-stream": StreamingRandomOperationsWorkload,
    "zipf-stream": StreamingZipfianWorkload,
}


def make_workload(name: "str | Mapping[str, Any] | Any", **params: Any):
    """Instantiate a workload from a name, a config mapping, or an instance.

    Accepted shapes (the uniform component-specification contract of
    :func:`repro.core.registry.resolve_component`):

    * ``"hotspot"`` — a :data:`WORKLOAD_REGISTRY` key, optionally with
      ``**params`` as constructor keywords;
    * ``{"name": "hotspot", "registers": 32}`` — a registry name plus
      constructor keywords (``**params`` are merged in);
    * a ready workload instance — anything with a callable ``build``
      attribute — returned unchanged (keywords are rejected).

    Returns:
        The workload instance (not yet built — call :meth:`build` on it).

    Raises:
        KeyError: when the name is not registered.
        TypeError: on keywords the workload does not accept, or an
            unsupported specification type.
    """
    if not isinstance(name, (str, Mapping)) and callable(
        getattr(name, "build", None)
    ):
        if params:
            raise TypeError(
                f"cannot apply keyword arguments to a ready "
                f"{type(name).__name__} instance"
            )
        return name
    return resolve_component(WORKLOAD_REGISTRY, name, kind="workload", **params)


def workload_names() -> list[str]:
    """Names accepted by :func:`make_workload`."""
    return sorted(WORKLOAD_REGISTRY)


__all__ = [
    "BankingWorkload",
    "BTreeWorkload",
    "HotspotWorkload",
    "MixedWorkload",
    "OrderProcessingWorkload",
    "QueueWorkload",
    "RandomOperationsWorkload",
    "StreamingBankingWorkload",
    "StreamingBTreeWorkload",
    "StreamingHotspotWorkload",
    "StreamingMixedWorkload",
    "StreamingOrderProcessingWorkload",
    "StreamingQueueWorkload",
    "StreamingRandomOperationsWorkload",
    "StreamingWorkload",
    "StreamingZipfianWorkload",
    "ZipfianWorkload",
    "WORKLOAD_REGISTRY",
    "make_workload",
    "workload_names",
]
