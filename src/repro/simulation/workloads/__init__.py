"""Workload generators: object bases plus transaction mixes for the engine."""

from .banking import BankingWorkload
from .btree_load import BTreeWorkload
from .hotspot import HotspotWorkload
from .mixed import MixedWorkload
from .queues import QueueWorkload
from .random_ops import RandomOperationsWorkload

__all__ = [
    "BankingWorkload",
    "BTreeWorkload",
    "HotspotWorkload",
    "MixedWorkload",
    "QueueWorkload",
    "RandomOperationsWorkload",
]
