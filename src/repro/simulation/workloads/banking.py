"""Banking workload: nested transfers over bank-account objects.

The object base contains ``accounts`` bank-account objects, one branch
counter per branch, and one *teller* object per branch whose ``transfer``
method encapsulates the move-money logic — so a user transaction
("transfer", "payroll", "audit") always runs as a nested transaction at
least three levels deep (environment → teller → accounts), which is the
structure the paper's model is about.

Transaction mix
---------------

* ``transfer`` — invoke a teller to move a random amount between two
  accounts; the teller withdraws from the source and deposits into the
  destination only when the withdrawal succeeded.
* ``payroll`` — deposit a salary into several accounts *in parallel*
  (internal parallelism: the deposits are issued as parallel messages).
* ``audit`` — read the balances of a sample of accounts and compare their
  sum with the branch counters (a read-only transaction).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...core.errors import WorkloadError
from ...objectbase.adts.bank_account import bank_account_definition
from ...objectbase.adts.counter import counter_definition
from ...objectbase.base import MethodDefinition, ObjectBase, ObjectDefinition
from ..transactions import TransactionSpec


def _account_name(index: int) -> str:
    return f"account-{index:03d}"


def _teller_name(branch: int) -> str:
    return f"teller-{branch}"


def _branch_counter_name(branch: int) -> str:
    return f"branch-total-{branch}"


@dataclass
class BankingWorkload:
    """Parameterised generator of the banking object base and transactions."""

    accounts: int = 16
    branches: int = 2
    transactions: int = 32
    initial_balance: float = 100.0
    transfer_fraction: float = 0.6
    payroll_fraction: float = 0.2
    payroll_width: int = 3
    audit_sample: int = 4
    hot_fraction: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.accounts < 2:
            raise WorkloadError("the banking workload needs at least two accounts")
        if not 0 <= self.transfer_fraction + self.payroll_fraction <= 1:
            raise WorkloadError("transaction mix fractions must sum to at most 1")
        self._rng = random.Random(self.seed)

    # -- object base -------------------------------------------------------------

    def build_object_base(self) -> ObjectBase:
        base = ObjectBase()
        for index in range(self.accounts):
            base.register(bank_account_definition(_account_name(index), self.initial_balance))
        for branch in range(self.branches):
            base.register(
                counter_definition(
                    _branch_counter_name(branch),
                    self.initial_balance * self._accounts_in_branch(branch),
                )
            )
            base.register(self._teller_definition(branch))
        self._register_transactions(base)
        return base

    def _accounts_in_branch(self, branch: int) -> int:
        return len([index for index in range(self.accounts) if index % self.branches == branch])

    def _teller_definition(self, branch: int) -> ObjectDefinition:
        definition = ObjectDefinition(name=_teller_name(branch))

        def transfer(ctx, source: str, destination: str, amount: float):
            withdrawn = yield ctx.invoke(source, "withdraw", amount)
            if not withdrawn:
                return False
            yield ctx.invoke(destination, "deposit", amount)
            return True

        def deposit_many(ctx, account_names, amount: float):
            results = yield ctx.parallel(
                *[ctx.call(account, "deposit", amount) for account in account_names]
            )
            return len(results)

        definition.add_method(MethodDefinition("transfer", transfer))
        definition.add_method(MethodDefinition("deposit_many", deposit_many))
        return definition

    # -- transactions --------------------------------------------------------------

    def _register_transactions(self, base: ObjectBase) -> None:
        branches = self.branches

        def transfer_transaction(ctx, source: str, destination: str, amount: float, branch: int):
            moved = yield ctx.invoke(_teller_name(branch), "transfer", source, destination, amount)
            return moved

        def payroll_transaction(ctx, account_names, amount: float, branch: int):
            paid = yield ctx.invoke(_teller_name(branch), "deposit_many", account_names, amount)
            yield ctx.invoke(_branch_counter_name(branch), "add", amount * len(account_names))
            return paid

        def audit_transaction(ctx, account_names, branch: int):
            balances = yield ctx.parallel(
                *[ctx.call(account, "balance") for account in account_names]
            )
            branch_total = yield ctx.invoke(_branch_counter_name(branch % branches), "get")
            return sum(balances), branch_total

        base.register_transaction(MethodDefinition("transfer", transfer_transaction))
        base.register_transaction(MethodDefinition("payroll", payroll_transaction))
        base.register_transaction(MethodDefinition("audit", audit_transaction, read_only=True))

    def _pick_account(self) -> int:
        if self.hot_fraction > 0 and self._rng.random() < self.hot_fraction:
            return 0  # a single hot account concentrates contention
        return self._rng.randrange(self.accounts)

    def build_transactions(self) -> list[TransactionSpec]:
        specs: list[TransactionSpec] = []
        for _ in range(self.transactions):
            draw = self._rng.random()
            if draw < self.transfer_fraction:
                source = self._pick_account()
                destination = self._pick_account()
                while destination == source:
                    destination = self._rng.randrange(self.accounts)
                amount = round(self._rng.uniform(1, 20), 2)
                branch = source % self.branches
                specs.append(
                    TransactionSpec(
                        "transfer",
                        (_account_name(source), _account_name(destination), amount, branch),
                        label=f"transfer {source}->{destination}",
                    )
                )
            elif draw < self.transfer_fraction + self.payroll_fraction:
                branch = self._rng.randrange(self.branches)
                members = self._rng.sample(range(self.accounts), min(self.payroll_width, self.accounts))
                specs.append(
                    TransactionSpec(
                        "payroll",
                        (tuple(_account_name(index) for index in members), 10.0, branch),
                        label=f"payroll branch {branch}",
                    )
                )
            else:
                sample = self._rng.sample(range(self.accounts), min(self.audit_sample, self.accounts))
                branch = self._rng.randrange(self.branches)
                specs.append(
                    TransactionSpec(
                        "audit",
                        (tuple(_account_name(index) for index in sample), branch),
                        label="audit",
                    )
                )
        return specs

    def build(self) -> tuple[ObjectBase, list[TransactionSpec]]:
        """The object base plus the transaction mix, ready for the engine."""
        return self.build_object_base(), self.build_transactions()

    def expected_total_balance(self) -> float:
        """The sum of balances any serialisable run must preserve.

        Transfers move money between accounts and audits read it, so with
        ``payroll_fraction == 0`` the total balance is an invariant of the
        workload; the integration tests use it to detect lost updates.
        Payroll transactions deposit fresh money, so the invariant only
        holds for mixes without them.
        """
        return self.initial_balance * self.accounts
