"""Streaming wrappers: any registered workload as an open arrival stream.

A :class:`StreamingWorkload` delegates object-base and transaction
generation to an *inner* workload named in
:data:`~repro.simulation.workloads.WORKLOAD_REGISTRY` and adds the one
thing an open-system run needs: an
:class:`~repro.simulation.arrivals.ArrivalProcess` configuration.  The
sweep runner detects the :meth:`arrival_process` hook and submits the
generated transactions through
:meth:`~repro.simulation.engine.SimulationEngine.submit_stream` instead
of ``submit_all``, so every existing generator doubles as an open
workload and arrival rate becomes a declarative sweep axis
(``workload_params.arrival_params``).

The wrapper validates eagerly on two levels: its own ``__post_init__``
(bad construction fails immediately) and the
:meth:`StreamingWorkload.validate_params` hook the sweep layer calls
while a :class:`~repro.sweep.spec.ScenarioSpec` is being built — a typo'd
inner parameter or an unknown arrival process fails at spec construction,
before any worker process is spawned.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from ...core.errors import WorkloadError
from ..arrivals import ArrivalProcess, ARRIVAL_REGISTRY, make_arrival_process


@dataclass
class StreamingWorkload:
    """An inner workload plus the arrival process that feeds it in.

    Args:
        inner: registry name of the wrapped workload (``"hotspot"``, ...).
        inner_params: constructor arguments of the inner workload
            (``transactions`` controls the stream length).
        arrival: arrival process registry name (``"poisson"``,
            ``"bursty"``).
        arrival_params: constructor arguments of the arrival process
            (e.g. ``{"rate": 0.05}``).
    """

    inner: str = "hotspot"
    inner_params: dict[str, Any] = field(default_factory=dict)
    arrival: str = "poisson"
    arrival_params: dict[str, Any] = field(default_factory=dict)
    _inner_workload: Any = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self.validate_params(
            {
                "inner": self.inner,
                "inner_params": self.inner_params,
                "arrival": self.arrival,
                "arrival_params": self.arrival_params,
            },
            default_inner=self.inner,
        )
        # Constructing the inner workload also runs its own validation.
        self._inner_workload = self._make_inner()

    def _make_inner(self) -> Any:
        from . import make_workload  # deferred: the registry imports this module

        return make_workload(self.inner, **self.inner_params)

    # -- eager validation (shared with the sweep layer) ---------------------------

    @classmethod
    def validate_params(
        cls, params: Mapping[str, Any], default_inner: str | None = None
    ) -> None:
        """Validate streaming parameters without building anything.

        Called by :meth:`repro.sweep.spec.ScenarioSpec.validate` so a
        sweep over streaming scenarios rejects unknown inner workloads,
        unknown inner parameters, unknown arrival processes and unknown
        arrival keywords at spec-construction time.

        Args:
            params: the ``workload_params`` mapping of a scenario.
            default_inner: inner workload assumed when ``params`` does
                not name one (subclasses pin it via their field default).

        Raises:
            WorkloadError: on any unknown name or keyword.
        """
        from . import WORKLOAD_REGISTRY  # deferred: the registry imports this module

        if default_inner is None:
            default_inner = next(
                f.default for f in dataclasses.fields(cls) if f.name == "inner"
            )
        inner = params.get("inner", default_inner)
        if inner not in WORKLOAD_REGISTRY:
            raise WorkloadError(
                f"unknown inner workload {inner!r}; "
                f"available: {', '.join(sorted(WORKLOAD_REGISTRY))}"
            )
        inner_class = WORKLOAD_REGISTRY[inner]
        if issubclass(inner_class, StreamingWorkload):
            raise WorkloadError("streaming workloads cannot wrap one another")
        allowed = {
            spec_field.name
            for spec_field in dataclasses.fields(inner_class)
            if spec_field.init
        }
        inner_params = params.get("inner_params", {})
        unknown = sorted(set(inner_params) - allowed)
        if unknown:
            raise WorkloadError(
                f"inner workload {inner!r} has no parameters {unknown}; "
                f"available: {', '.join(sorted(allowed))}"
            )
        arrival = params.get("arrival", "poisson")
        if not isinstance(arrival, str) or arrival not in ARRIVAL_REGISTRY:
            raise WorkloadError(
                f"unknown arrival process {arrival!r}; "
                f"available: {', '.join(sorted(ARRIVAL_REGISTRY))}"
            )
        arrival_params = params.get("arrival_params", {})
        try:
            # Constructing the process validates keywords *and* values
            # (negative rates, zero-sized bursts) in one go; it is cheap
            # and side-effect free.
            ARRIVAL_REGISTRY[arrival](**dict(arrival_params))
        except (TypeError, ValueError) as exc:
            raise WorkloadError(
                f"arrival process {arrival!r} rejects parameters "
                f"{sorted(arrival_params)}: {exc}"
            ) from exc

    # -- building ------------------------------------------------------------------

    def build(self):
        """Delegate to the inner workload: ``(object base, transaction specs)``."""
        return self._inner_workload.build()

    def arrival_process(self) -> ArrivalProcess:
        """The configured arrival process (fresh instance; engine binds it)."""
        return make_arrival_process(self.arrival, **self.arrival_params)

    def modular_strategy_map(self) -> dict[str, str]:
        """Forward the inner workload's per-object strategy preferences."""
        mapper = getattr(self._inner_workload, "modular_strategy_map", None)
        if mapper is None:
            raise WorkloadError(
                f"inner workload {self.inner!r} does not define modular_strategy_map()"
            )
        return mapper()


@dataclass
class StreamingHotspotWorkload(StreamingWorkload):
    """Hot-spot contention as an arrival stream (E15's default subject)."""

    inner: str = "hotspot"


@dataclass
class StreamingBankingWorkload(StreamingWorkload):
    """Banking transfers as an arrival stream."""

    inner: str = "banking"


@dataclass
class StreamingMixedWorkload(StreamingWorkload):
    """The mixed-ADT workload as an arrival stream."""

    inner: str = "mixed"


@dataclass
class StreamingQueueWorkload(StreamingWorkload):
    """Producer/consumer queues as an arrival stream."""

    inner: str = "queue"


@dataclass
class StreamingRandomOperationsWorkload(StreamingWorkload):
    """Random register operations as an arrival stream."""

    inner: str = "random-ops"


@dataclass
class StreamingBTreeWorkload(StreamingWorkload):
    """B-tree index traffic as an arrival stream."""

    inner: str = "btree"


@dataclass
class StreamingZipfianWorkload(StreamingWorkload):
    """Zipf-skewed register traffic as an arrival stream (E19's hot/cold mix)."""

    inner: str = "zipf"


@dataclass
class StreamingOrderProcessingWorkload(StreamingWorkload):
    """The order-processing pipeline as an arrival stream."""

    inner: str = "order-processing"
