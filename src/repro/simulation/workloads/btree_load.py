"""B-tree index maintenance workload.

Transactions search, insert, delete and range-scan one or more B-tree
index objects.  Because the index's conflict specification is key-granular,
fine-grained schedulers admit most interleavings, whereas the coarse
single-active-object baseline serialises every pair of transactions that
touch the same index — the contrast experiments E1 and E5 measure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...core.errors import WorkloadError
from ...objectbase.adts.btree import btree_definition
from ...objectbase.base import MethodDefinition, ObjectBase
from ..transactions import TransactionSpec


def _index_name(index: int) -> str:
    return f"index-{index}"


@dataclass
class BTreeWorkload:
    """Key lookups, insertions, deletions and scans over B-tree indexes."""

    indexes: int = 1
    transactions: int = 24
    operations_per_transaction: int = 4
    key_space: int = 200
    initial_keys: int = 100
    degree: int = 3
    read_fraction: float = 0.5
    scan_fraction: float = 0.1
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.read_fraction + self.scan_fraction <= 1:
            raise WorkloadError("read and scan fractions must sum to at most 1")
        if self.initial_keys > self.key_space:
            raise WorkloadError("initial_keys cannot exceed the key space")
        self._rng = random.Random(self.seed)

    def build_object_base(self) -> ObjectBase:
        base = ObjectBase()
        for index in range(self.indexes):
            keys = self._rng.sample(range(self.key_space), self.initial_keys)
            initial_items = {key: f"row-{key}" for key in keys}
            base.register(btree_definition(_index_name(index), self.degree, initial_items))
        self._register_transactions(base)
        return base

    def _register_transactions(self, base: ObjectBase) -> None:
        def maintain(ctx, index_name: str, actions):
            results = []
            for action, key in actions:
                if action == "search":
                    results.append((yield ctx.invoke(index_name, "search", key)))
                elif action == "insert":
                    results.append((yield ctx.invoke(index_name, "insert", key, f"row-{key}")))
                elif action == "delete":
                    results.append((yield ctx.invoke(index_name, "delete", key)))
                else:  # range scan: key is a (low, high) pair
                    low, high = key
                    results.append((yield ctx.invoke(index_name, "range", low, high)))
            return tuple(results)

        def report(ctx, index_name: str, low, high):
            rows = yield ctx.invoke(index_name, "range", low, high)
            total = yield ctx.invoke(index_name, "size")
            return len(rows), total

        base.register_transaction(MethodDefinition("maintain", maintain))
        base.register_transaction(MethodDefinition("report", report, read_only=True))

    def _random_action(self) -> tuple[str, object]:
        draw = self._rng.random()
        key = self._rng.randrange(self.key_space)
        if draw < self.read_fraction:
            return ("search", key)
        if draw < self.read_fraction + self.scan_fraction:
            low = self._rng.randrange(self.key_space)
            return ("scan", (low, min(self.key_space, low + self.key_space // 10)))
        if self._rng.random() < 0.5:
            return ("insert", key)
        return ("delete", key)

    def build_transactions(self) -> list[TransactionSpec]:
        specs: list[TransactionSpec] = []
        for index in range(self.transactions):
            target = _index_name(self._rng.randrange(self.indexes))
            actions = tuple(
                self._random_action() for _ in range(self.operations_per_transaction)
            )
            specs.append(TransactionSpec("maintain", (target, actions), label=f"maintain-{index}"))
        return specs

    def build(self) -> tuple[ObjectBase, list[TransactionSpec]]:
        return self.build_object_base(), self.build_transactions()
