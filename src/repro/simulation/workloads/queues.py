"""Producer/consumer workload over FIFO queue objects.

This is the workload behind experiment E2: the paper (Section 5.1) argues
that locking *steps* instead of *operations* pays off exactly for queues,
because an ``Enqueue`` only conflicts with the ``Dequeue`` that removes the
item it inserted.  With the queues pre-populated, enqueues and dequeues of
incomparable transactions almost never conflict at the step level, while at
the operation level every producer blocks every consumer on the same
queue.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...core.errors import WorkloadError
from ...objectbase.adts.fifo_queue import fifo_queue_definition
from ...objectbase.base import MethodDefinition, ObjectBase
from ..transactions import TransactionSpec


def _queue_name(index: int) -> str:
    return f"queue-{index:02d}"


@dataclass
class QueueWorkload:
    """Producers enqueue batches of unique items; consumers drain them."""

    queues: int = 2
    producers: int = 8
    consumers: int = 8
    items_per_transaction: int = 3
    initial_depth: int = 10
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.queues < 1:
            raise WorkloadError("the queue workload needs at least one queue")
        self._rng = random.Random(self.seed)

    def build_object_base(self) -> ObjectBase:
        base = ObjectBase()
        for index in range(self.queues):
            initial_items = tuple(
                f"seed-item-{index}-{position}" for position in range(self.initial_depth)
            )
            base.register(fifo_queue_definition(_queue_name(index), initial_items))
        self._register_transactions(base)
        return base

    def _register_transactions(self, base: ObjectBase) -> None:
        def produce(ctx, queue_name: str, items):
            for item in items:
                yield ctx.invoke(queue_name, "enqueue", item)
            return len(items)

        def consume(ctx, queue_name: str, count: int):
            taken = []
            for _ in range(count):
                item = yield ctx.invoke(queue_name, "dequeue")
                if item is not None:
                    taken.append(item)
            return tuple(taken)

        def inspect(ctx, queue_name: str):
            length = yield ctx.invoke(queue_name, "length")
            return length

        base.register_transaction(MethodDefinition("produce", produce))
        base.register_transaction(MethodDefinition("consume", consume))
        base.register_transaction(MethodDefinition("inspect", inspect, read_only=True))

    def build_transactions(self) -> list[TransactionSpec]:
        specs: list[TransactionSpec] = []
        for producer in range(self.producers):
            queue = self._rng.randrange(self.queues)
            items = tuple(
                f"item-{producer}-{sequence}" for sequence in range(self.items_per_transaction)
            )
            specs.append(
                TransactionSpec(
                    "produce", (_queue_name(queue), items), label=f"produce@{queue}"
                )
            )
        for consumer in range(self.consumers):
            queue = self._rng.randrange(self.queues)
            specs.append(
                TransactionSpec(
                    "consume",
                    (_queue_name(queue), self.items_per_transaction),
                    label=f"consume@{queue}",
                )
            )
        self._rng.shuffle(specs)
        return specs

    def build(self) -> tuple[ObjectBase, list[TransactionSpec]]:
        return self.build_object_base(), self.build_transactions()

    def total_items_produced(self) -> int:
        """Upper bound on items enqueued by producers (all unique)."""
        return self.producers * self.items_per_transaction
