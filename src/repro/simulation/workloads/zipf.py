"""Zipfian key-skew workload: a popularity continuum instead of hot/cold.

The hotspot workload (:mod:`repro.simulation.workloads.hotspot`) models
contention as a binary — an access is either *hot* or *cold* — which makes
the right per-object strategy assignment obvious.  Real key popularity
follows a power law: a few objects are scorching, a long tail is nearly
idle, and a *band in the middle* is contended enough that restarts hurt
but not enough that blocking locks obviously pay.  That band is where an
adaptive scheduler has to actually measure rather than guess, so this
workload is the primary subject of the E19 mixed hot/cold scenario.

Accesses pick register ``r`` (rank ``r + 1``) with probability
proportional to ``1 / (r + 1) ** skew`` — ``skew=0`` degenerates to a
uniform workload, ``skew`` around 1 is the classical Zipf shape, higher
values concentrate almost all traffic on the first few ranks.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field

from ...core.errors import WorkloadError
from ...objectbase.adts.register import register_definition
from ...objectbase.base import MethodDefinition, ObjectBase
from ..transactions import TransactionSpec


def _register_name(rank: int) -> str:
    return f"key-{rank:03d}"


@dataclass
class ZipfianWorkload:
    """Read/update transactions over registers with power-law popularity."""

    transactions: int = 24
    objects: int = 64
    operations_per_transaction: int = 4
    skew: float = 1.1
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _cumulative: list[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.objects < 1:
            raise WorkloadError("the zipfian workload needs at least one object")
        if self.transactions < 1:
            raise WorkloadError(
                f"the zipfian workload needs at least one transaction, "
                f"got {self.transactions}"
            )
        if self.operations_per_transaction < 1:
            raise WorkloadError("operations_per_transaction must be >= 1")
        if self.skew < 0:
            raise WorkloadError(f"zipf skew must be >= 0, got {self.skew}")
        self._rng = random.Random(self.seed)
        # Inverse-CDF sampling over the finite Zipf distribution: the
        # cumulative weights are a pure function of (objects, skew), so
        # the draw sequence is a pure function of the workload seed.
        total = 0.0
        self._cumulative = []
        for rank in range(1, self.objects + 1):
            total += 1.0 / rank**self.skew
            self._cumulative.append(total)

    def _pick_rank(self) -> int:
        point = self._rng.random() * self._cumulative[-1]
        return bisect.bisect_left(self._cumulative, point)

    def build_object_base(self) -> ObjectBase:
        base = ObjectBase()
        for rank in range(self.objects):
            base.register(register_definition(_register_name(rank), 0))
        self._register_transactions(base)
        return base

    def _register_transactions(self, base: ObjectBase) -> None:
        def update(ctx, register_names, delta: int):
            previous = []
            for register_name in register_names:
                value = yield ctx.invoke(register_name, "read")
                yield ctx.invoke(register_name, "write", (value or 0) + delta)
                previous.append(value)
            return tuple(previous)

        def scan(ctx, register_names):
            values = yield ctx.parallel(
                *[ctx.call(register_name, "read") for register_name in register_names]
            )
            return tuple(values)

        base.register_transaction(MethodDefinition("update", update))
        base.register_transaction(MethodDefinition("scan", scan, read_only=True))

    def build_transactions(self) -> list[TransactionSpec]:
        specs: list[TransactionSpec] = []
        distinct_target = min(self.operations_per_transaction, self.objects)
        for index in range(self.transactions):
            names: list[str] = []
            while len(names) < distinct_target:
                candidate = _register_name(self._pick_rank())
                if candidate not in names:
                    names.append(candidate)
            specs.append(
                TransactionSpec("update", (tuple(names), 1), label=f"update-{index}")
            )
        return specs

    def build(self) -> tuple[ObjectBase, list[TransactionSpec]]:
        return self.build_object_base(), self.build_transactions()
