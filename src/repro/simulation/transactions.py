"""Transaction programmes and the method context.

Methods (and top-level transactions, which are methods of the environment)
are written as Python *generator functions*: the body receives a
:class:`MethodContext` plus its arguments, and drives the simulation by
``yield``-ing requests built through the context:

* ``value = yield ctx.local(operation)`` — execute a local operation on
  the method's own object and receive its return value;
* ``value = yield ctx.invoke(object_name, method_name, *args)`` — send a
  message: the named method of the named object runs as a child execution
  and its return value is delivered when it completes;
* ``values = yield ctx.parallel(ctx.call(...), ctx.call(...))`` — send
  several messages whose child executions may interleave with one another
  (internal parallelism, Section 1(c) of the paper); the list of return
  values is delivered once all of them complete.

The engine interprets these requests, consults the scheduler, records the
resulting history and feeds return values back into the generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.errors import SimulationError
from ..core.operations import LocalOperation


@dataclass(frozen=True, slots=True)
class LocalRequest:
    """Request to execute a local operation on the issuing method's object."""

    operation: LocalOperation


@dataclass(frozen=True, slots=True)
class InvokeRequest:
    """Request to invoke ``method_name`` of ``object_name`` as a child execution."""

    object_name: str
    method_name: str
    arguments: tuple[Any, ...] = ()


@dataclass(frozen=True, slots=True)
class ParallelRequest:
    """Request to run several invocations as concurrent child executions."""

    invocations: tuple[InvokeRequest, ...]


Request = LocalRequest | InvokeRequest | ParallelRequest


class MethodContext:
    """Hands a method body the means to issue requests.

    One context is created per method execution; it knows which object and
    execution it belongs to, so ``ctx.local`` does not need to repeat the
    object name.
    """

    __slots__ = ("object_name", "execution_id", "method_name")

    def __init__(self, object_name: str, execution_id: str, method_name: str):
        self.object_name = object_name
        self.execution_id = execution_id
        self.method_name = method_name

    def local(self, operation: LocalOperation) -> LocalRequest:
        """A request to run ``operation`` on this method's own object."""
        if not isinstance(operation, LocalOperation):
            raise SimulationError(
                f"ctx.local expects a LocalOperation, got {type(operation).__name__}"
            )
        return LocalRequest(operation)

    def invoke(self, object_name: str, method_name: str, *arguments: Any) -> InvokeRequest:
        """A request to invoke another object's method as a child execution."""
        return InvokeRequest(object_name, method_name, tuple(arguments))

    # ``call`` is an alias of ``invoke`` that reads better inside ``parallel``.
    call = invoke

    def parallel(self, *invocations: InvokeRequest) -> ParallelRequest:
        """A request to run the given invocations as parallel children."""
        flattened: list[InvokeRequest] = []
        for invocation in invocations:
            if isinstance(invocation, ParallelRequest):
                flattened.extend(invocation.invocations)
            elif isinstance(invocation, InvokeRequest):
                flattened.append(invocation)
            else:
                raise SimulationError(
                    "ctx.parallel expects InvokeRequest instances (use ctx.call(...))"
                )
        if not flattened:
            raise SimulationError("ctx.parallel needs at least one invocation")
        return ParallelRequest(tuple(flattened))

    def __repr__(self) -> str:
        return (
            f"MethodContext(object={self.object_name!r}, execution={self.execution_id!r}, "
            f"method={self.method_name!r})"
        )


@dataclass
class TransactionSpec:
    """One top-level transaction to submit to the engine.

    ``method_name`` must be a transaction type registered on the
    environment object; ``arguments`` are passed to its body.  ``label`` is
    used in metrics and traces (it defaults to the method name).
    """

    method_name: str
    arguments: tuple[Any, ...] = ()
    label: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.label:
            self.label = self.method_name
