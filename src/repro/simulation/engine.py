"""The simulation engine: interleaved execution of nested transactions.

The engine is the library's substitute for a real object-base management
system.  It executes a set of top-level transactions (methods of the
environment) written as generator programmes, interleaving them one local
step at a time under the control of a pluggable scheduler, and records the
run as a :class:`~repro.core.history.History` that the analysis layer can
certify against the paper's theory.

Execution model
---------------

* Every method execution in progress is a *frame* holding its generator,
  its :class:`~repro.scheduler.base.ExecutionInfo` and its pending request.
* Each *tick* the engine picks one runnable frame (uniformly at random
  under a seeded RNG, or round-robin) and resolves exactly one request for
  it: a local operation (consulting the scheduler and, when granted,
  executing it against the object states), a message send (creating a child
  frame), or the completion of the frame.
* Blocking costs ticks: a frame whose operation is blocked stays runnable
  and retries when next scheduled, so the run's total tick count (the
  *makespan*) directly reflects the concurrency the scheduler admits.
* An ``ABORT`` decision aborts the whole top-level transaction: its frames
  are discarded, the object states are rebuilt by replaying every local
  step that does not belong to an aborted attempt, and the transaction is
  resubmitted (up to ``max_restarts`` times) as a fresh execution.

The recorded history contains the steps of aborted attempts as well; the
:class:`~repro.simulation.metrics.RunResult` exposes the committed
projection, which is what serialisability certification operates on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import SimulationError
from ..core.history import HistoryBuilder
from ..core.operations import LocalOperation, LocalStep
from ..core.state import ObjectState
from ..objectbase.base import ObjectBase
from ..scheduler.base import ExecutionInfo, OperationRequest, Scheduler, SchedulerResponse
from .events import (
    ABORTED,
    BEGIN,
    BLOCKED,
    COMMITTED,
    COMPLETED,
    GAVE_UP,
    GRANTED,
    INVOKE,
    RESTARTED,
    Trace,
    TraceEvent,
)
from .metrics import RunMetrics, RunResult
from .transactions import (
    InvokeRequest,
    LocalRequest,
    MethodContext,
    ParallelRequest,
    TransactionSpec,
)

_READY = "ready"
_WAITING = "waiting"
_DONE = "done"


@dataclass
class _Frame:
    """One method execution in progress."""

    info: ExecutionInfo
    execution: Any  # MethodExecution handle returned by the HistoryBuilder
    generator: Any = None
    status: str = _READY
    inbox: Any = None
    pending_local: LocalRequest | None = None
    blocked_attempts: int = 0
    parent: "_Frame | None" = None
    waiting_on: set[str] = field(default_factory=set)
    parallel_results: dict[str, Any] = field(default_factory=dict)
    parallel_order: list[str] = field(default_factory=list)
    spec: TransactionSpec | None = None
    attempt: int = 1

    @property
    def execution_id(self) -> str:
        return self.info.execution_id


@dataclass
class _StepLogEntry:
    """A local step executed by the engine, kept for state reconstruction."""

    execution_id: str
    top_level_id: str
    object_name: str
    operation: LocalOperation


class SimulationEngine:
    """Interleaves transaction programmes under a concurrency-control scheduler."""

    def __init__(
        self,
        object_base: ObjectBase,
        scheduler: Scheduler,
        *,
        seed: int = 0,
        scheduling: str = "random",
        max_restarts: int = 25,
        starvation_limit: int = 2000,
        max_ticks: int = 2_000_000,
        record_trace: bool = False,
        conflict_level_for_history: str = "step",
    ):
        if scheduling not in ("random", "round-robin"):
            raise SimulationError(f"unknown scheduling policy {scheduling!r}")
        self.object_base = object_base
        self.scheduler = scheduler
        self.rng = random.Random(seed)
        self.scheduling = scheduling
        self.max_restarts = max_restarts
        self.starvation_limit = starvation_limit
        self.max_ticks = max_ticks
        self.record_trace = record_trace
        self._trace = Trace() if record_trace else None

        self._builder = HistoryBuilder(
            initial_states=object_base.initial_states(),
            conflicts=object_base.conflicts(conflict_level_for_history),
        )
        self._states: dict[str, ObjectState] = dict(object_base.initial_states())
        self._frames: dict[str, _Frame] = {}
        self._executions_by_transaction: dict[str, set[str]] = {}
        self._round_robin_cursor = 0
        self._step_log: list[_StepLogEntry] = []
        self._aborted_executions: set[str] = set()
        self._committed: list[str] = []
        self._pending_specs: list[TransactionSpec] = []
        self.metrics = RunMetrics()
        self._tick = 0
        self._finished = False

        self.scheduler.attach(object_base)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, spec: TransactionSpec | str, *arguments: Any) -> None:
        """Queue a top-level transaction for execution.

        Accepts either a :class:`TransactionSpec` or a method name plus
        arguments for convenience.
        """
        if isinstance(spec, str):
            spec = TransactionSpec(spec, tuple(arguments))
        elif arguments:
            raise SimulationError("pass arguments inside the TransactionSpec")
        self.object_base.environment.method(spec.method_name)  # validate early
        self._pending_specs.append(spec)
        self.metrics.submitted += 1

    def submit_all(self, specs) -> None:
        for spec in specs:
            self.submit(spec)

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute every submitted transaction to commit (or give-up)."""
        if self._finished:
            raise SimulationError("engine instances are single-use; create a new one")
        for spec in self._pending_specs:
            self._start_transaction(spec, attempt=1)
        self._pending_specs = []

        while self._frames and self._tick < self.max_ticks:
            self._tick += 1
            self.metrics.total_ticks = self._tick
            frame_id = self._choose_frame()
            if frame_id is None:
                break
            self._advance(self._frames[frame_id])

        self._finished = True
        history = self._builder.build()
        return RunResult(
            history=history,
            metrics=self.metrics,
            scheduler_description=self.scheduler.describe(),
            aborted_execution_ids=frozenset(self._aborted_executions),
            committed_transaction_ids=tuple(self._committed),
            trace=self._trace,
        )

    def _choose_frame(self) -> str | None:
        candidates = [
            frame_id for frame_id, frame in self._frames.items() if frame.status == _READY
        ]
        if not candidates:
            return None
        if self.scheduling == "random":
            return self.rng.choice(candidates)
        self._round_robin_cursor = (self._round_robin_cursor + 1) % len(candidates)
        return candidates[self._round_robin_cursor]

    # ------------------------------------------------------------------
    # frame management
    # ------------------------------------------------------------------

    def _record(self, kind: str, execution_id: str, object_name: str = "", detail: str = "") -> None:
        if self._trace is not None:
            self._trace.record(TraceEvent(self._tick, kind, execution_id, object_name, detail))

    def _start_transaction(self, spec: TransactionSpec, attempt: int) -> None:
        definition = self.object_base.environment.method(spec.method_name)
        execution = self._builder.begin_top_level(spec.method_name)
        info = ExecutionInfo(
            execution_id=execution.execution_id,
            object_name=self.object_base.environment.name,
            method_name=spec.method_name,
            parent_id=None,
            ancestor_ids=(),
            top_level_id=execution.execution_id,
        )
        frame = _Frame(info=info, execution=execution, spec=spec, attempt=attempt)
        context = MethodContext(info.object_name, info.execution_id, spec.method_name)
        frame.generator = definition.body(context, *spec.arguments)
        self._frames[info.execution_id] = frame
        self._executions_by_transaction[info.execution_id] = {info.execution_id}
        self.scheduler.on_transaction_begin(info)
        self._record(BEGIN if attempt == 1 else RESTARTED, info.execution_id, detail=spec.label)

    def _spawn_child(self, parent: _Frame, invocation: InvokeRequest, after) -> _Frame:
        definition = self.object_base.method(invocation.object_name, invocation.method_name)
        child_execution = self._builder.invoke(
            parent.execution,
            invocation.object_name,
            invocation.method_name,
            invocation.arguments,
            after=after,
        )
        info = ExecutionInfo(
            execution_id=child_execution.execution_id,
            object_name=invocation.object_name,
            method_name=invocation.method_name,
            parent_id=parent.execution_id,
            ancestor_ids=(parent.execution_id,) + parent.info.ancestor_ids,
            top_level_id=parent.info.top_level_id,
        )
        child = _Frame(info=info, execution=child_execution, parent=parent, attempt=parent.attempt)
        context = MethodContext(info.object_name, info.execution_id, info.method_name)
        child.generator = definition.body(context, *invocation.arguments)
        self._frames[info.execution_id] = child
        self._executions_by_transaction.setdefault(info.top_level_id, set()).add(info.execution_id)
        self.scheduler.on_invoke(parent.info, info)
        self.metrics.invocations += 1
        self._record(INVOKE, info.execution_id, invocation.object_name, invocation.method_name)
        return child

    # ------------------------------------------------------------------
    # advancing a frame by one request
    # ------------------------------------------------------------------

    def _advance(self, frame: _Frame) -> None:
        if frame.status != _READY:
            return
        if frame.pending_local is not None:
            self._resolve_local(frame, frame.pending_local)
            return
        try:
            if not self._is_generator(frame.generator):
                # A plain function body: its return value is immediate.
                self._complete_frame(frame, frame.generator)
                return
            request = frame.generator.send(frame.inbox)
        except StopIteration as stop:
            self._complete_frame(frame, stop.value)
            return
        except Exception as error:  # a bug in a transaction programme
            raise SimulationError(
                f"transaction programme {frame.info.method_name!r} raised {error!r}"
            ) from error
        frame.inbox = None
        self._handle_request(frame, request)

    @staticmethod
    def _is_generator(candidate: Any) -> bool:
        return hasattr(candidate, "send") and hasattr(candidate, "throw")

    def _handle_request(self, frame: _Frame, request: Any) -> None:
        if isinstance(request, LocalRequest):
            self._resolve_local(frame, request)
        elif isinstance(request, InvokeRequest):
            child = self._spawn_child(frame, request, after=None)
            frame.status = _WAITING
            frame.waiting_on = {child.execution_id}
            frame.parallel_order = []
        elif isinstance(request, ParallelRequest):
            existing_steps = list(frame.execution.step_ids())
            children = [
                self._spawn_child(frame, invocation, after=existing_steps)
                for invocation in request.invocations
            ]
            frame.status = _WAITING
            frame.waiting_on = {child.execution_id for child in children}
            frame.parallel_order = [child.execution_id for child in children]
            frame.parallel_results = {}
        else:
            raise SimulationError(
                f"method {frame.info.method_name!r} yielded an unknown request: {request!r}"
            )

    # -- local operations ---------------------------------------------------------

    def _resolve_local(self, frame: _Frame, request: LocalRequest) -> None:
        object_name = frame.info.object_name
        operation = request.operation
        state = self._states.get(object_name, ObjectState())
        provisional_value, _ = operation.apply(state)
        provisional_step = LocalStep(
            frame.execution_id, object_name, operation, provisional_value
        )
        operation_request = OperationRequest(
            info=frame.info,
            object_name=object_name,
            operation=operation,
            provisional_step=provisional_step,
        )
        response = self.scheduler.on_operation(operation_request)
        if response.blocked:
            frame.pending_local = request
            frame.blocked_attempts += 1
            self.metrics.blocked_ticks += 1
            self._record(BLOCKED, frame.execution_id, object_name, response.reason)
            if frame.blocked_attempts >= self.starvation_limit:
                self._abort_transaction(frame.info.top_level_id, "starvation: blocked too long")
            return
        if response.aborted:
            frame.pending_local = None
            self._abort_transaction(frame.info.top_level_id, response.reason)
            return

        # Granted: execute against the current state and record the step.
        frame.pending_local = None
        frame.blocked_attempts = 0
        value, new_state = operation.apply(self._states.get(object_name, ObjectState()))
        self._states[object_name] = new_state
        self._builder.local(frame.execution, operation, return_value=value)
        self._step_log.append(
            _StepLogEntry(frame.execution_id, frame.info.top_level_id, object_name, operation)
        )
        self.metrics.local_steps += 1
        self.scheduler.on_operation_executed(operation_request, value)
        self._record(GRANTED, frame.execution_id, object_name, operation.name)
        frame.inbox = value

    # -- completion -----------------------------------------------------------------

    def _complete_frame(self, frame: _Frame, return_value: Any) -> None:
        frame.status = _DONE
        if frame.parent is None:
            self._complete_top_level(frame, return_value)
            return
        self._builder.finish(frame.execution, return_value)
        self.scheduler.on_execution_complete(frame.info)
        self._record(COMPLETED, frame.execution_id, frame.info.object_name)
        self._deliver_to_parent(frame, return_value)
        self._frames.pop(frame.execution_id, None)

    def _deliver_to_parent(self, child: _Frame, return_value: Any) -> None:
        parent = child.parent
        if parent is None or parent.status != _WAITING:
            return
        parent.waiting_on.discard(child.execution_id)
        if parent.parallel_order:
            parent.parallel_results[child.execution_id] = return_value
            if not parent.waiting_on:
                parent.inbox = [
                    parent.parallel_results.get(child_id)
                    for child_id in parent.parallel_order
                ]
                parent.parallel_order = []
                parent.parallel_results = {}
                parent.status = _READY
        else:
            if not parent.waiting_on:
                parent.inbox = return_value
                parent.status = _READY

    def _complete_top_level(self, frame: _Frame, return_value: Any) -> None:
        response = self.scheduler.on_commit_request(frame.info)
        if not response.granted:
            self._abort_transaction(frame.info.top_level_id, response.reason or "commit vetoed")
            return
        self.scheduler.on_transaction_commit(frame.info)
        self.metrics.committed += 1
        self._committed.append(frame.execution_id)
        self._record(COMMITTED, frame.execution_id, detail=str(return_value))
        self._frames.pop(frame.execution_id, None)

    # -- aborts ----------------------------------------------------------------------

    @staticmethod
    def _abort_reason_category(reason: str) -> str:
        lowered = reason.lower()
        for keyword in ("deadlock", "timestamp", "validation", "inter-object", "intra-object", "starvation"):
            if keyword in lowered:
                return keyword
        return "other"

    def _abort_transaction(self, top_level_id: str, reason: str) -> None:
        top_frame = self._frames.get(top_level_id)
        subtree_frames = [
            frame
            for frame in self._frames.values()
            if frame.info.top_level_id == top_level_id
        ]
        # Every execution ever created for this attempt (including completed
        # children whose frames are already gone) belongs to the aborted
        # subtree; the paper's abort semantics require descendants to abort
        # with their ancestor.
        subtree_ids = set(self._executions_by_transaction.get(top_level_id, set()))
        subtree_ids.update(frame.execution_id for frame in subtree_frames)
        subtree_ids.add(top_level_id)

        self._aborted_executions.update(subtree_ids)
        self.metrics.aborted_attempts += 1
        self.metrics.aborts_by_reason[self._abort_reason_category(reason)] += 1
        wasted = sum(1 for entry in self._step_log if entry.execution_id in subtree_ids)
        self.metrics.wasted_steps += wasted
        self._record(ABORTED, top_level_id, detail=reason)

        info = top_frame.info if top_frame is not None else ExecutionInfo(
            execution_id=top_level_id,
            object_name=self.object_base.environment.name,
            method_name="",
            parent_id=None,
            ancestor_ids=(),
            top_level_id=top_level_id,
        )
        self.scheduler.on_transaction_abort(info, tuple(sorted(subtree_ids)))

        # Discard the attempt's frames and rebuild the object states from the
        # surviving (non-aborted) steps.
        for frame in subtree_frames:
            frame.status = _DONE
            self._frames.pop(frame.execution_id, None)
        self._rebuild_states()

        # Restart the transaction if its spec allows it.
        spec = top_frame.spec if top_frame is not None else None
        attempt = top_frame.attempt if top_frame is not None else 1
        if spec is not None and attempt <= self.max_restarts:
            self.metrics.restarts += 1
            self._start_transaction(spec, attempt=attempt + 1)
        else:
            self.metrics.gave_up += 1
            self._record(GAVE_UP, top_level_id, detail=reason)

    def _rebuild_states(self) -> None:
        states = dict(self.object_base.initial_states())
        for entry in self._step_log:
            if entry.execution_id in self._aborted_executions:
                continue
            state = states.get(entry.object_name, ObjectState())
            _, states[entry.object_name] = entry.operation.apply(state)
        self._states = states
