"""The simulation engine: interleaved execution of nested transactions.

The engine is the library's substitute for a real object-base management
system.  It executes a set of top-level transactions (methods of the
environment) written as generator programmes, interleaving them one local
step at a time under the control of a pluggable scheduler, and records the
run as a :class:`~repro.core.history.History` that the analysis layer can
certify against the paper's theory.

Execution model
---------------

* Every method execution in progress is a *frame* holding its generator,
  its :class:`~repro.scheduler.base.ExecutionInfo` and its pending request.
* Each *tick* the engine picks one runnable frame (uniformly at random
  under a seeded RNG, or round-robin) and resolves exactly one request for
  it: a local operation (consulting the scheduler and, when granted,
  executing it against the object states), a message send (creating a child
  frame), or the completion of the frame.
* The engine is **event-driven**: a frame whose operation is BLOCKed is
  *parked* — removed from the runnable set, keyed by the blocker
  identifiers the scheduler reports — and is re-awakened only when a
  wake-up fires for one of its blockers: the blocker commits, aborts, or
  transfers its locks (rule 5 inheritance).  A parked frame never
  re-issues its request in between, so the makespan and the blocking
  metrics measure contention, not polling.  A commit request may block
  too (optimistic schedulers wait for read-from dependencies); the frame
  then parks at its commit point.  Blocking with no identifiable live
  blocker falls back to retrying, which feeds the starvation valve.
* An ``ABORT`` decision aborts the whole top-level transaction: its frames
  are discarded, the affected object states are repaired by *incremental
  undo* — each touched object is rolled back to the snapshot taken before
  the transaction's first step on it and the surviving steps since are
  re-applied — and the transaction is resubmitted (up to ``max_restarts``
  times) as a fresh execution.  The cost is proportional to the aborted
  subtree's footprint, not the length of the whole run; the legacy
  full-replay strategy is kept (``undo="replay"``) for benchmarking, and
  ``check_undo=True`` runs both and verifies they agree after every abort.
* *When* an aborted transaction is resubmitted is decided by the
  scheduler's :class:`~repro.scheduler.restart.RestartPolicy`: a zero
  delay restarts within the same tick (the ``immediate`` policy — the
  classic storm-prone behaviour), a positive delay puts the restart on
  the engine's *event heap*, a min-heap keyed by due tick that also
  carries streamed arrivals.  Due events are released at the top of
  every scheduling iteration; a waiting restart consumes no ticks, and
  when nothing is runnable but an event is pending the engine
  fast-forwards the clock to the heap's next due tick instead of
  force-waking parked frames.  The transaction's *lineage* (its
  original submission index) is preserved across attempts so
  seniority-based policies (``ordered``) can privilege old
  transactions.

Hot loop
--------

Choosing the next runnable frame is O(1): the engine maintains a *ready
list* of ``(creation sequence, frame)`` pairs, updated at every status
transition (spawn, park, wake, wait, retire), that is always sorted by
frame-creation order — exactly the iteration order of the frame table
that the original per-tick scan observed, so decisions (and the RNG draw
sequence) are bit-identical to the scan implementation.  The scan
strategy is retained as ``hot_loop="scan"`` and serves as the oracle in
the bit-identity property tests and as the in-run reference point for
``benchmarks/bench_e16_hot_loop.py``'s machine-independent speedup
ratio.

The recorded history contains the steps of aborted attempts as well; the
:class:`~repro.simulation.metrics.RunResult` exposes the committed
projection, which is what serialisability certification operates on.
"""

from __future__ import annotations

import heapq
import itertools
import random
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import SimulationError
from ..core.history import HistoryBuilder
from ..core.operations import LocalOperation, LocalStep
from ..core.state import ObjectState, UndoLog
from ..objectbase.base import ObjectBase
from ..scheduler.base import ExecutionInfo, OperationRequest, Scheduler, SchedulerResponse
from ..scheduler.restart import ImmediateRestart, RestartPolicy
from .arrivals import ArrivalProcess, make_arrival_process
from .events import (
    ABORTED,
    BEGIN,
    BLOCKED,
    COMMITTED,
    COMPLETED,
    FAULT_INJECTED,
    GAVE_UP,
    GRANTED,
    INVOKE,
    RESTARTED,
    RESTART_SCHEDULED,
    WOKEN,
    Trace,
    TraceEvent,
)
from .faults import FaultPlan, make_fault_plan
from .metrics import RunMetrics, RunResult
from .transactions import (
    InvokeRequest,
    LocalRequest,
    MethodContext,
    ParallelRequest,
    TransactionSpec,
)

_READY = "ready"
_WAITING = "waiting"
_PARKED = "parked"
_DONE = "done"

# ObjectState is immutable, so one shared empty state serves every
# object the run never initialised (instead of allocating per lookup).
_EMPTY_STATE = ObjectState()

INCREMENTAL_UNDO = "incremental"
REPLAY_UNDO = "replay"

EVENT_LOOP = "event"
SCAN_LOOP = "scan"

#: ``certify="stream"`` — maintain the certification verdict online via
#: :class:`~repro.analysis.streaming.StreamingCertifier` (the only engine
#: certify mode; post-hoc certification stays in :mod:`repro.analysis`).
STREAM_CERTIFY = "stream"

# Unified event-heap kinds.  At an equal due tick restarts sort before
# arrivals — the release order the split queues had (due restarts were
# drained first each iteration, then due arrivals).
_EVENT_RESTART = 0
_EVENT_ARRIVAL = 1
_EVENT_FAULT = 2


@dataclass(slots=True)
class _Frame:
    """One method execution in progress."""

    info: ExecutionInfo
    execution: Any  # MethodExecution handle returned by the HistoryBuilder
    generator: Any = None
    status: str = _READY
    inbox: Any = None
    pending_local: LocalRequest | None = None
    blocked_attempts: int = 0
    parent: "_Frame | None" = None
    waiting_on: set[str] = field(default_factory=set)
    parallel_results: dict[str, Any] = field(default_factory=dict)
    parallel_order: list[str] = field(default_factory=list)
    spec: TransactionSpec | None = None
    attempt: int = 1
    parked_on: frozenset[str] = frozenset()
    parked_since: int = 0
    pending_commit: bool = False
    commit_value: Any = None
    #: Monotonic creation index; the ready list sorts on it, which keeps
    #: the candidate order identical to frame-table insertion order.
    seq: int = 0
    #: Whether ``generator`` is an actual generator (vs a plain return
    #: value) — detected once at creation, not re-probed per advance.
    is_generator: bool = False
    #: Set on children spawned on behalf of a *remote* shard: the message
    #: identifier whose result travels back to the requesting shard when
    #: this frame completes.  ``None`` on every frame of a plain run.
    shard_remote_id: str | None = None

    @property
    def execution_id(self) -> str:
        return self.info.execution_id


@dataclass(slots=True)
class _StepLogEntry:
    """A local step kept (only) for the full-replay undo strategy."""

    execution_id: str
    top_level_id: str
    object_name: str
    operation: LocalOperation


def _proxy_session_marker():  # pragma: no cover - never advanced
    """Placeholder body for remote-session roots (driven imperatively)."""


@dataclass(slots=True)
class _ShardRuntime:
    """Per-shard execution state when the engine runs as one shard of many.

    Bound by :meth:`SimulationEngine.bind_shard_runtime`; ``None`` on plain
    engines, so every shard-mode check on the hot paths is a single
    attribute test.  The shard driver (:mod:`repro.shard`) owns the message
    transport; the engine only fills ``outbox``/``notes`` and consumes
    directives between tick rounds.
    """

    index: int
    count: int
    #: ``owns(object_name) -> bool`` — does this shard hold the object?
    owns: Any
    #: ``classify(spec) -> bool`` — does the spec touch foreign objects?
    #: (Advisory: a missed classification is repaired at the first actual
    #: remote invoke; see :meth:`SimulationEngine._send_remote_invoke`.)
    classify: Any
    #: Optional conflict observer fed every executed step of cross-shard
    #: transactions (``note_step(info, step)``), for the inter-shard
    #: coordinator's precedence graph.
    tracker: Any = None
    #: Execution-id namespace (``"s<i>:"``); empty at ``count == 1`` so a
    #: single-shard run is bit-identical to the plain engine.
    id_prefix: str = ""
    txn_counter: Any = None
    remote_counter: Any = None
    #: Home-side: top-level ids known (or discovered) to be cross-shard.
    cross: set[str] = field(default_factory=set)
    #: Home-side: prepared root frames awaiting the global commit decision.
    held: dict[str, "_Frame"] = field(default_factory=dict)
    #: Owner-side: one *session* root per foreign transaction, carrying the
    #: foreign top-level id as its own execution id so the local scheduler
    #: sees a perfectly ordinary nested transaction.
    sessions: dict[str, "_Frame"] = field(default_factory=dict)
    #: remote message id -> local frame waiting on its result.
    waiters: dict[str, str] = field(default_factory=dict)
    #: Outgoing messages for the coordinator, drained at the tick barrier.
    outbox: list[tuple] = field(default_factory=list)
    #: Outgoing lifecycle notes (prepared / aborted / vote results).
    notes: list[tuple] = field(default_factory=list)


class SimulationEngine:
    """Interleaves transaction programmes under a concurrency-control scheduler.

    Engines are single-use: construct, :meth:`submit` (or
    :meth:`submit_all`) the transactions, then :meth:`run` exactly once.
    All randomness — the interleaving choice each tick, plus whatever the
    scheduler's restart policy draws (randomized backoff is re-seeded
    deterministically from the engine seed at construction) — comes from
    seeded RNGs, so a run is a pure function of ``(object_base, scheduler,
    submissions, seed, options)``; the scenario-sweep layer
    (:mod:`repro.sweep`) relies on this for its serial/parallel
    determinism guarantee.

    Args:
        object_base: the objects, their conflict specifications, and the
            environment's transaction methods.
        scheduler: the concurrency-control algorithm to consult (attached
            to ``object_base`` during construction).
        seed: RNG seed for the per-tick runnable-frame choice.
        scheduling: ``"random"`` (seeded uniform choice) or
            ``"round-robin"``.
        max_restarts: restart budget per transaction before it gives up.
        starvation_limit: consecutive blocked attempts of one frame before
            its transaction is aborted for starvation.
        max_ticks: hard cap on scheduling decisions (truncates runaway
            runs; parked waiters are accounted before the result is
            built).  A run cut off with streamed arrivals still queued
            raises :class:`SimulationError` instead of silently dropping
            the tail of the stream — raise the cap to fit the schedule.
        record_trace: record a :class:`~repro.simulation.events.Trace` of
            every event (costs memory; off by default).
        conflict_level_for_history: granularity of the conflict relation
            stored on the recorded history (``"step"`` or
            ``"operation"``).
        hot_loop: frame-choice strategy — ``"event"`` (the default: O(1)
            choice from the maintained ready list) or ``"scan"`` (the
            legacy per-tick scan over the frame table, kept as the
            bit-identity oracle and benchmark reference).  Both produce
            identical runs; they differ only in speed.
        undo: abort repair strategy — ``"incremental"`` (per-transaction
            undo segments) or ``"replay"`` (legacy full-history replay).
        check_undo: run both strategies after every abort and raise on
            divergence (testing aid).
        gc_interval: live-state garbage collection cadence, in finished
            transaction attempts (commits plus aborts) between passes.
            Each pass prunes the committed prefix of the undo log, asks
            the scheduler to collect state nothing live can depend on
            (:meth:`~repro.scheduler.base.Scheduler.collect_garbage`) and
            samples the live-state gauge, so long streaming runs retain
            state proportional to the in-flight population, not to the
            total arrival count.

    Raises:
        SimulationError: on an unknown ``scheduling``, ``undo`` or
            ``hot_loop`` value, or a non-positive ``gc_interval``.
    """

    def __init__(
        self,
        object_base: ObjectBase,
        scheduler: Scheduler,
        *,
        seed: int = 0,
        scheduling: str = "random",
        max_restarts: int = 25,
        starvation_limit: int = 2000,
        max_ticks: int = 2_000_000,
        record_trace: bool = False,
        conflict_level_for_history: str = "step",
        undo: str = INCREMENTAL_UNDO,
        check_undo: bool = False,
        gc_interval: int = 64,
        hot_loop: str = EVENT_LOOP,
        certify: bool | str = False,
        fault_plan: "FaultPlan | str | dict | None" = None,
    ):
        if scheduling not in ("random", "round-robin"):
            raise SimulationError(f"unknown scheduling policy {scheduling!r}")
        if undo not in (INCREMENTAL_UNDO, REPLAY_UNDO):
            raise SimulationError(f"unknown undo strategy {undo!r}")
        if hot_loop not in (EVENT_LOOP, SCAN_LOOP):
            raise SimulationError(f"unknown hot_loop strategy {hot_loop!r}")
        if gc_interval < 1:
            raise SimulationError(f"gc_interval must be >= 1, got {gc_interval}")
        if certify not in (False, STREAM_CERTIFY):
            raise SimulationError(
                f"unknown certify mode {certify!r}; the engine only certifies online "
                f"(certify={STREAM_CERTIFY!r}) — for post-hoc certification run "
                "repro.analysis.certify_run on the RunResult"
            )
        self.object_base = object_base
        self.scheduler = scheduler
        self.seed = seed
        self.rng = random.Random(seed)
        self.scheduling = scheduling
        self.max_restarts = max_restarts
        self.starvation_limit = starvation_limit
        self.max_ticks = max_ticks
        self.record_trace = record_trace
        self.undo = undo
        self.check_undo = check_undo
        self.hot_loop = hot_loop
        self._trace = Trace() if record_trace else None

        self._builder = HistoryBuilder(
            initial_states=object_base.initial_states(),
            conflicts=object_base.conflicts(conflict_level_for_history),
        )
        self.certify = certify
        self._certifier = None
        if certify == STREAM_CERTIFY:
            # Deferred import: repro.analysis pulls in simulation.metrics,
            # which must not re-enter this module's import.
            from ..analysis.streaming import StreamingCertifier

            self._certifier = StreamingCertifier(
                conflicts=self._builder.conflicts,
                initial_states=object_base.initial_states(),
            )
        self._states: dict[str, ObjectState] = dict(object_base.initial_states())
        self._frames: dict[str, _Frame] = {}
        self._executions_by_transaction: dict[str, set[str]] = {}
        self._round_robin_cursor = 0
        # The ready list: (frame.seq, frame) pairs sorted by creation
        # sequence — the same order a scan over the insertion-ordered frame
        # table produces, so the O(1) chooser sees the identical candidate
        # sequence.  Maintained by _set_ready/_set_not_ready at every
        # status transition.
        self._frame_sequence = itertools.count()
        self._ready: list[tuple[int, _Frame]] = []
        self._parked_count = 0
        self._undo_log = UndoLog()
        # The append-only global step log is only needed when the full-replay
        # strategy (or its equivalence check) is active.
        self._full_log: list[_StepLogEntry] | None = (
            [] if undo == REPLAY_UNDO or check_undo else None
        )
        self._aborted_executions: set[str] = set()
        self._committed: list[str] = []
        self._pending_specs: list[TransactionSpec] = []
        # Parked-frame reverse index: blocker key -> ids of frames parked on it.
        self._parked_by_key: dict[str, set[str]] = {}
        # Unified event heap: (due tick, kind, sequence, payload) covering
        # delayed restarts (payload = (spec, attempt, lineage)) and streamed
        # arrivals (payload = spec).  The kind keeps restarts ahead of
        # arrivals at an equal due tick and the per-kind sequence keeps
        # equal keys FIFO — both matching the order the split queues had.
        self._events: list[tuple[int, int, int, Any]] = []
        self._restart_sequence = itertools.count()
        self._arrival_sequence = itertools.count()
        self._fault_sequence = itertools.count()
        # Fault injection: explicit crash ticks enter the heap up front,
        # periodic crashes re-arm themselves at each firing (see
        # _inject_fault) for as long as work remains.
        self._fault_plan: FaultPlan | None = (
            make_fault_plan(fault_plan) if fault_plan is not None else None
        )
        if self._fault_plan is not None:
            self._fault_plan.bind(seed)
            for due in self._fault_plan.initial_ticks():
                heapq.heappush(
                    self._events, (due, _EVENT_FAULT, next(self._fault_sequence), None)
                )
            first_periodic = self._fault_plan.next_after(0)
            if first_periodic is not None:
                heapq.heappush(
                    self._events,
                    (first_periodic, _EVENT_FAULT, next(self._fault_sequence), None),
                )
        self._last_arrival_tick = 0
        # Lineage = original submission index, preserved across restarts so
        # the restart policy can reason about transaction seniority.
        self._lineage_counter = itertools.count()
        self._lineage_of: dict[str, int] = {}
        self._arrival_process: ArrivalProcess | None = None
        # Arrival tick per lineage, for the arrival -> commit latency.
        self._arrival_tick_of: dict[int, int] = {}
        self._in_flight = 0
        self.gc_interval = gc_interval
        self._finished_since_gc = 0
        self.metrics = RunMetrics()
        self._tick = 0
        self._finished = False
        # Sharded execution state; None on plain engines (the hot paths
        # test this single attribute).  Bound via bind_shard_runtime.
        self._shard: _ShardRuntime | None = None

        self.scheduler.attach(object_base)
        # The scheduler transports the restart policy as configuration; the
        # engine drives it (and seeds its randomness deterministically).
        self.restart_policy: RestartPolicy = (
            getattr(scheduler, "restart_policy", None) or ImmediateRestart()
        )
        self.restart_policy.bind(seed)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, spec: TransactionSpec | str, *arguments: Any) -> None:
        """Queue a top-level transaction for execution.

        Accepts either a :class:`TransactionSpec` or a method name plus
        arguments for convenience.

        Args:
            spec: the transaction to run, or the name of a transaction
                method registered on the environment.
            *arguments: positional arguments when ``spec`` is a name.

        Raises:
            SimulationError: when arguments accompany a full spec, or the
                named method does not exist on the environment.
        """
        if isinstance(spec, str):
            spec = TransactionSpec(spec, tuple(arguments))
        elif arguments:
            raise SimulationError("pass arguments inside the TransactionSpec")
        self.object_base.environment.method(spec.method_name)  # validate early
        self._pending_specs.append(spec)
        self.metrics.submitted += 1

    def submit_all(self, specs) -> None:
        """Queue every :class:`TransactionSpec` in ``specs``, in order."""
        for spec in specs:
            self.submit(spec)

    def submit_stream(self, specs, arrival: "ArrivalProcess | str | dict" = "poisson") -> None:
        """Queue transactions as an *open* arrival stream.

        Instead of entering the system at tick 0 like :meth:`submit_all`
        batches, each transaction is assigned a deterministic arrival tick
        by the arrival process and is released into the running engine as
        the simulated clock crosses it.  The run then reports open-system
        metrics: per-transaction latency (arrival to commit), the
        in-flight population and its peak, and the live-state gauge.

        Args:
            specs: the :class:`TransactionSpec` sequence, in arrival order.
            arrival: an :class:`~repro.simulation.arrivals.ArrivalProcess`,
                a registry name (``"poisson"``, ``"bursty"``), or a
                ``{"name": ..., **kwargs}`` mapping.  The process is bound
                to (re-seeded from) the engine seed, so the schedule is a
                pure function of the configuration.

        Raises:
            SimulationError: when the engine already ran, or a spec names
                an unknown transaction method.
        """
        if self._finished:
            raise SimulationError("engine instances are single-use; create a new one")
        process = make_arrival_process(arrival)
        process.bind(self.seed)
        self._arrival_process = process
        specs = [
            spec if isinstance(spec, TransactionSpec) else TransactionSpec(spec, ())
            for spec in specs
        ]
        for spec in specs:
            self.object_base.environment.method(spec.method_name)  # validate early
        # Successive streams are concatenated in time: the new schedule is
        # offset by the latest arrival tick queued so far.
        start = self._last_arrival_tick
        for tick, spec in zip(process.schedule(len(specs)), specs):
            due = start + tick
            self._last_arrival_tick = due
            heapq.heappush(
                self._events, (due, _EVENT_ARRIVAL, next(self._arrival_sequence), spec)
            )

    def submit_scheduled(self, pairs) -> None:
        """Queue ``(arrival_tick, spec)`` pairs with pre-computed due ticks.

        The sharded driver computes one global arrival schedule and splits
        it by home shard; each shard's engine receives its slice with the
        *absolute* ticks, so the merged run observes the same schedule the
        plain engine would have drawn.  Ticks must be non-decreasing in
        ``pairs`` order (the order the shared schedule was drawn in).

        Raises:
            SimulationError: when the engine already ran, or a spec names
                an unknown transaction method.
        """
        if self._finished:
            raise SimulationError("engine instances are single-use; create a new one")
        for due, spec in pairs:
            self.object_base.environment.method(spec.method_name)  # validate early
            if due > self._last_arrival_tick:
                self._last_arrival_tick = due
            heapq.heappush(
                self._events, (due, _EVENT_ARRIVAL, next(self._arrival_sequence), spec)
            )

    def run_stream(
        self, specs, arrival: "ArrivalProcess | str | dict" = "poisson"
    ) -> RunResult:
        """Convenience: :meth:`submit_stream` then :meth:`run`."""
        self.submit_stream(specs, arrival)
        return self.run()

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute every submitted transaction to commit (or give-up).

        Returns:
            The :class:`~repro.simulation.metrics.RunResult` with the full
            recorded history (aborted attempts included), the metrics, the
            committed transaction order and, when requested, the trace.

        Raises:
            SimulationError: when called twice (engines are single-use) or
                when a transaction programme itself raises.
        """
        if self._finished:
            raise SimulationError("engine instances are single-use; create a new one")
        for spec in self._pending_specs:
            self._admit(spec)
        self._pending_specs = []

        if self.hot_loop == SCAN_LOOP:
            self._run_scan_loop()
        else:
            self._run_event_loop()
        return self._finalise_run()

    def _finalise_run(self) -> RunResult:
        """Close the run and build its result (shared with shard finalize)."""
        self.metrics.total_ticks = self._tick
        self._check_arrival_truncation()

        # A run cut off at max_ticks may leave frames parked; account their
        # wait so the contention metrics do not understate truncated runs.
        for frame in self._frames.values():
            if frame.status == _PARKED:
                self._clear_parking(frame)

        # Final garbage-collection pass: with every transaction resolved
        # the schedulers should retain (nearly) nothing, which the closing
        # gauge sample records.
        self._collect_garbage()
        self._finished = True
        history = self._builder.build()
        return RunResult(
            history=history,
            metrics=self.metrics,
            scheduler_description=self.scheduler.describe(),
            aborted_execution_ids=frozenset(self._aborted_executions),
            committed_transaction_ids=tuple(self._committed),
            streaming_report=(
                self._certifier.finalise() if self._certifier is not None else None
            ),
            trace=self._trace,
            arrival_description=(
                self._arrival_process.describe()
                if self._arrival_process is not None
                else None
            ),
        )

    def _run_event_loop(self) -> None:
        """The default hot loop: O(1) frame choice, single event heap.

        Per decision this touches the ready list tail (or one RNG draw),
        the heap head and the frame generator — no per-tick scans and no
        per-tick allocations.  Hot attributes are bound to locals once;
        decisions are accumulated locally and flushed to the metrics when
        the loop exits.
        """
        frames = self._frames
        events = self._events
        ready = self._ready
        metrics = self.metrics
        heappop = heapq.heappop
        rng_choice = self.rng.choice
        random_scheduling = self.scheduling == "random"
        max_ticks = self.max_ticks
        decisions = 0
        try:
            while (frames or events) and self._tick < max_ticks:
                tick = self._tick
                while events and events[0][0] <= tick:
                    due, kind, _, payload = heappop(events)
                    if kind == _EVENT_RESTART:
                        spec, attempt, lineage = payload
                        metrics.restarts += 1
                        self._start_transaction(spec, attempt=attempt, lineage=lineage)
                    elif kind == _EVENT_FAULT:
                        self._inject_fault(due)
                    else:
                        metrics.submitted += 1
                        metrics.arrived += 1
                        self._admit(payload, arrival_tick=due)
                if ready:
                    if random_scheduling:
                        frame = rng_choice(ready)[1]
                    else:
                        index = self._round_robin_cursor % len(ready)
                        self._round_robin_cursor = index + 1
                        frame = ready[index][1]
                    self._tick = tick + 1
                    decisions += 1
                    self._advance(frame)
                    continue
                if events:
                    # Nothing is runnable until the next event matures:
                    # fast-forward the clock to its due tick (the wait
                    # costs time, not scheduling decisions), clamped to
                    # the tick budget so a truncated run never reports a
                    # makespan beyond max_ticks.
                    self._tick = min(events[0][0], max_ticks)
                    continue
                # No runnable frame and no pending event.  If frames are
                # parked, a wake-up was missed (a scheduler bug) or the
                # wait cannot resolve; force a retry round rather than
                # dropping the transactions.
                if not self._force_wake_all():
                    break
        finally:
            metrics.decisions += decisions

    def _run_scan_loop(self) -> None:
        """The legacy hot loop: a frame scan per tick (``hot_loop="scan"``).

        Kept as the bit-identity oracle for the ready list and as the
        in-run reference the E16 benchmark measures its speedup against.
        Event release and fast-forward share the unified heap.
        """
        while (self._frames or self._events) and self._tick < self.max_ticks:
            self._release_due_events()
            frame = self._choose_frame_scan()
            if frame is None:
                if self._events:
                    self._tick = min(self._events[0][0], self.max_ticks)
                    continue
                if not self._force_wake_all():
                    break
                continue
            self._tick += 1
            self.metrics.decisions += 1
            self._advance(frame)

    def _release_due_events(self) -> None:
        """Release every queued restart/arrival whose due tick was reached."""
        events = self._events
        tick = self._tick
        while events and events[0][0] <= tick:
            due, kind, _, payload = heapq.heappop(events)
            if kind == _EVENT_RESTART:
                spec, attempt, lineage = payload
                self.metrics.restarts += 1
                self._start_transaction(spec, attempt=attempt, lineage=lineage)
            elif kind == _EVENT_FAULT:
                self._inject_fault(due)
            else:
                self.metrics.submitted += 1
                self.metrics.arrived += 1
                self._admit(payload, arrival_tick=due)

    # ------------------------------------------------------------------
    # sharded execution (driven by repro.shard)
    # ------------------------------------------------------------------
    #
    # A sharded run partitions the object space across engines, one full
    # engine (+ scheduler) per shard.  Shards advance in lock-step *tick
    # rounds*: each round the driver applies the coordinator's directives
    # (remote admissions, results, votes, global commit/abort decisions),
    # runs the event loop up to a common horizon, then drains the shard's
    # outbox/notes for the coordinator.  All cross-shard interaction
    # happens at these barriers, so a sharded run is a pure function of
    # (spec, shard map, seed) regardless of transport — in-process and
    # multiprocess execution are bit-identical.
    #
    # Cross-shard transactions follow the paper's modular recipe one level
    # up: on its home shard the transaction runs normally until commit,
    # which is *held* for a two-phase decision; on every other shard its
    # remote invokes run under a local *session* root that carries the
    # foreign top-level id, so the owner's scheduler synchronises it like
    # any ordinary nested transaction (locks, timestamps and commit gates
    # all key by that id), and the session's locks are retained until the
    # coordinator's global decision.

    def bind_shard_runtime(
        self,
        *,
        index: int,
        count: int,
        owns,
        classify,
        tracker=None,
    ) -> None:
        """Run this engine as shard ``index`` of ``count``.

        Must be called before any work ran.  ``owns(object_name)`` says
        whether this shard holds the object; ``classify(spec)`` whether a
        submitted transaction may touch foreign objects (advisory — a
        missed classification is repaired at the first actual remote
        invoke); ``tracker`` optionally observes every executed step of
        cross-shard transactions for the coordinator's precedence graph.

        Raises:
            SimulationError: when the engine already ran, uses the scan
                loop, or certifies online (per-shard certification happens
                post-hoc in the shard worker instead).
        """
        if self._finished or self._tick or self._frames:
            raise SimulationError("bind_shard_runtime must precede the run")
        if self.hot_loop != EVENT_LOOP:
            raise SimulationError("sharded execution requires hot_loop='event'")
        if self._certifier is not None:
            raise SimulationError(
                "sharded engines cannot certify online; certify each shard's "
                "RunResult post-hoc in the shard worker instead"
            )
        self._shard = _ShardRuntime(
            index=index,
            count=count,
            owns=owns,
            classify=classify,
            tracker=tracker,
            id_prefix=f"s{index}:" if count > 1 else "",
            txn_counter=itertools.count(1),
            remote_counter=itertools.count(1),
        )

    def begin_shard_run(self) -> None:
        """Admit the pending closed-batch submissions (mirrors :meth:`run`)."""
        if self._finished:
            raise SimulationError("engine instances are single-use; create a new one")
        for spec in self._pending_specs:
            self._admit(spec)
        self._pending_specs = []

    def run_shard_round(self, horizon: int) -> int:
        """Advance the event loop until ``horizon`` (or a cross-shard stall).

        The body mirrors :meth:`_run_event_loop` with the tick budget
        clamped to the round horizon, plus one extra stall rule: when
        nothing is runnable, no event is pending and the shard is waiting
        on cross-shard state (remote results, held commits, open
        sessions), the round ends — resolution arrives as directives at a
        later barrier.  Idle gaps within the round fast-forward exactly as
        in a plain run, so a single-shard round sequence reproduces the
        plain engine's clock bit for bit.

        Returns:
            The number of scheduling decisions made this round.
        """
        shard = self._shard
        frames = self._frames
        events = self._events
        ready = self._ready
        metrics = self.metrics
        heappop = heapq.heappop
        rng_choice = self.rng.choice
        random_scheduling = self.scheduling == "random"
        horizon = min(horizon, self.max_ticks)
        decisions = 0
        try:
            while (frames or events) and self._tick < horizon:
                tick = self._tick
                while events and events[0][0] <= tick:
                    due, kind, _, payload = heappop(events)
                    if kind == _EVENT_RESTART:
                        spec, attempt, lineage = payload
                        metrics.restarts += 1
                        self._start_transaction(spec, attempt=attempt, lineage=lineage)
                    elif kind == _EVENT_FAULT:
                        self._inject_fault(due)
                    else:
                        metrics.submitted += 1
                        metrics.arrived += 1
                        self._admit(payload, arrival_tick=due)
                if ready:
                    if random_scheduling:
                        frame = rng_choice(ready)[1]
                    else:
                        index = self._round_robin_cursor % len(ready)
                        self._round_robin_cursor = index + 1
                        frame = ready[index][1]
                    self._tick = tick + 1
                    decisions += 1
                    self._advance(frame)
                    continue
                if events:
                    due = events[0][0]
                    if due >= horizon:
                        self._tick = horizon
                        break
                    self._tick = due
                    continue
                if shard.waiters or shard.held or shard.sessions:
                    # Blocked on the barrier: a directive (remote result,
                    # global decision) must arrive before progress resumes.
                    break
                if not self._force_wake_all():
                    break
        finally:
            metrics.decisions += decisions
        return decisions

    def apply_shard_directives(self, directives) -> None:
        """Apply one round's coordinator directives, in order.

        Directive tuples: ``("invoke", remote_id, gid, object, method,
        args)`` admits a remote invocation; ``("result", remote_id,
        value)`` delivers a remote result; ``("vote", gid)`` asks the local
        scheduler's commit vote (answered via a ``("vote", gid, verdict,
        reason)`` note); ``("commit", gid)`` / ``("abort", gid, reason)``
        apply the coordinator's global decision.
        """
        for directive in directives:
            kind = directive[0]
            if kind == "invoke":
                _, remote_id, gid, object_name, method_name, arguments = directive
                self.admit_remote(gid, remote_id, object_name, method_name, arguments)
            elif kind == "result":
                self.deliver_remote_result(directive[1], directive[2])
            elif kind == "vote":
                gid = directive[1]
                verdict, reason = self.commit_vote(gid)
                self._shard.notes.append(("vote", gid, verdict, reason))
            elif kind == "commit":
                self.apply_global_commit(directive[1])
            elif kind == "abort":
                self.apply_global_abort(directive[1], directive[2])
            else:
                raise SimulationError(f"unknown shard directive {directive!r}")

    def drain_shard_outbox(self) -> list[tuple]:
        """The messages queued since the last barrier (clears the outbox)."""
        shard = self._shard
        messages, shard.outbox = shard.outbox, []
        return messages

    def drain_shard_notes(self) -> list[tuple]:
        """The lifecycle notes queued since the last barrier (clears them)."""
        shard = self._shard
        notes, shard.notes = shard.notes, []
        return notes

    def shard_pending(self) -> bool:
        """Whether this shard still holds live work or barrier state."""
        shard = self._shard
        return bool(self._frames or self._events or shard.waiters or shard.held)

    def finalize_shard(self) -> RunResult:
        """Close the shard's run once the driver declares the fleet done."""
        return self._finalise_run()

    def _send_remote_invoke(self, frame: _Frame, invocation: InvokeRequest) -> str:
        """Queue a foreign-object invocation for the owning shard."""
        shard = self._shard
        gid = frame.info.top_level_id
        # Safety net for imprecise classifiers: the id is cross-shard from
        # the first remote invoke on, whatever classify() said at submit.
        shard.cross.add(gid)
        remote_id = f"{gid}/r{next(shard.remote_counter)}"
        shard.waiters[remote_id] = frame.execution_id
        shard.outbox.append(
            (
                "invoke",
                remote_id,
                gid,
                invocation.object_name,
                invocation.method_name,
                invocation.arguments,
            )
        )
        self.metrics.remote_invocations += 1
        self._record(
            INVOKE, remote_id, invocation.object_name, invocation.method_name
        )
        return remote_id

    def _spawn_mixed_parallel(self, frame: _Frame, request: ParallelRequest) -> None:
        """A parallel request whose branches span shards."""
        shard = self._shard
        existing_steps = list(frame.execution.step_ids())
        waiting: set[str] = set()
        order: list[str] = []
        for invocation in request.invocations:
            if shard.owns(invocation.object_name):
                child = self._spawn_child(frame, invocation, after=existing_steps)
                waiting.add(child.execution_id)
                order.append(child.execution_id)
            else:
                remote_id = self._send_remote_invoke(frame, invocation)
                waiting.add(remote_id)
                order.append(remote_id)
        self._set_not_ready(frame, _WAITING)
        frame.waiting_on = waiting
        frame.parallel_order = order
        frame.parallel_results = {}

    def deliver_remote_result(self, remote_id: str, value: Any) -> None:
        """A remote invocation's result arrived (stale ids are dropped)."""
        shard = self._shard
        frame_id = shard.waiters.pop(remote_id, None)
        if frame_id is None:
            return
        frame = self._frames.get(frame_id)
        if frame is None or frame.status != _WAITING or remote_id not in frame.waiting_on:
            return
        frame.waiting_on.discard(remote_id)
        if frame.parallel_order:
            frame.parallel_results[remote_id] = value
            if not frame.waiting_on:
                frame.inbox = [
                    frame.parallel_results.get(child_id)
                    for child_id in frame.parallel_order
                ]
                frame.parallel_order = []
                frame.parallel_results = {}
                self._set_ready(frame)
        elif not frame.waiting_on:
            frame.inbox = value
            self._set_ready(frame)

    def admit_remote(
        self,
        gid: str,
        remote_id: str,
        object_name: str,
        method_name: str,
        arguments: tuple,
    ) -> None:
        """Run a foreign transaction's invocation under a local session root.

        The first invocation for ``gid`` opens the session: an inert
        top-level frame whose execution id *is* the foreign id, so to the
        local scheduler the remote work is an ordinary nested transaction
        (begin, lock inheritance, commit gate and garbage collection all
        key by ``gid`` exactly as on the home shard).  Each invocation is
        spawned as a child of that root; the root itself never becomes
        runnable and is resolved only by the coordinator's global decision.
        """
        shard = self._shard
        if gid in self._aborted_executions:
            return  # raced with a local abort; the coordinator re-relays
        session = shard.sessions.get(gid)
        if session is None:
            execution = self._builder.begin_top_level(
                "remote-session", execution_id=gid
            )
            info = ExecutionInfo(
                execution_id=gid,
                object_name=self.object_base.environment.name,
                method_name="remote-session",
                parent_id=None,
                ancestor_ids=(),
                top_level_id=gid,
            )
            session = _Frame(
                info=info,
                execution=execution,
                generator=_proxy_session_marker,
                status=_WAITING,
                seq=next(self._frame_sequence),
            )
            self._frames[gid] = session
            self._executions_by_transaction[gid] = {gid}
            shard.sessions[gid] = session
            self.scheduler.on_transaction_begin(info)
            self._record(BEGIN, gid, detail="remote session")
        child = self._spawn_child(
            session,
            InvokeRequest(object_name, method_name, tuple(arguments)),
            after=None,
        )
        child.shard_remote_id = remote_id
        session.waiting_on.add(child.execution_id)

    def _hold_commit(self, frame: _Frame, return_value: Any) -> None:
        """Park a prepared cross-shard root until the global decision."""
        shard = self._shard
        self._set_not_ready(frame, _WAITING)
        frame.pending_commit = True
        frame.commit_value = return_value
        shard.held[frame.execution_id] = frame
        shard.notes.append(("prepared", frame.execution_id))
        self._record(
            BLOCKED, frame.execution_id, detail="prepared: awaiting global commit"
        )

    def commit_vote(self, gid: str) -> tuple[str, str]:
        """This shard's two-phase vote on ``gid``: commit, defer or abort."""
        shard = self._shard
        frame = shard.held.get(gid) or shard.sessions.get(gid)
        if frame is None:
            return ("abort", "transaction unknown on this shard")
        response = self.scheduler.on_commit_request(frame.info)
        if response.blocked:
            return ("defer", response.reason or "commit deferred")
        if not response.granted:
            return ("abort", response.reason or "commit vetoed")
        return ("commit", "")

    def apply_global_commit(self, gid: str) -> None:
        """The coordinator decided commit: finalise the local share."""
        shard = self._shard
        frame = shard.held.pop(gid, None)
        if frame is not None:
            shard.cross.discard(gid)
            self._finalise_commit(frame, frame.commit_value)
            return
        session = shard.sessions.pop(gid, None)
        if session is not None:
            self._finalise_session_commit(session)

    def apply_global_abort(self, gid: str, reason: str) -> None:
        """The coordinator decided abort: discard the local share."""
        shard = self._shard
        if gid in shard.sessions:
            self._abort_remote(gid, reason)
            return
        shard.held.pop(gid, None)
        if gid in self._frames or gid in self._executions_by_transaction:
            # Home shard: the standard abort path applies (restart policy
            # included) and re-notes the abort, which the coordinator
            # ignores for an already-resolved id.
            self._abort_transaction(gid, reason)

    def _finalise_session_commit(self, session: _Frame) -> None:
        """Commit a foreign transaction's local session (owner side).

        Mirrors :meth:`_finalise_commit` minus home-only accounting: the
        commit count, latency and restart-policy bookkeeping belong to the
        home shard; here the session's locks are released, its undo
        segments dropped and its committed executions recorded.
        """
        gid = session.execution_id
        self.scheduler.on_transaction_commit(session.info)
        self._committed.append(gid)
        self._record(COMMITTED, gid, detail="remote session")
        self._set_not_ready(session, _DONE)
        self._frames.pop(gid, None)
        self._undo_log.forget_transaction(gid)
        subtree = self._executions_by_transaction.pop(gid, set())
        self._drain_wakeups({gid, *subtree})
        self._note_finished_attempt()

    def _abort_remote(self, gid: str, reason: str) -> None:
        """Abort a foreign transaction's local session (owner side).

        Mirrors :meth:`_abort_transaction` minus home-only accounting (no
        restart, no give-up, no in-flight or aborted-attempt counts — the
        home shard owns those); wasted local steps are still counted here
        because the work physically ran on this shard.
        """
        shard = self._shard
        session = shard.sessions.pop(gid, None)
        if session is None:
            return
        subtree_ids = set(self._executions_by_transaction.get(gid, ()))
        subtree_ids.add(gid)
        frames = self._frames
        subtree_frames = [
            frames[execution_id]
            for execution_id in subtree_ids
            if execution_id in frames
        ]
        self._aborted_executions.update(subtree_ids)
        self._record(ABORTED, gid, detail=reason)
        self.scheduler.on_transaction_abort(session.info, tuple(sorted(subtree_ids)))
        for frame in subtree_frames:
            if frame.status == _PARKED:
                self._clear_parking(frame)
            self._set_not_ready(frame, _DONE)
            self._frames.pop(frame.execution_id, None)
        for remote_id in [
            remote_id
            for remote_id, frame_id in shard.waiters.items()
            if frame_id in subtree_ids
        ]:
            del shard.waiters[remote_id]
        self.metrics.wasted_steps += self._undo_states(gid, subtree_ids)
        self._drain_wakeups(subtree_ids)
        self._executions_by_transaction.pop(gid, None)
        shard.notes.append(("aborted", gid, reason))
        self._note_finished_attempt()

    def _check_arrival_truncation(self) -> None:
        """Refuse to end a run that silently dropped queued arrivals.

        The tick cap can cut a streamed run short while arrivals are still
        queued on the event heap; every metric downstream (commit rate,
        throughput, the bounded-memory gauge) would then describe a shorter
        stream than the one requested.  Restart events may be truncated
        silently — the transaction already arrived and its attempts are
        accounted — but an undelivered *arrival* means the workload itself
        was cut, which is an error, not a result.
        """
        if self._tick < self.max_ticks:
            return
        undelivered = sum(1 for event in self._events if event[1] == _EVENT_ARRIVAL)
        if undelivered:
            raise SimulationError(
                f"run truncated at max_ticks={self.max_ticks} with {undelivered} "
                "streamed arrival(s) still undelivered; raise max_ticks to cover "
                "the arrival schedule (the last arrival is due at tick "
                f"{max(event[0] for event in self._events if event[1] == _EVENT_ARRIVAL)})"
            )

    def _next_event_tick(self) -> int | None:
        """The earliest tick a queued restart or arrival becomes due, if any."""
        return self._events[0][0] if self._events else None

    def _admit(self, spec: TransactionSpec, arrival_tick: int = 0) -> None:
        """A new lineage enters the system (first attempt)."""
        lineage = next(self._lineage_counter)
        self._arrival_tick_of[lineage] = arrival_tick
        self._in_flight += 1
        if self._in_flight > self.metrics.in_flight_peak:
            self.metrics.in_flight_peak = self._in_flight
        self._start_transaction(spec, attempt=1, lineage=lineage)

    def _choose_frame_scan(self) -> _Frame | None:
        """The legacy chooser: scan the frame table for ready frames.

        The candidate list is in frame-table insertion order == creation
        order, which is what the maintained ready list reproduces.
        """
        candidates = [
            frame for frame in self._frames.values() if frame.status == _READY
        ]
        if not candidates:
            return None
        if self.scheduling == "random":
            return self.rng.choice(candidates)
        index = self._round_robin_cursor % len(candidates)
        self._round_robin_cursor = index + 1
        return candidates[index]

    # ------------------------------------------------------------------
    # the ready list
    # ------------------------------------------------------------------

    def _ready_add(self, frame: _Frame) -> None:
        """Insert a ready frame, keeping the list sorted by creation seq.

        Frames usually become ready in creation order, so the common case
        is an O(1) append; a wake of an old frame pays one bisect insert.
        """
        entry = (frame.seq, frame)
        ready = self._ready
        if not ready or frame.seq > ready[-1][0]:
            ready.append(entry)
        else:
            insort(ready, entry)

    def _ready_remove(self, frame: _Frame) -> None:
        ready = self._ready
        # (seq,) sorts immediately before (seq, frame), so bisect_left
        # lands on the entry itself; seqs are unique so the frame halves
        # of the pairs are never compared.
        index = bisect_left(ready, (frame.seq,))
        if index < len(ready) and ready[index][0] == frame.seq:
            del ready[index]

    def _set_ready(self, frame: _Frame) -> None:
        if frame.status != _READY:
            frame.status = _READY
            self._ready_add(frame)

    def _set_not_ready(self, frame: _Frame, status: str) -> None:
        if frame.status == _READY:
            self._ready_remove(frame)
        frame.status = status

    # ------------------------------------------------------------------
    # parking and wake-ups
    # ------------------------------------------------------------------

    def _live_blocker_keys(self, blockers: frozenset[str]) -> frozenset[str]:
        """The blocker identifiers that refer to live executions/transactions.

        A frame may only park on keys a future wake-up can fire for; dead or
        unknown identifiers are dropped (and a frame with none left falls
        back to retrying).
        """
        if not blockers:
            return frozenset()
        frames = self._frames
        # Live top-level ids == keys of the execution index: an entry is
        # created when the top frame starts and dropped in the same call
        # that retires it (commit or abort), so no set rebuild is needed.
        live_transactions = self._executions_by_transaction
        return frozenset(
            key for key in blockers if key in frames or key in live_transactions
        )

    def _park(self, frame: _Frame, blockers: frozenset[str], *, commit: bool) -> bool:
        """Park the frame on its blockers; False when no live key exists."""
        keys = self._live_blocker_keys(blockers)
        if not keys:
            return False
        self._set_not_ready(frame, _PARKED)
        self._parked_count += 1
        frame.parked_on = keys
        frame.parked_since = self._tick
        for key in keys:
            self._parked_by_key.setdefault(key, set()).add(frame.execution_id)
        self.metrics.parks += 1
        if commit:
            self.metrics.commit_parks += 1
        return True

    def _clear_parking(self, frame: _Frame) -> None:
        """Remove the frame from the park index and account its wait time."""
        self._parked_count -= 1
        for key in frame.parked_on:
            waiters = self._parked_by_key.get(key)
            if waiters is not None:
                waiters.discard(frame.execution_id)
                if not waiters:
                    del self._parked_by_key[key]
        elapsed = self._tick - frame.parked_since
        self.metrics.wait_ticks += elapsed
        if frame.pending_commit:
            self.metrics.commit_wait_ticks += elapsed
        else:
            self.metrics.blocked_ticks += elapsed
        frame.parked_on = frozenset()

    def _wake_frame(self, frame_id: str, detail: str) -> None:
        frame = self._frames.get(frame_id)
        if frame is None or frame.status != _PARKED:
            return
        self._clear_parking(frame)
        self._set_ready(frame)
        self.metrics.wakes += 1
        self._record(WOKEN, frame.execution_id, detail=detail)

    def _drain_wakeups(self, extra_keys=()) -> None:
        """Wake every frame parked on a freed blocker identifier.

        Combines the scheduler's accumulated wake set (lock releases and
        transfers) with the engine's own keys (transaction ends).
        """
        pending = self.scheduler.drain_wakeups()
        parked_by_key = self._parked_by_key
        if not parked_by_key:
            return
        if extra_keys:
            keys = set(pending)
            keys.update(extra_keys)
        elif pending:
            keys = pending
        else:
            return
        for key in keys:
            waiters = parked_by_key.get(key)
            if waiters:
                for frame_id in list(waiters):
                    self._wake_frame(frame_id, detail=key)

    def _force_wake_all(self) -> bool:
        """Last-resort stall breaker: wake every parked frame for a retry."""
        parked = [frame for frame in self._frames.values() if frame.status == _PARKED]
        if not parked:
            return False
        for frame in parked:
            self.metrics.forced_wakes += 1
            self._wake_frame(frame.execution_id, detail="forced")
        return True

    # ------------------------------------------------------------------
    # frame management
    # ------------------------------------------------------------------

    def _record(self, kind: str, execution_id: str, object_name: str = "", detail: str = "") -> None:
        if self._trace is not None:
            self._trace.record(TraceEvent(self._tick, kind, execution_id, object_name, detail))

    def _start_transaction(self, spec: TransactionSpec, attempt: int, lineage: int) -> None:
        definition = self.object_base.environment.method(spec.method_name)
        shard = self._shard
        if shard is not None and shard.id_prefix:
            # Namespaced ids keep top-level (and hence child) execution ids
            # globally unique across the shard fleet; single-shard runs keep
            # the builder's own ids so they stay bit-identical to plain runs.
            execution = self._builder.begin_top_level(
                spec.method_name,
                execution_id=f"{shard.id_prefix}T{next(shard.txn_counter)}",
            )
        else:
            execution = self._builder.begin_top_level(spec.method_name)
        info = ExecutionInfo(
            execution_id=execution.execution_id,
            object_name=self.object_base.environment.name,
            method_name=spec.method_name,
            parent_id=None,
            ancestor_ids=(),
            top_level_id=execution.execution_id,
        )
        frame = _Frame(
            info=info,
            execution=execution,
            spec=spec,
            attempt=attempt,
            seq=next(self._frame_sequence),
        )
        context = MethodContext(info.object_name, info.execution_id, spec.method_name)
        frame.generator = definition.body(context, *spec.arguments)
        frame.is_generator = self._is_generator(frame.generator)
        self._frames[info.execution_id] = frame
        self._ready_add(frame)
        self._executions_by_transaction[info.execution_id] = {info.execution_id}
        self._lineage_of[info.execution_id] = lineage
        if attempt == 1:
            self.restart_policy.on_submit(lineage)
        self.scheduler.on_transaction_begin(info)
        if shard is not None and shard.classify(spec):
            # Register the attempt for two-phase coordination; each restart
            # is a fresh id, so the coordinator sees attempts, not lineages.
            shard.cross.add(info.execution_id)
        if self._certifier is not None:
            self._certifier.note_begin(info.execution_id, self._builder.clock)
        self._record(BEGIN if attempt == 1 else RESTARTED, info.execution_id, detail=spec.label)

    def _spawn_child(self, parent: _Frame, invocation: InvokeRequest, after) -> _Frame:
        definition = self.object_base.method(invocation.object_name, invocation.method_name)
        child_execution = self._builder.invoke(
            parent.execution,
            invocation.object_name,
            invocation.method_name,
            invocation.arguments,
            after=after,
        )
        info = ExecutionInfo(
            execution_id=child_execution.execution_id,
            object_name=invocation.object_name,
            method_name=invocation.method_name,
            parent_id=parent.execution_id,
            ancestor_ids=(parent.execution_id,) + parent.info.ancestor_ids,
            top_level_id=parent.info.top_level_id,
        )
        child = _Frame(
            info=info,
            execution=child_execution,
            parent=parent,
            attempt=parent.attempt,
            seq=next(self._frame_sequence),
        )
        context = MethodContext(info.object_name, info.execution_id, info.method_name)
        child.generator = definition.body(context, *invocation.arguments)
        child.is_generator = self._is_generator(child.generator)
        self._frames[info.execution_id] = child
        self._ready_add(child)
        self._executions_by_transaction.setdefault(info.top_level_id, set()).add(info.execution_id)
        self.scheduler.on_invoke(parent.info, info)
        self.metrics.invocations += 1
        self._record(INVOKE, info.execution_id, invocation.object_name, invocation.method_name)
        return child

    # ------------------------------------------------------------------
    # advancing a frame by one request
    # ------------------------------------------------------------------

    def _advance(self, frame: _Frame) -> None:
        if frame.status != _READY:
            return
        if frame.pending_commit:
            self._complete_top_level(frame, frame.commit_value)
            return
        if frame.pending_local is not None:
            self._resolve_local(frame, frame.pending_local)
            return
        try:
            if not frame.is_generator:
                # A plain function body: its return value is immediate.
                self._complete_frame(frame, frame.generator)
                return
            request = frame.generator.send(frame.inbox)
        except StopIteration as stop:
            self._complete_frame(frame, stop.value)
            return
        except Exception as error:  # a bug in a transaction programme
            raise SimulationError(
                f"transaction programme {frame.info.method_name!r} raised {error!r}"
            ) from error
        frame.inbox = None
        self._handle_request(frame, request)

    @staticmethod
    def _is_generator(candidate: Any) -> bool:
        return hasattr(candidate, "send") and hasattr(candidate, "throw")

    def _handle_request(self, frame: _Frame, request: Any) -> None:
        shard = self._shard
        if isinstance(request, LocalRequest):
            self._resolve_local(frame, request)
        elif isinstance(request, InvokeRequest):
            if shard is not None and not shard.owns(request.object_name):
                remote_id = self._send_remote_invoke(frame, request)
                self._set_not_ready(frame, _WAITING)
                frame.waiting_on = {remote_id}
                frame.parallel_order = []
                return
            child = self._spawn_child(frame, request, after=None)
            self._set_not_ready(frame, _WAITING)
            frame.waiting_on = {child.execution_id}
            frame.parallel_order = []
        elif isinstance(request, ParallelRequest):
            if shard is not None and not all(
                shard.owns(invocation.object_name)
                for invocation in request.invocations
            ):
                self._spawn_mixed_parallel(frame, request)
                return
            existing_steps = list(frame.execution.step_ids())
            children = [
                self._spawn_child(frame, invocation, after=existing_steps)
                for invocation in request.invocations
            ]
            self._set_not_ready(frame, _WAITING)
            frame.waiting_on = {child.execution_id for child in children}
            frame.parallel_order = [child.execution_id for child in children]
            frame.parallel_results = {}
        else:
            raise SimulationError(
                f"method {frame.info.method_name!r} yielded an unknown request: {request!r}"
            )

    # -- local operations ---------------------------------------------------------

    def _resolve_local(self, frame: _Frame, request: LocalRequest) -> None:
        info = frame.info
        object_name = info.object_name
        operation = request.operation
        metrics = self.metrics
        pre_state = self._states.get(object_name)
        if pre_state is None:
            pre_state = _EMPTY_STATE
        # One application serves both the provisional step the scheduler
        # inspects and — when granted — the recorded step: operations are
        # pure functions of the state, and the scheduler cannot change the
        # object states, so re-applying after the grant would recompute
        # the identical (value, new state) pair.
        value, new_state = operation.apply(pre_state)
        provisional_step = LocalStep(info.execution_id, object_name, operation, value)
        operation_request = OperationRequest(
            info=info,
            object_name=object_name,
            operation=operation,
            provisional_step=provisional_step,
        )
        response = self.scheduler.on_operation(operation_request)
        if response.blocked:
            frame.pending_local = request
            frame.blocked_attempts += 1
            self._record(BLOCKED, frame.execution_id, object_name, response.reason)
            if frame.blocked_attempts >= self.starvation_limit:
                self._abort_transaction(info.top_level_id, "starvation: blocked too long")
                return
            if not self._park(frame, response.blockers, commit=False):
                # No live blocker to key a wake-up on: stay runnable and
                # retry (the pre-event-driven behaviour), which keeps the
                # starvation valve meaningful for degenerate schedulers.
                metrics.blocked_ticks += 1
                metrics.wait_ticks += 1
            return
        if response.aborted:
            frame.pending_local = None
            self._abort_transaction(info.top_level_id, response.reason)
            return

        # Granted: commit the already-computed transition and record the step.
        frame.pending_local = None
        frame.blocked_attempts = 0
        self._states[object_name] = new_state
        self._builder.record_local(frame.execution, operation, value)
        self._undo_log.record(
            object_name, info.execution_id, info.top_level_id, operation, pre_state
        )
        if self._full_log is not None:
            self._full_log.append(
                _StepLogEntry(info.execution_id, info.top_level_id, object_name, operation)
            )
        metrics.local_steps += 1
        self.scheduler.on_operation_executed(operation_request, value)
        shard = self._shard
        if (
            shard is not None
            and shard.tracker is not None
            and (info.top_level_id in shard.cross or info.top_level_id in shard.sessions)
        ):
            # Only cross-shard work feeds the inter-shard precedence graph;
            # purely local transactions are the local scheduler's business.
            shard.tracker.note_step(info, provisional_step)
        self._record(GRANTED, frame.execution_id, object_name, operation.name)
        frame.inbox = value

    # -- completion -----------------------------------------------------------------

    def _complete_frame(self, frame: _Frame, return_value: Any) -> None:
        self._set_not_ready(frame, _DONE)
        if frame.parent is None:
            self._complete_top_level(frame, return_value)
            return
        self._builder.finish(frame.execution, return_value)
        self.scheduler.on_execution_complete(frame.info)
        self._record(COMPLETED, frame.execution_id, frame.info.object_name)
        self._deliver_to_parent(frame, return_value)
        self._frames.pop(frame.execution_id, None)
        # Completion may have transferred the child's locks to its parent
        # (rule 5); waiters blocked on the child must re-examine their
        # conflicts against the inheriting ancestor.
        self._drain_wakeups()

    def _deliver_to_parent(self, child: _Frame, return_value: Any) -> None:
        if child.shard_remote_id is not None:
            # A remote-session child: its result travels back to the shard
            # that requested it (open-nesting style, the value is
            # provisional until the global commit); the session root stays
            # open, retaining the subtree's locks, until the coordinator
            # resolves the transaction.
            shard = self._shard
            shard.outbox.append(
                ("result", child.shard_remote_id, child.info.top_level_id, return_value)
            )
            parent = child.parent
            if parent is not None:
                parent.waiting_on.discard(child.execution_id)
            return
        parent = child.parent
        if parent is None or parent.status != _WAITING:
            return
        parent.waiting_on.discard(child.execution_id)
        if parent.parallel_order:
            parent.parallel_results[child.execution_id] = return_value
            if not parent.waiting_on:
                parent.inbox = [
                    parent.parallel_results.get(child_id)
                    for child_id in parent.parallel_order
                ]
                parent.parallel_order = []
                parent.parallel_results = {}
                self._set_ready(parent)
        else:
            if not parent.waiting_on:
                parent.inbox = return_value
                self._set_ready(parent)

    def _complete_top_level(self, frame: _Frame, return_value: Any) -> None:
        shard = self._shard
        if shard is not None and frame.info.top_level_id in shard.cross:
            # A cross-shard transaction cannot commit unilaterally: hold the
            # prepared root for the coordinator's two-phase decision.
            self._hold_commit(frame, return_value)
            return
        response = self.scheduler.on_commit_request(frame.info)
        if response.blocked:
            # The scheduler defers the commit (e.g. until the transactions
            # whose effects this one observed have resolved); park at the
            # commit point and retry on wake-up.
            self._set_ready(frame)  # _complete_frame marked it done
            frame.pending_commit = True
            frame.commit_value = return_value
            frame.blocked_attempts += 1
            self._record(BLOCKED, frame.execution_id, detail=response.reason or "commit deferred")
            if frame.blocked_attempts >= self.starvation_limit:
                self._abort_transaction(frame.info.top_level_id, "starvation: blocked too long")
                return
            if not self._park(frame, response.blockers, commit=True):
                # No live blocker to key a wake-up on: busy-retry the commit
                # (mirrors the operation-block fallback); account the wait
                # as commit waiting so "never blocks an operation"
                # schedulers still report zero blocked ticks.
                self.metrics.wait_ticks += 1
                self.metrics.commit_wait_ticks += 1
            return
        if not response.granted:
            self._abort_transaction(frame.info.top_level_id, response.reason or "commit vetoed")
            return
        self._finalise_commit(frame, return_value)

    def _finalise_commit(self, frame: _Frame, return_value: Any) -> None:
        """Apply a granted commit (shared with the global-commit directive)."""
        frame.pending_commit = False
        self.scheduler.on_transaction_commit(frame.info)
        self.metrics.committed += 1
        self._committed.append(frame.execution_id)
        if self._certifier is not None:
            # Snapshot the committed subtree while the execution index still
            # lists it (the index is dropped a few lines below).
            subtree = [
                self._builder.execution_record(execution_id)
                for execution_id in sorted(
                    self._executions_by_transaction.get(
                        frame.execution_id, {frame.execution_id}
                    )
                )
            ]
            self._certifier.note_commit(
                frame.execution_id,
                subtree,
                self._builder.intervals_for(subtree),
                resolve_stamp=self._builder.clock,
            )
        self._record(COMMITTED, frame.execution_id, detail=str(return_value))
        # Re-entered commits (pending_commit retries) arrive here _READY.
        self._set_not_ready(frame, _DONE)
        self._frames.pop(frame.execution_id, None)
        self._undo_log.forget_transaction(frame.info.top_level_id)
        lineage = self._lineage_of.pop(frame.execution_id, None)
        if lineage is not None:
            self.restart_policy.on_finished(lineage)
            arrival_tick = self._arrival_tick_of.pop(lineage, 0)
            self.metrics.note_latency(self._tick - arrival_tick)
        self._in_flight -= 1
        # The commit released the transaction's locks (and resolved any
        # read-from dependencies on it): wake its waiters, then drop the
        # execution index — a committed transaction can never abort, so the
        # subtree listing is dead weight from here on.
        self._drain_wakeups(
            {frame.execution_id, *self._executions_by_transaction.get(frame.execution_id, ())}
        )
        self._executions_by_transaction.pop(frame.execution_id, None)
        self._note_finished_attempt()

    # -- fault injection -------------------------------------------------------------

    def _inject_fault(self, due: int) -> None:
        """Fire one fault-plan crash: kill a live top-level transaction.

        The victim dies through the ordinary abort path — undo, scheduler
        release, cascade exposure, restart policy — so an injected crash
        is indistinguishable from a scheduler-initiated abort downstream.
        Shard-foreign sessions are excluded (their home shard owns their
        lineage); with no eligible victim the fault passes without effect.
        A periodic plan re-arms itself here for as long as any work
        (frames or queued events) remains, so an idle tail never spins on
        fault events alone.
        """
        plan = self._fault_plan
        if plan is None:  # defensive: events exist only when a plan is set
            return
        shard = self._shard
        lineage_of = self._lineage_of
        candidates = sorted(
            (
                transaction_id
                for transaction_id in self._executions_by_transaction
                if shard is None or transaction_id not in shard.sessions
            ),
            key=lambda transaction_id: (
                lineage_of.get(transaction_id, 0),
                transaction_id,
            ),
        )
        victim = plan.choose_victim(candidates)
        if victim is not None:
            self.metrics.faults_injected += 1
            self._record(FAULT_INJECTED, victim, detail=f"crash injected at tick {due}")
            self._abort_transaction(victim, "fault: injected crash")
        next_due = plan.next_after(due)
        if next_due is not None and (self._frames or self._events):
            heapq.heappush(
                self._events, (next_due, _EVENT_FAULT, next(self._fault_sequence), None)
            )

    # -- aborts ----------------------------------------------------------------------

    @staticmethod
    def _abort_reason_category(reason: str) -> str:
        lowered = reason.lower()
        for keyword in (
            "deadlock",
            "timestamp",
            "cascad",
            "validation",
            "inter-object",
            "intra-object",
            "starvation",
            "fault",
        ):
            if keyword in lowered:
                return "cascade" if keyword == "cascad" else keyword
        return "other"

    def _abort_transaction(self, top_level_id: str, reason: str) -> None:
        shard = self._shard
        if shard is not None and top_level_id in shard.sessions:
            # A locally-detected abort (deadlock, timestamp violation,
            # starvation) of a *foreign* transaction's session: discard the
            # local subtree and notify the coordinator, which relays the
            # abort to the home shard (where restart policy applies).
            self._abort_remote(top_level_id, reason)
            return
        top_frame = self._frames.get(top_level_id)
        # Every execution ever created for this attempt belongs to the
        # aborted subtree (including completed children whose frames are
        # already gone); the paper's abort semantics require descendants to
        # abort with their ancestor.  The execution index records exactly
        # that set, so the subtree's live frames come from id lookups, not
        # a scan of the whole frame table.
        subtree_ids = set(self._executions_by_transaction.get(top_level_id, ()))
        subtree_ids.add(top_level_id)
        frames = self._frames
        subtree_frames = [
            frames[execution_id] for execution_id in subtree_ids if execution_id in frames
        ]

        self._aborted_executions.update(subtree_ids)
        self.metrics.aborted_attempts += 1
        self.metrics.aborts_by_reason[self._abort_reason_category(reason)] += 1
        self._record(ABORTED, top_level_id, detail=reason)

        info = top_frame.info if top_frame is not None else ExecutionInfo(
            execution_id=top_level_id,
            object_name=self.object_base.environment.name,
            method_name="",
            parent_id=None,
            ancestor_ids=(),
            top_level_id=top_level_id,
        )
        self.scheduler.on_transaction_abort(info, tuple(sorted(subtree_ids)))
        if self._certifier is not None:
            self._certifier.note_abort(top_level_id)

        # Discard the attempt's frames (unhooking any parked ones) and undo
        # the attempt's effects on the object states.
        for frame in subtree_frames:
            if frame.status == _PARKED:
                self._clear_parking(frame)
            self._set_not_ready(frame, _DONE)
            self._frames.pop(frame.execution_id, None)
        self.metrics.wasted_steps += self._undo_states(top_level_id, subtree_ids)

        # The abort released the transaction's locks and undid its effects:
        # wake every frame parked on any execution of the subtree, then drop
        # the attempt's execution index (a restart gets fresh ids).
        self._drain_wakeups(subtree_ids)
        self._executions_by_transaction.pop(top_level_id, None)

        if shard is not None and top_level_id in shard.cross:
            # Unregister the attempt and tell the coordinator, so every
            # other participant discards its session for this id.
            shard.cross.discard(top_level_id)
            shard.held.pop(top_level_id, None)
            for remote_id in [
                remote_id
                for remote_id, frame_id in shard.waiters.items()
                if frame_id in subtree_ids
            ]:
                del shard.waiters[remote_id]
            shard.notes.append(("aborted", top_level_id, reason))

        # Restart the transaction if its spec allows it; *when* is the
        # restart policy's call — zero delay restarts within this tick
        # (the legacy behaviour), a positive delay queues the respawn on
        # the delayed-restart heap.
        spec = top_frame.spec if top_frame is not None else None
        attempt = top_frame.attempt if top_frame is not None else 1
        lineage = self._lineage_of.pop(top_level_id, None)
        if spec is not None and attempt <= self.max_restarts:
            if lineage is None:
                lineage = next(self._lineage_counter)
            delay = max(0, int(self.restart_policy.delay(lineage, attempt, reason)))
            if delay == 0:
                self.metrics.restarts += 1
                self._start_transaction(spec, attempt=attempt + 1, lineage=lineage)
            else:
                self.metrics.delayed_restarts += 1
                self.metrics.restart_delay_ticks += delay
                heapq.heappush(
                    self._events,
                    (
                        self._tick + delay,
                        _EVENT_RESTART,
                        next(self._restart_sequence),
                        (spec, attempt + 1, lineage),
                    ),
                )
                self._record(RESTART_SCHEDULED, top_level_id, detail=f"+{delay} ticks: {reason}")
        else:
            self.metrics.gave_up += 1
            if lineage is not None:
                self.restart_policy.on_finished(lineage)
                self._arrival_tick_of.pop(lineage, None)
            self._in_flight -= 1
            self._record(GAVE_UP, top_level_id, detail=reason)
        self._note_finished_attempt()

    # -- live-state garbage collection -------------------------------------------

    def _note_finished_attempt(self) -> None:
        """Count a finished attempt towards the garbage-collection cadence."""
        self._finished_since_gc += 1
        if self._finished_since_gc >= self.gc_interval:
            self._collect_garbage()

    def _collect_garbage(self) -> None:
        """Prune live state nothing live can depend on, and sample the gauge.

        Three stores shrink: the scheduler's own records
        (:meth:`~repro.scheduler.base.Scheduler.collect_garbage` — commit
        gates are self-pruning; the certifier and NTO drop committed
        records no live or future transaction can conflict-order against),
        the undo log's committed prefixes, and — implicitly — the parked
        index, which only ever holds live frames.  The gauge sample taken
        afterwards is what bounds retained state to O(in-flight): the
        metrics keep its peak and its peak ratio to the in-flight count.
        """
        self._finished_since_gc = 0
        # Sample the gauge *before* pruning: the peak must reflect what was
        # actually retained between passes (a post-prune sample would hide
        # exactly the growth the gauge exists to expose).
        sample = (
            self.scheduler.live_state_size()
            + self._undo_log.total_steps()
            + self._parked_count
        )
        if self._certifier is not None:
            sample += self._certifier.live_state_size()
        self.metrics.note_live_state(sample, self._in_flight)
        self.scheduler.collect_garbage()
        self._undo_log.collect()
        if self._certifier is not None:
            self._certifier.collect_garbage()

    def _undo_states(self, top_level_id: str, subtree_ids: set[str]) -> int:
        """Undo the aborted subtree's steps; returns the wasted-step count."""
        if self.undo == REPLAY_UNDO:
            removed = self._undo_log.prune(top_level_id, subtree_ids)
            self._states = self._replay_states()
            return removed
        removed = self._undo_log.undo(top_level_id, subtree_ids, self._states)
        if self.check_undo:
            replayed = self._replay_states()
            if self._states != replayed:
                differing = sorted(
                    name
                    for name in set(self._states) | set(replayed)
                    if self._states.get(name) != replayed.get(name)
                )
                raise SimulationError(
                    "incremental undo diverged from full replay on objects "
                    f"{differing} after abort of {top_level_id}"
                )
        return removed

    def _replay_states(self) -> dict[str, ObjectState]:
        """Rebuild every object state by replaying the surviving global log."""
        assert self._full_log is not None, "full replay requires the global step log"
        states = dict(self.object_base.initial_states())
        for entry in self._full_log:
            if entry.execution_id in self._aborted_executions:
                continue
            state = states.get(entry.object_name, ObjectState())
            _, states[entry.object_name] = entry.operation.apply(state)
        return states
