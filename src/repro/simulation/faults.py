"""Deterministic fault injection: crash in-flight transactions mid-stream.

A fault plan kills live top-level transactions at predetermined points of
the simulated clock.  A *crash* is an engine-initiated abort: the victim's
whole execution subtree is discarded, its effects are rolled back through
the undo log (exactly the paper's abort semantics — the path
``check_undo=True`` verifies against full replay), the scheduler releases
its locks and gate state, and the ordinary restart policy resubmits the
lineage.  Injected faults therefore exercise the recovery machinery —
undo, garbage collection of scheduler state, cascade handling for
transactions that read the victim's dirty writes — under load rather than
only at scheduler-chosen abort points.

Like arrival processes and restart policies, plans are deterministic:
explicit crash ticks are part of the configuration, the optional victim
randomisation is seeded from the engine seed, and a run stays a pure
function of ``(workload seed, engine seed, fault plan)``.  Plans are
JSON-friendly registry components (:func:`make_fault_plan` accepts
``name | {"name", ...kwargs} | instance``), so ``engine_params``
in a sweep spec can carry ``{"fault_plan": {"name": "crash", "at": [500]}}``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Mapping

from ..core.registry import resolve_component

#: Victim-selection policies of :class:`CrashPlan`.
VICTIM_POLICIES = ("oldest", "newest", "random")


class FaultPlan:
    """Decides when faults fire and which live transaction each one kills.

    The engine drives one plan instance per run:

    * :meth:`bind` — called once at run start with the engine seed; must
      reset all plan state;
    * :meth:`initial_ticks` — the explicit crash ticks to queue up front;
    * :meth:`next_after` — the due tick of the next recurring fault after
      ``tick``, or ``None``;
    * :meth:`choose_victim` — pick the casualty among the live top-level
      transactions (ordered oldest lineage first); ``None`` skips the
      fault.
    """

    name = "abstract"

    def bind(self, seed: int) -> None:
        """Reset the plan for a fresh run seeded with the engine seed."""

    def initial_ticks(self) -> tuple[int, ...]:
        """Explicit fault ticks, queued when the run starts."""
        return ()

    def next_after(self, tick: int) -> int | None:
        """Due tick of the next recurring fault strictly after ``tick``."""
        return None

    def choose_victim(self, candidates: list[str]) -> str | None:
        """The transaction to kill; ``None`` lets this fault pass."""
        return None

    def describe(self) -> dict[str, Any]:
        """Plan description merged into run metadata."""
        return {"name": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CrashPlan(FaultPlan):
    """Crash one in-flight transaction at each configured tick.

    Args:
        at: explicit simulated-clock ticks at which to inject one crash
            each (sorted internally; duplicates fire twice).
        period: additionally crash every ``period`` ticks, re-armed after
            each firing for as long as transactions remain in flight.
        victim: ``"oldest"`` (longest-lived lineage — the victim whose
            undo is largest), ``"newest"``, or ``"random"`` (seeded).
        max_faults: stop injecting after this many crashes landed on a
            victim (``None`` = unlimited).
        seed: explicit RNG seed for ``victim="random"``; ``None`` derives
            one from the engine seed at :meth:`bind` time.
    """

    name = "crash"

    def __init__(
        self,
        at: tuple = (),
        period: int | None = None,
        victim: str = "oldest",
        max_faults: int | None = None,
        seed: int | None = None,
    ):
        ticks = tuple(int(tick) for tick in at)
        if any(tick < 0 for tick in ticks):
            raise ValueError(f"crash ticks must be >= 0, got {sorted(ticks)}")
        if period is not None and period < 1:
            raise ValueError(f"crash period must be >= 1, got {period}")
        if victim not in VICTIM_POLICIES:
            raise ValueError(
                f"unknown victim policy {victim!r}; "
                f"available: {', '.join(VICTIM_POLICIES)}"
            )
        if max_faults is not None and max_faults < 1:
            raise ValueError(f"max_faults must be >= 1, got {max_faults}")
        self.at = tuple(sorted(ticks))
        self.period = period
        self.victim = victim
        self.max_faults = max_faults
        self.seed = seed
        self._rng = random.Random(seed)
        self._injected = 0

    def bind(self, seed: int) -> None:
        effective = self.seed if self.seed is not None else seed ^ 0x2545F491
        self._rng = random.Random(effective)
        self._injected = 0

    def initial_ticks(self) -> tuple[int, ...]:
        return self.at

    def next_after(self, tick: int) -> int | None:
        if self.period is None:
            return None
        if self.max_faults is not None and self._injected >= self.max_faults:
            return None
        return tick + self.period

    def choose_victim(self, candidates: list[str]) -> str | None:
        if not candidates:
            return None
        if self.max_faults is not None and self._injected >= self.max_faults:
            return None
        self._injected += 1
        if self.victim == "oldest":
            return candidates[0]
        if self.victim == "newest":
            return candidates[-1]
        return self._rng.choice(candidates)

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "at": list(self.at),
            "period": self.period,
            "victim": self.victim,
            "max_faults": self.max_faults,
        }


FAULT_REGISTRY: dict[str, Callable[..., FaultPlan]] = {
    "crash": CrashPlan,
}


def fault_plan_names() -> list[str]:
    """Names accepted by :func:`make_fault_plan`."""
    return sorted(FAULT_REGISTRY)


def make_fault_plan(
    plan: "str | Mapping[str, Any] | FaultPlan",
    **kwargs: Any,
) -> FaultPlan:
    """Build a fault plan from a name, a config mapping, or an instance.

    Accepted shapes (the uniform component-specification contract of
    :func:`repro.core.registry.resolve_component`):

    * ``"crash"`` — a registry name, optionally with ``**kwargs``;
    * ``{"name": "crash", "at": [500, 1500]}`` — a registry name plus
      constructor keywords (``**kwargs`` are merged in);
    * a ready :class:`FaultPlan` instance (returned unchanged; keywords
      are rejected).

    Raises:
        KeyError: on an unknown plan name.
        TypeError: on keywords the plan does not accept, or an
            unsupported specification type.
    """
    return resolve_component(
        FAULT_REGISTRY, plan, kind="fault plan", instance_of=FaultPlan, **kwargs
    )
