"""repro — reproduction of "Transaction Synchronisation in Object Bases".

The package implements the paper's formal model of object-base histories,
its serialisability theory, the nested two-phase locking and nested
timestamp ordering algorithms whose correctness the paper proves, the
intra-/inter-object decomposition of Theorem 5, and a simulation substrate
(object base, abstract data types, workload generators, metrics) on which
the paper's comparative claims can be measured.

The supported public surface is re-exported here so users never need
deep module paths:

* :func:`repro.run` — one scenario, from declarative description to
  :class:`~repro.simulation.metrics.RunResult` /
  :class:`~repro.shard.engine.ShardedRunResult`;
* :class:`~repro.sweep.spec.SweepSpec` / :class:`~repro.sweep.spec.ScenarioSpec`
  — declarative grids of workload × scheduler × seed scenarios, executed
  serially or fanned out over ``multiprocessing`` workers with
  deterministic results (:mod:`repro.sweep`);
* :class:`~repro.shard.map.ShardMap` — object-space partitioning for
  sharded execution;
* the component registries and their uniform ``make_*`` constructors
  (every one accepts ``name | {"name", ...kwargs} | instance`` via
  :func:`repro.core.registry.resolve_component`).

The sub-packages (:mod:`repro.core`, :mod:`repro.objectbase`,
:mod:`repro.scheduler`, :mod:`repro.simulation`, :mod:`repro.analysis`,
:mod:`repro.sweep`, :mod:`repro.shard`) remain importable, but anything
not exported here should be treated as internal: deep imports are
deprecated in favour of this surface and may move between releases.
"""

from .core import (
    AUTO,
    ConflictSpec,
    ConflictTable,
    ConservativeConflictSpec,
    ENVIRONMENT_OBJECT,
    History,
    HistoryBuilder,
    IllegalHistoryError,
    MethodExecution,
    ObjectState,
    PerObjectConflicts,
    ReadWriteConflictSpec,
    ReproError,
    brute_force_serialisable,
    check_determinacy,
    is_serialisable,
    serialisation_graph,
    serialise,
    theorem_5_conditions,
)
from .core.registry import component_names, resolve_component
from .facade import run
from .scheduler import (
    INTRA_STRATEGIES,
    RESTART_POLICIES,
    SCHEDULER_FACTORIES,
    make_restart_policy,
    make_scheduler,
    scheduler_names,
)
from .shard import ShardMap
from .simulation import (
    ARRIVAL_REGISTRY,
    FAULT_REGISTRY,
    RunMetrics,
    RunResult,
    SimulationEngine,
    WORKLOAD_REGISTRY,
    make_arrival_process,
    make_fault_plan,
    make_workload,
    workload_names,
)
from .sweep import ScenarioSpec, SweepSpec

__version__ = "1.0.0"

__all__ = [
    "ARRIVAL_REGISTRY",
    "AUTO",
    "ConflictSpec",
    "ConflictTable",
    "ConservativeConflictSpec",
    "ENVIRONMENT_OBJECT",
    "FAULT_REGISTRY",
    "History",
    "HistoryBuilder",
    "INTRA_STRATEGIES",
    "IllegalHistoryError",
    "MethodExecution",
    "ObjectState",
    "PerObjectConflicts",
    "RESTART_POLICIES",
    "ReadWriteConflictSpec",
    "ReproError",
    "RunMetrics",
    "RunResult",
    "SCHEDULER_FACTORIES",
    "ScenarioSpec",
    "ShardMap",
    "SimulationEngine",
    "SweepSpec",
    "WORKLOAD_REGISTRY",
    "__version__",
    "brute_force_serialisable",
    "check_determinacy",
    "component_names",
    "is_serialisable",
    "make_arrival_process",
    "make_fault_plan",
    "make_restart_policy",
    "make_scheduler",
    "make_workload",
    "resolve_component",
    "run",
    "scheduler_names",
    "serialisation_graph",
    "serialise",
    "theorem_5_conditions",
    "workload_names",
]
