"""repro — reproduction of "Transaction Synchronisation in Object Bases".

The package implements the paper's formal model of object-base histories,
its serialisability theory, the nested two-phase locking and nested
timestamp ordering algorithms whose correctness the paper proves, the
intra-/inter-object decomposition of Theorem 5, and a simulation substrate
(object base, abstract data types, workload generators, metrics) on which
the paper's comparative claims can be measured.

The most commonly used names are re-exported here; the sub-packages
(:mod:`repro.core`, :mod:`repro.objectbase`, :mod:`repro.scheduler`,
:mod:`repro.simulation`, :mod:`repro.analysis`, :mod:`repro.sweep`)
expose the full API.  :mod:`repro.sweep` is the declarative
scenario-sweep layer: grids of workload × scheduler × seed scenarios
executed serially or fanned out over ``multiprocessing`` workers with
deterministic results.
"""

from .core import (
    AUTO,
    ConflictSpec,
    ConflictTable,
    ConservativeConflictSpec,
    ENVIRONMENT_OBJECT,
    History,
    HistoryBuilder,
    IllegalHistoryError,
    MethodExecution,
    ObjectState,
    PerObjectConflicts,
    ReadWriteConflictSpec,
    ReproError,
    brute_force_serialisable,
    check_determinacy,
    is_serialisable,
    serialisation_graph,
    serialise,
    theorem_5_conditions,
)

__version__ = "1.0.0"

__all__ = [
    "AUTO",
    "ConflictSpec",
    "ConflictTable",
    "ConservativeConflictSpec",
    "ENVIRONMENT_OBJECT",
    "History",
    "HistoryBuilder",
    "IllegalHistoryError",
    "MethodExecution",
    "ObjectState",
    "PerObjectConflicts",
    "ReadWriteConflictSpec",
    "ReproError",
    "__version__",
    "brute_force_serialisable",
    "check_determinacy",
    "is_serialisable",
    "serialisation_graph",
    "serialise",
    "theorem_5_conditions",
]
