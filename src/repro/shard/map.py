"""Declarative partitioning of the object space across shards.

A :class:`ShardMap` is to the sharded engine what a
:class:`~repro.sweep.spec.ScenarioSpec` is to a sweep: a small, eagerly
validated, JSON-canonical value object.  It answers exactly one question
— *which shard owns this object name?* — and it answers it as a pure
function of its fields, so every process that holds an equal map routes
identically.  That purity is what lets the multiprocess transport ship a
map to each worker as plain JSON and still guarantee bit-identical
behaviour with the in-process oracle.

The default placement hashes the object name with CRC-32 (a stable,
platform-independent digest — ``hash()`` is salted per process and would
destroy cross-process determinism).  Explicit ``assignment`` overrides
pin chosen objects to chosen shards, which experiments use to construct
known-local and known-cross workloads.

Transactions are routed by the object names found in their argument
lists: the first routable name picks the *home* shard (where the
transaction body runs) and any name owned elsewhere marks the
transaction as *cross-shard* (its remote invocations will travel through
the inter-shard coordinator).  Transactions naming no objects run on
shard 0.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.errors import ModelError
from ..simulation.transactions import TransactionSpec

__all__ = ["ShardMap"]


def _stable_shard(name: str, shards: int) -> int:
    return zlib.crc32(name.encode("utf-8")) % shards


@dataclass(frozen=True)
class ShardMap:
    """Assigns every object name to exactly one of ``shards`` shards.

    Attributes:
        shards: number of shards (>= 1).
        assignment: explicit ``object name -> shard index`` overrides;
            names absent from the mapping fall back to the CRC-32 hash
            placement.
    """

    shards: int
    assignment: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", dict(self.assignment))
        self.validate()

    def validate(self) -> None:
        if not isinstance(self.shards, int) or isinstance(self.shards, bool):
            raise ModelError(f"shards must be an int, got {self.shards!r}")
        if self.shards < 1:
            raise ModelError(f"shards must be >= 1, got {self.shards}")
        for name, index in self.assignment.items():
            if not isinstance(name, str) or not name:
                raise ModelError(f"assignment keys must be object names, got {name!r}")
            if not isinstance(index, int) or isinstance(index, bool):
                raise ModelError(f"assignment[{name!r}] must be an int, got {index!r}")
            if not 0 <= index < self.shards:
                raise ModelError(
                    f"assignment[{name!r}] = {index} outside 0..{self.shards - 1}"
                )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, object_name: str) -> int:
        """The shard that owns ``object_name``."""
        explicit = self.assignment.get(object_name)
        if explicit is not None:
            return explicit
        return _stable_shard(object_name, self.shards)

    def partition(self, object_names: Iterable[str]) -> dict[int, list[str]]:
        """Group ``object_names`` by owning shard (all shards present)."""
        groups: dict[int, list[str]] = {index: [] for index in range(self.shards)}
        for name in object_names:
            groups[self.shard_of(name)].append(name)
        return groups

    def spec_objects(self, spec: TransactionSpec, names: frozenset[str]) -> list[str]:
        """Object names referenced by a transaction spec's arguments.

        Walks the argument structure (strings, sequences, mappings) and
        collects, in encounter order, every value that is a known object
        name.  This is the routing oracle: it sees exactly the same
        argument values in every process, so home/cross classification is
        a pure function of (spec, map).
        """
        found: list[str] = []

        def walk(value: Any) -> None:
            if isinstance(value, str):
                if value in names:
                    found.append(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    walk(item)
            elif isinstance(value, Mapping):
                for key, item in value.items():
                    walk(key)
                    walk(item)

        walk(spec.arguments)
        return found

    def home_of(self, spec: TransactionSpec, names: frozenset[str]) -> int:
        """The shard a transaction's body runs on (first routable name)."""
        objects = self.spec_objects(spec, names)
        if not objects:
            return 0
        return self.shard_of(objects[0])

    def is_cross(self, spec: TransactionSpec, names: frozenset[str]) -> bool:
        """Whether the transaction touches objects on more than one shard."""
        objects = self.spec_objects(spec, names)
        if not objects:
            return False
        home = self.shard_of(objects[0])
        return any(self.shard_of(name) != home for name in objects)

    # ------------------------------------------------------------------
    # JSON canonical form
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        return {
            "shards": self.shards,
            "assignment": {name: self.assignment[name] for name in sorted(self.assignment)},
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ShardMap":
        known = {"shards", "assignment"}
        unknown = set(data) - known
        if unknown:
            raise ModelError(f"unknown ShardMap fields: {sorted(unknown)}")
        if "shards" not in data:
            raise ModelError("ShardMap JSON requires a 'shards' field")
        return cls(shards=data["shards"], assignment=dict(data.get("assignment", {})))

    def to_json(self, **dumps_kwargs: Any) -> str:
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_json_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ShardMap":
        return cls.from_json_dict(json.loads(text))

    def describe(self) -> dict[str, Any]:
        return {
            "shards": self.shards,
            "explicit_assignments": len(self.assignment),
            "placement": "crc32",
        }
