"""Sharded execution: partitioned object space, per-shard schedulers.

The paper's modularity theorem applied one level up: each shard runs a
complete scheduler over its slice of the object base, and the
:class:`InterShardCoordinator` arbitrates only the transactions that
cross shards.  See ``DESIGN.md`` ("Sharded execution") for the
tick-barrier determinism argument and the commit protocol.
"""

from .coordinator import InterShardCoordinator, ShardReport, ShardStepTracker
from .engine import (
    DEFAULT_ROUND_TICKS,
    ShardOutcome,
    ShardWorker,
    ShardedEngine,
    ShardedRunResult,
)
from .map import ShardMap

__all__ = [
    "DEFAULT_ROUND_TICKS",
    "InterShardCoordinator",
    "ShardMap",
    "ShardOutcome",
    "ShardReport",
    "ShardStepTracker",
    "ShardWorker",
    "ShardedEngine",
    "ShardedRunResult",
]
