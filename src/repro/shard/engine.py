"""Sharded execution: one engine per shard, coordinated at tick barriers.

The :class:`ShardedEngine` partitions the object space with a
:class:`~repro.shard.map.ShardMap` and runs one complete
:class:`~repro.simulation.engine.SimulationEngine` — scheduler, undo
log, history builder and all — per shard.  Shards advance in lock-step
*tick rounds*: every round the driver ships the coordinator's directives
to each shard, each shard runs its event loop up to the shared horizon,
and the barrier collects outgoing messages (remote invocations, results)
and lifecycle notes (prepared, aborted, votes) into an
:class:`~repro.shard.coordinator.InterShardCoordinator` that decides the
next round's directives.

Determinism is the design's spine, not a feature flag:

* all cross-shard interaction happens at barriers, in shard-index order,
  over plain data tuples — nothing about scheduling within a round can
  reorder it;
* the *same* :class:`ShardWorker` class executes the round protocol in
  both transports.  ``inprocess`` calls it directly (the oracle);
  ``multiprocess`` runs it behind a pipe in a worker process.  Both see
  byte-equal payloads (spec and map as canonical JSON dicts) and the
  identical directive streams, so their results are structurally
  bit-identical — asserted by ``tests/shard/`` on every run;
* with one shard there is no cross state at all: the round loop chunks
  the plain event loop by horizon without perturbing the tick, RNG or
  decision sequence, so ``shards=1`` reproduces the unsharded engine bit
  for bit (also asserted).

Workers are spawn-safe the same way the sweep runner's are: a worker
receives only picklable plain data (the scenario spec and shard map as
JSON dicts) and constructs every live object in-worker.  Each worker
rebuilds the *full* workload and recomputes the *full* arrival schedule
(both pure functions of the spec), then keeps only the transactions
whose home is its shard — no generator state ever crosses a process
boundary, and every worker agrees on every transaction's home without
communicating.
"""

from __future__ import annotations

import inspect
import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..analysis import certify_run
from ..core.errors import SimulationError
from ..scheduler import make_scheduler
from ..simulation import SimulationEngine
from ..simulation.metrics import RunMetrics, merge_run_metrics
from ..simulation.transactions import TransactionSpec
from ..simulation.workloads import make_workload
from ..sweep.spec import ScenarioSpec
from .coordinator import InterShardCoordinator, ShardReport, ShardStepTracker
from .map import ShardMap

__all__ = [
    "ShardWorker",
    "ShardOutcome",
    "ShardedRunResult",
    "ShardedEngine",
    "DEFAULT_ROUND_TICKS",
]

#: Barrier spacing in ticks.  Larger rounds amortise barrier overhead;
#: smaller rounds deliver cross-shard messages sooner.  Results are a
#: pure function of (spec, map, round_ticks, mode-independent): both
#: transports are bit-identical at any value, but the value itself is
#: part of the deterministic configuration — round batching shapes the
#: coordinator's registration order, which victim selection ties break
#: on.
DEFAULT_ROUND_TICKS = 64

#: Consecutive zero-progress rounds tolerated before the driver asks the
#: coordinator to sacrifice a transaction.  A deferred commit vote often
#: clears itself within a round or two (the gate was waiting on local
#: state); only a *sustained* quiet spell is a distributed stall.
STALL_PATIENCE_ROUNDS = 3

_DEFAULT_MAX_TICKS: int = inspect.signature(SimulationEngine.__init__).parameters[
    "max_ticks"
].default


def _build_payloads(
    spec: ScenarioSpec,
    shard_map: ShardMap,
    *,
    certify: bool | str,
    check_legality: bool,
) -> list[dict[str, Any]]:
    """One plain-data construction recipe per shard (JSON/picklable only)."""
    spec_data = spec.to_json_dict()
    map_data = shard_map.to_json_dict()
    return [
        {
            "spec": spec_data,
            "map": map_data,
            "index": index,
            "certify": certify,
            "check_legality": check_legality,
        }
        for index in range(shard_map.shards)
    ]


class ShardWorker:
    """One shard's engine plus its side of the round protocol.

    Identical in both transports — the in-process oracle calls these
    methods directly, the multiprocess transport calls them through
    :func:`_shard_worker_main` behind a pipe.
    """

    def __init__(self, payload: Mapping[str, Any]):
        spec = ScenarioSpec.from_json_dict(payload["spec"])
        shard_map = ShardMap.from_json_dict(payload["map"])
        index = int(payload["index"])
        workload = make_workload(spec.workload, **spec.workload_params)
        object_base, transaction_specs = workload.build()
        scheduler_kwargs = dict(spec.scheduler_kwargs)
        if spec.modular_strategy_from_workload:
            scheduler_kwargs.setdefault(
                "per_object_strategy", workload.modular_strategy_map()
            )
        scheduler = make_scheduler(spec.scheduler, **scheduler_kwargs)
        engine = SimulationEngine(
            object_base, scheduler, seed=spec.seed, **dict(spec.engine_params)
        )
        names = frozenset(object_base.object_names())
        tracker = ShardStepTracker(object_base.conflicts("step"))
        engine.bind_shard_runtime(
            index=index,
            count=shard_map.shards,
            owns=lambda object_name: shard_map.shard_of(object_name) == index,
            classify=lambda txn_spec: shard_map.is_cross(txn_spec, names),
            tracker=tracker,
        )
        specs = [
            entry if isinstance(entry, TransactionSpec) else TransactionSpec(entry, ())
            for entry in transaction_specs
        ]
        # Recompute the full deterministic arrival schedule, then keep only
        # the transactions homed here.  Dropped pairs keep their ticks: the
        # schedule is the global one, filtered — not a per-shard re-deal.
        arrival_factory = getattr(workload, "arrival_process", None)
        if arrival_factory is not None:
            process = arrival_factory()
            process.bind(engine.seed)
            pairs = list(zip(process.schedule(len(specs)), specs))
            engine.submit_scheduled(
                [
                    (tick, txn_spec)
                    for tick, txn_spec in pairs
                    if shard_map.home_of(txn_spec, names) == index
                ]
            )
        else:
            engine.submit_all(
                [
                    txn_spec
                    for txn_spec in specs
                    if shard_map.home_of(txn_spec, names) == index
                ]
            )
        engine.begin_shard_run()
        self.index = index
        self.engine = engine
        self.tracker = tracker
        self._certify = payload.get("certify", False)
        self._check_legality = bool(payload.get("check_legality", False))
        owned = {name for name in names if shard_map.shard_of(name) == index}
        if index == 0:
            # The environment object exists on every shard (transaction
            # bodies run there); shard 0 reports its state so the merged
            # final-states view matches the plain engine's key set.
            owned.add(object_base.environment.name)
        self._owned = frozenset(owned)

    def round(self, directives: list[tuple], horizon: int) -> ShardReport:
        """Apply one round of directives, advance to ``horizon``, report."""
        engine = self.engine
        engine_directives = []
        for directive in directives:
            kind = directive[0]
            if kind == "forget":
                # Coordinator GC: this resolved transaction's steps can no
                # longer matter to any future precedence check.
                self.tracker.forget(directive[1])
                continue
            if kind == "abort":
                # Aborted work constrains nobody; drop its records now.
                self.tracker.forget(directive[1])
            engine_directives.append(directive)
        engine.apply_shard_directives(engine_directives)
        decisions = engine.run_shard_round(horizon)
        notes = engine.drain_shard_notes()
        for note in notes:
            if note[0] == "aborted":
                self.tracker.forget(note[1])
        return ShardReport(
            index=self.index,
            decisions=decisions,
            tick=engine._tick,
            busy=engine.shard_pending(),
            messages=engine.drain_shard_outbox(),
            notes=notes,
            edges=self.tracker.drain_edges(),
        )

    def finalize(self) -> dict[str, Any]:
        """Close the run and flatten the outcome to plain picklable data."""
        result = self.engine.finalize_shard()
        payload: dict[str, Any] = {
            "index": self.index,
            "metrics": result.metrics,
            "scheduler_description": result.scheduler_description,
            "committed": tuple(result.committed_transaction_ids),
            "aborted": tuple(sorted(result.aborted_execution_ids)),
            "final_states": {
                name: dict(state)
                for name, state in result.final_states().items()
                if name in self._owned
            },
            "tracker_live_records": self.tracker.live_records(),
            "serialisable": None,
            "legal": None,
        }
        if self._certify:
            report = certify_run(result, check_legality=self._check_legality)
            payload["serialisable"] = bool(report.serialisable)
            if self._check_legality:
                payload["legal"] = bool(report.legal)
        return payload


class _WorkerFailure:
    """Picklable carrier for an exception raised inside a shard process."""

    def __init__(self, message: str, details: str):
        self.message = message
        self.details = details


def _shard_worker_main(conn, payload: Mapping[str, Any]) -> None:
    """Entry point of a shard worker process (top-level: spawn-picklable)."""
    try:
        worker = ShardWorker(payload)
        while True:
            command = conn.recv()
            kind = command[0]
            if kind == "round":
                conn.send(worker.round(command[1], command[2]))
            elif kind == "finalize":
                conn.send(worker.finalize())
            elif kind == "stop":
                break
            else:  # pragma: no cover - driver bug guard
                raise SimulationError(f"unknown shard command {command!r}")
    except EOFError:  # pragma: no cover - parent died; exit quietly
        pass
    except BaseException as error:  # noqa: BLE001 - relay to the driver
        try:
            conn.send(_WorkerFailure(repr(error), traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class _LocalTransport:
    """The in-process oracle: workers live in the driver's interpreter."""

    name = "inprocess"

    def __init__(self, payloads: list[dict[str, Any]]):
        self._workers = [ShardWorker(payload) for payload in payloads]

    def round(self, directives: list[list[tuple]], horizon: int) -> list[ShardReport]:
        return [
            worker.round(shard_directives, horizon)
            for worker, shard_directives in zip(self._workers, directives)
        ]

    def finalize(self) -> list[dict[str, Any]]:
        return [worker.finalize() for worker in self._workers]

    def close(self) -> None:
        pass


class _ProcessTransport:
    """One persistent worker process per shard, driven over pipes.

    Sends every shard its directives before collecting any report, so
    rounds execute in parallel across cores; the barrier is the recv
    loop.  Reports are collected in shard-index order regardless of
    completion order — the coordinator never observes scheduling noise.
    """

    name = "multiprocess"

    def __init__(self, payloads: list[dict[str, Any]], mp_context: str):
        context = multiprocessing.get_context(mp_context)
        self._processes = []
        self._pipes = []
        try:
            for payload in payloads:
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_shard_worker_main, args=(child_end, payload), daemon=True
                )
                process.start()
                child_end.close()
                self._processes.append(process)
                self._pipes.append(parent_end)
        except BaseException:
            self.close()
            raise

    def _receive(self, pipe) -> Any:
        message = pipe.recv()
        if isinstance(message, _WorkerFailure):
            raise SimulationError(
                f"shard worker failed: {message.message}\n{message.details}"
            )
        return message

    def round(self, directives: list[list[tuple]], horizon: int) -> list[ShardReport]:
        for pipe, shard_directives in zip(self._pipes, directives):
            pipe.send(("round", shard_directives, horizon))
        return [self._receive(pipe) for pipe in self._pipes]

    def finalize(self) -> list[dict[str, Any]]:
        for pipe in self._pipes:
            pipe.send(("finalize",))
        return [self._receive(pipe) for pipe in self._pipes]

    def close(self) -> None:
        for pipe in self._pipes:
            try:
                pipe.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            pipe.close()
        for process in self._processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - hung worker guard
                process.terminate()
                process.join(timeout=5)


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's flattened run outcome (identical across transports)."""

    index: int
    metrics: RunMetrics
    scheduler_description: dict[str, Any]
    committed: tuple[str, ...]
    aborted: tuple[str, ...]
    final_states: dict[str, dict[str, Any]]
    tracker_live_records: int
    serialisable: bool | None
    legal: bool | None


@dataclass(frozen=True)
class ShardedRunResult:
    """The fleet's merged outcome plus every per-shard projection."""

    shards: tuple[ShardOutcome, ...]
    metrics: RunMetrics
    coordinator: dict[str, Any]
    mode: str
    rounds: int
    shard_map: ShardMap

    @property
    def committed_transaction_ids(self) -> tuple[str, ...]:
        """Home-side commits, in shard order (each gid exactly once).

        Owner-side session commits repeat the home gid in that shard's own
        ``committed`` tuple; the merged view keeps the home entry only.
        """
        seen: set[str] = set()
        merged: list[str] = []
        for outcome in self.shards:
            for gid in outcome.committed:
                if gid not in seen:
                    seen.add(gid)
                    merged.append(gid)
        return tuple(merged)

    def final_states(self) -> dict[str, dict[str, Any]]:
        """Final object states, merged across shards (ownership-disjoint)."""
        states: dict[str, dict[str, Any]] = {}
        for outcome in self.shards:
            states.update(outcome.final_states)
        return states

    @property
    def serialisable(self) -> bool | None:
        """Conjunction of the per-shard certification verdicts."""
        verdicts = [outcome.serialisable for outcome in self.shards]
        if any(verdict is None for verdict in verdicts):
            return None
        return all(verdicts)

    @property
    def legal(self) -> bool | None:
        verdicts = [outcome.legal for outcome in self.shards]
        if any(verdict is None for verdict in verdicts):
            return None
        return all(verdicts)

    def scheduler_description(self) -> dict[str, Any]:
        description = dict(self.shards[0].scheduler_description)
        description["shards"] = len(self.shards)
        description["inter_shard"] = dict(self.coordinator)
        return description


class ShardedEngine:
    """Drive a fleet of per-shard engines to a deterministic joint result."""

    def __init__(
        self,
        spec: ScenarioSpec,
        shard_map: ShardMap | None = None,
        *,
        mode: str | None = None,
        round_ticks: int = DEFAULT_ROUND_TICKS,
        mp_context: str | None = None,
        certify: bool | None = None,
        check_legality: bool = False,
    ):
        """Args:
            spec: the scenario to run (its ``shards`` / ``shard_mode``
                fields provide defaults for ``shard_map`` and ``mode``).
            shard_map: explicit partition; defaults to the CRC-32 map over
                ``spec.shards`` shards.
            mode: ``"inprocess"`` (oracle) or ``"multiprocess"``.
            round_ticks: barrier spacing; part of the deterministic
                configuration (see :data:`DEFAULT_ROUND_TICKS`).
            mp_context: multiprocessing start method for multiprocess mode
                (``spawn`` default, as in the sweep runner; tests may pick
                ``fork`` for speed).
            certify: post-hoc certify each shard's committed projection in
                the worker; defaults to ``bool(spec.certify)``.
            check_legality: also replay-check legality when certifying.
        """
        if shard_map is None:
            shard_map = ShardMap(shards=getattr(spec, "shards", 1))
        if mode is None:
            mode = getattr(spec, "shard_mode", "inprocess")
        if mode not in ("inprocess", "multiprocess"):
            raise SimulationError(f"unknown shard mode {mode!r}")
        if spec.certify == "stream":
            raise SimulationError(
                "sharded runs certify per shard post-hoc; certify='stream' "
                "is the single-engine online path"
            )
        if round_ticks < 1:
            raise SimulationError(f"round_ticks must be >= 1, got {round_ticks}")
        if certify is None:
            certify = bool(spec.certify)
        self.spec = spec
        self.shard_map = shard_map
        self.mode = mode
        self.round_ticks = round_ticks
        self.mp_context = mp_context or "spawn"
        self.certify = certify
        self.check_legality = check_legality
        self._finished = False

    def run(self) -> ShardedRunResult:
        """Run the fleet to completion (single-use, like the plain engine)."""
        if self._finished:
            raise SimulationError("engine instances are single-use; create a new one")
        self._finished = True
        payloads = _build_payloads(
            self.spec,
            self.shard_map,
            certify=self.certify,
            check_legality=self.check_legality,
        )
        if self.mode == "multiprocess":
            transport = _ProcessTransport(payloads, self.mp_context)
        else:
            transport = _LocalTransport(payloads)
        coordinator = InterShardCoordinator(self.shard_map)
        max_ticks = int(self.spec.engine_params.get("max_ticks", _DEFAULT_MAX_TICKS))
        try:
            directives: list[list[tuple]] = [[] for _ in range(self.shard_map.shards)]
            horizon = 0
            rounds = 0
            stalls = 0
            while True:
                horizon = min(horizon + self.round_ticks, max_ticks)
                reports = transport.round(directives, horizon)
                rounds += 1
                directives, progress = coordinator.process_round(reports)
                busy = any(report.busy for report in reports)
                if not busy and not any(directives):
                    break
                # Vote polls alone are housekeeping, not work: a round that
                # produced no decisions, no tick movement, no messages and
                # no resolutions is a distributed stall even while ballots
                # keep circulating (a ring of mutually deferring commits).
                substantive = any(
                    directive[0] != "vote"
                    for shard_directives in directives
                    for directive in shard_directives
                )
                if progress or substantive:
                    stalls = 0
                    continue
                stalls += 1
                if stalls < STALL_PATIENCE_ROUNDS:
                    continue
                stalls = 0
                breaker = coordinator.break_stall()
                if breaker is None:
                    # Nothing cross-shard left to sacrifice: the remaining
                    # frames are locally wedged, exactly like a plain run
                    # whose force-wake found no runnable frame.  Finalise.
                    break
                directives = [
                    polls + aborts for polls, aborts in zip(directives, breaker)
                ]
            outcomes = transport.finalize()
        finally:
            transport.close()
        shards = tuple(
            ShardOutcome(
                index=payload["index"],
                metrics=payload["metrics"],
                scheduler_description=payload["scheduler_description"],
                committed=tuple(payload["committed"]),
                aborted=tuple(payload["aborted"]),
                final_states=payload["final_states"],
                tracker_live_records=payload["tracker_live_records"],
                serialisable=payload["serialisable"],
                legal=payload["legal"],
            )
            for payload in sorted(outcomes, key=lambda entry: entry["index"])
        )
        return ShardedRunResult(
            shards=shards,
            metrics=merge_run_metrics([outcome.metrics for outcome in shards]),
            coordinator=coordinator.describe(),
            mode=self.mode,
            rounds=rounds,
            shard_map=self.shard_map,
        )
