"""Inter-shard coordination: the paper's modularity theorem, one level up.

The modular scheduler (``scheduler/modular.py``) composes *per-object*
synchronisers under an *inter-object* coordinator that only sees
transaction-level precedence.  Sharding applies the same construction at
the next level: each shard runs a complete scheduler over its own
objects (the "synchroniser" of the composition), and the
:class:`InterShardCoordinator` arbitrates only what crosses shard
boundaries — remote invocation routing, transaction-level precedence
edges, commit votes, and global commit/abort decisions.  By the paper's
theorem the composition is again a correct scheduler, and the post-hoc
certifier checks the claim per shard on every test run.

Everything here is barrier-synchronous and deterministic: the driver
collects one :class:`ShardReport` per shard per tick round, feeds them
to :meth:`InterShardCoordinator.process_round` in shard-index order, and
ships the returned per-shard directive lists back before the next round.
No decision depends on wall-clock, process identity, or arrival order
within a round — which is why the multiprocess transport is bit-identical
to the in-process oracle.

Commit protocol (two-phase, optimistic presumed-abort):

* a cross-shard transaction that finishes its body is *held* on its home
  shard, which emits a ``("prepared", gid)`` note;
* the coordinator then polls every participant (home included) with
  ``("vote", gid)`` directives each round; shards answer commit / defer /
  abort from their local scheduler's commit gate;
* when every participant votes commit *in the same round*, the
  coordinator issues ``("commit", gid)`` directives; any abort vote (or a
  locally-detected abort note) resolves the transaction as aborted
  everywhere.  A commit vote is a promise — between the vote and the
  commit directive the participant must not abort the transaction
  locally; the engine keeps held/session state out of local victim
  selection, which closes the gap for every abort source the simulator
  has (see DESIGN.md for the limitation discussion).

Precedence and deadlock: each shard's :class:`ShardStepTracker` observes
the steps of cross-shard transactions and reports conflict edges
(recorded → requester) up to the coordinator, which accumulates them in
a transaction-level DiGraph.  An edge that would close a cycle aborts
the requester — the same rule, and literally the same frontier GC
(:func:`~repro.scheduler.modular.prune_unreachable`), as the modular
scheduler's inter-object coordinator.  Distributed stalls that produce
no edges (blocked frames on several shards with no local cycle) are
broken by aborting the *youngest* unresolved cross transaction after a
full zero-progress round.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import networkx as nx

from ..core.errors import SimulationError
from ..core.operations import LocalStep
from ..scheduler.modular import prune_unreachable
from .map import ShardMap

__all__ = ["ShardReport", "ShardStepTracker", "InterShardCoordinator"]

#: Abort reason used when the coordinator breaks a distributed stall.
STALL_REASON = "inter-shard stall: no shard progressed"

#: Abort reason used when a precedence edge would close a cross-shard cycle.
CYCLE_REASON = "inter-shard precedence cycle"


@dataclass
class ShardReport:
    """One shard's outcome for one tick round (plain, picklable data)."""

    index: int
    decisions: int
    tick: int
    busy: bool
    messages: list[tuple] = field(default_factory=list)
    notes: list[tuple] = field(default_factory=list)
    edges: list[tuple[str, str]] = field(default_factory=list)


class ShardStepTracker:
    """Per-shard observer turning cross-transaction steps into edges.

    Lives inside the shard worker (engine-side of the barrier).  The
    engine calls :meth:`note_step` for every executed step of a
    cross-shard transaction — home transactions classified cross at
    submission and remote sessions alike.  Conflicting steps of two
    different cross transactions on the same object yield a precedence
    edge ``recorded → requester``, deduplicated locally and drained into
    the round report.  Records are dropped the moment the coordinator
    resolves a transaction (commit or abort directives double as
    ``forget`` signals), so retained state is O(live cross transactions),
    never O(history) — the same bound the modular scheduler's GC enforces
    one level down.
    """

    def __init__(self, step_conflicts: Any):
        self._conflicts = step_conflicts
        self._steps: dict[str, list[tuple[str, LocalStep]]] = {}
        self._emitted: set[tuple[str, str]] = set()
        self._edges: list[tuple[str, str]] = []

    def note_step(self, info: Any, step: LocalStep) -> None:
        gid = info.top_level_id
        spec = self._conflicts[step.object_name]
        records = self._steps.setdefault(step.object_name, [])
        for other_gid, other_step in records:
            if other_gid != gid and spec.steps_conflict(other_step, step):
                edge = (other_gid, gid)
                if edge not in self._emitted:
                    self._emitted.add(edge)
                    self._edges.append(edge)
        records.append((gid, step))

    def forget(self, gid: str) -> None:
        """Drop a resolved transaction's records and emitted edges."""
        for object_name in list(self._steps):
            kept = [entry for entry in self._steps[object_name] if entry[0] != gid]
            if kept:
                self._steps[object_name] = kept
            else:
                del self._steps[object_name]
        self._emitted = {edge for edge in self._emitted if gid not in edge}

    def drain_edges(self) -> list[tuple[str, str]]:
        edges, self._edges = self._edges, []
        return edges

    def live_records(self) -> int:
        return sum(len(records) for records in self._steps.values())


@dataclass
class _CrossTxn:
    """Coordinator-side state of one cross-shard transaction."""

    gid: str
    home: int
    sequence: int
    participants: set[int] = field(default_factory=set)
    state: str = "running"  # running -> voting -> resolved
    votes: dict[int, str] = field(default_factory=dict)
    outcome: str = ""


class InterShardCoordinator:
    """Barrier-synchronous arbiter over the cross-shard transaction set."""

    def __init__(self, shard_map: ShardMap, *, gc_interval: int = 64):
        self._map = shard_map
        self._gc_interval = max(1, gc_interval)
        self._txns: dict[str, _CrossTxn] = {}
        self._sequence = itertools.count(1)
        # remote_id -> shard index awaiting the result.
        self._pending_results: dict[str, int] = {}
        self._precedence = nx.DiGraph()
        self._resolved_since_gc = 0
        self._last_tick: dict[int, int] = {}
        # Observability (surfaces in the sharded result's description).
        self.commits_decided = 0
        self.aborts_decided = 0
        self.stall_aborts = 0
        self.cycle_aborts = 0
        self.gc_pruned_records = 0

    # ------------------------------------------------------------------
    # Round processing
    # ------------------------------------------------------------------
    def process_round(self, reports: Sequence[ShardReport]) -> tuple[list[list[tuple]], bool]:
        """Ingest one round of shard reports; emit next-round directives.

        Returns ``(directives, progress)`` where ``directives[i]`` is the
        ordered list for shard ``i`` and ``progress`` reflects whether the
        fleet moved: scheduling decisions, tick advances, cross-shard
        messages, prepared/aborted notes, or commit/abort resolutions.
        Vote traffic alone is *not* progress — a ring of mutually
        deferring transactions must trip the stall breaker, not disguise
        itself as liveness.
        """
        directives: list[list[tuple]] = [[] for _ in range(self._map.shards)]
        progress = False

        for report in sorted(reports, key=lambda entry: entry.index):
            if report.decisions:
                progress = True
            if report.tick != self._last_tick.get(report.index):
                self._last_tick[report.index] = report.tick
                progress = True
            for edge in report.edges:
                if self._note_edge(edge, directives):
                    progress = True
            for message in report.messages:
                if self._route_message(report.index, message, directives):
                    progress = True
            for note in report.notes:
                if self._ingest_note(report.index, note, directives):
                    progress = True

        if self._settle_votes(directives):
            progress = True
        self._issue_vote_polls(directives)
        if self._resolved_since_gc >= self._gc_interval:
            self._collect(directives)
        return directives, progress

    def break_stall(self) -> list[list[tuple]] | None:
        """Abort the youngest unresolved cross transaction, if any.

        Called by the driver after a zero-progress round while shards are
        still busy.  Returns abort directives, or ``None`` when no cross
        transaction is left to sacrifice — in that case the remaining
        frames are locally wedged and the driver finalises, mirroring the
        plain engine's force-wake exhaustion semantics.
        """
        unresolved = [txn for txn in self._txns.values() if txn.state != "resolved"]
        if not unresolved:
            return None
        victim = max(unresolved, key=lambda txn: txn.sequence)
        directives: list[list[tuple]] = [[] for _ in range(self._map.shards)]
        self._resolve_abort(victim, STALL_REASON, directives)
        self.stall_aborts += 1
        return directives

    def unresolved(self) -> int:
        return sum(1 for txn in self._txns.values() if txn.state != "resolved")

    def describe(self) -> dict[str, Any]:
        return {
            "shards": self._map.shards,
            "cross_transactions": len(self._txns),
            "commits_decided": self.commits_decided,
            "aborts_decided": self.aborts_decided,
            "stall_aborts": self.stall_aborts,
            "cycle_aborts": self.cycle_aborts,
            "gc_pruned_records": self.gc_pruned_records,
            "precedence_nodes": self._precedence.number_of_nodes(),
        }

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _txn(self, gid: str, home: int) -> _CrossTxn:
        txn = self._txns.get(gid)
        if txn is None:
            txn = _CrossTxn(gid=gid, home=home, sequence=next(self._sequence))
            self._txns[gid] = txn
        return txn

    def _route_message(self, sender: int, message: tuple, directives: list[list[tuple]]) -> bool:
        kind = message[0]
        if kind == "invoke":
            _, remote_id, gid, object_name, method_name, arguments = message
            txn = self._txn(gid, sender)
            if txn.state == "resolved":
                # The home shard already learned the abort through its own
                # directives; drop the straggler.
                return False
            owner = self._map.shard_of(object_name)
            txn.participants.add(owner)
            if sender != txn.home:
                txn.participants.add(sender)
            self._pending_results[remote_id] = sender
            directives[owner].append(
                ("invoke", remote_id, gid, object_name, method_name, arguments)
            )
            return True
        if kind == "result":
            _, remote_id, gid, value = message
            requester = self._pending_results.pop(remote_id, None)
            txn = self._txns.get(gid)
            if requester is None or txn is None or txn.state == "resolved":
                return False
            directives[requester].append(("result", remote_id, value))
            return True
        raise SimulationError(f"unknown inter-shard message {message!r}")

    def _ingest_note(self, sender: int, note: tuple, directives: list[list[tuple]]) -> bool:
        kind = note[0]
        if kind == "prepared":
            gid = note[1]
            # A transaction can be classified cross at submission yet never
            # actually invoke remotely this attempt; its prepare still must
            # be answered, so register it here (voters = home alone).
            txn = self._txn(gid, sender)
            if txn.state == "resolved":
                return False
            txn.state = "voting"
            txn.votes.clear()
            return True
        if kind == "aborted":
            _, gid, reason = note
            txn = self._txns.get(gid)
            if txn is None or txn.state == "resolved":
                return False
            self._resolve_abort(txn, reason, directives, skip={sender})
            return True
        if kind == "vote":
            _, gid, verdict, reason = note
            txn = self._txns.get(gid)
            if txn is None or txn.state != "voting":
                return False
            txn.votes[sender] = verdict
            if verdict == "abort":
                self._resolve_abort(txn, reason or "participant voted abort", directives)
                return True
            return False  # commit/defer votes settle later, and are not progress
        raise SimulationError(f"unknown inter-shard note {note!r}")

    def _note_edge(self, edge: tuple[str, str], directives: list[list[tuple]]) -> bool:
        recorded, requester = edge
        requesting = self._txns.get(requester)
        if requesting is None or requesting.state == "resolved":
            return False
        recorded_txn = self._txns.get(recorded)
        if recorded_txn is not None and recorded_txn.outcome == "aborted":
            return False  # edges from aborted work never constrain anyone
        if (
            requester in self._precedence
            and recorded in self._precedence
            and nx.has_path(self._precedence, requester, recorded)
        ):
            # The edge would close a cycle: abort the requester, exactly as
            # the modular inter-object coordinator does one level down.
            self._resolve_abort(requesting, CYCLE_REASON, directives)
            self.cycle_aborts += 1
            return True
        self._precedence.add_edge(recorded, requester)
        return False

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _voters(self, txn: _CrossTxn) -> set[int]:
        return {txn.home, *txn.participants}

    def _settle_votes(self, directives: list[list[tuple]]) -> bool:
        """Commit every voting transaction whose ballot is unanimous."""
        resolved_any = False
        for txn in list(self._txns.values()):
            if txn.state != "voting":
                continue
            voters = self._voters(txn)
            if all(txn.votes.get(shard) == "commit" for shard in voters):
                txn.state = "resolved"
                txn.outcome = "committed"
                for shard in sorted(voters):
                    directives[shard].append(("commit", txn.gid))
                self.commits_decided += 1
                self._note_resolved()
                resolved_any = True
        return resolved_any

    def _issue_vote_polls(self, directives: list[list[tuple]]) -> None:
        for txn in self._txns.values():
            if txn.state != "voting":
                continue
            txn.votes.clear()
            for shard in sorted(self._voters(txn)):
                directives[shard].append(("vote", txn.gid))

    def _resolve_abort(
        self,
        txn: _CrossTxn,
        reason: str,
        directives: list[list[tuple]],
        skip: set[int] | None = None,
    ) -> None:
        if txn.state == "resolved":
            return
        txn.state = "resolved"
        txn.outcome = "aborted"
        for shard in sorted(self._voters(txn)):
            if skip and shard in skip:
                continue
            directives[shard].append(("abort", txn.gid, reason))
        # Results still in flight for this transaction are now meaningless.
        self._pending_results = {
            remote_id: requester
            for remote_id, requester in self._pending_results.items()
            if not remote_id.startswith(f"{txn.gid}/")
        }
        self.aborts_decided += 1
        self._note_resolved()

    def _note_resolved(self) -> None:
        self._resolved_since_gc += 1

    def _collect(self, directives: list[list[tuple]]) -> None:
        """Frontier GC, shared with the modular scheduler's coordinator.

        A resolved transaction's steps (held in the shard-side trackers)
        are the only source of new out-edges, and by the frontier argument
        of :func:`~repro.scheduler.modular.prune_unreachable` a resolved
        node unreachable from every live node can never join a future
        cycle.  Dropping it here therefore also licenses the shards to
        drop its step records — the ``("forget", gid)`` directives — so
        tracker memory is bounded by the live frontier, not the history.
        """
        live = [gid for gid, txn in self._txns.items() if txn.state != "resolved"]
        removed, keep = prune_unreachable(self._precedence, live)
        self.gc_pruned_records += removed
        live_set = set(live)
        for gid in list(self._txns):
            if gid not in live_set and gid not in keep:
                del self._txns[gid]
                for shard_directives in directives:
                    shard_directives.append(("forget", gid))
        self._resolved_since_gc = 0
