"""Self-checking sweep demo: ``python -m repro.sweep``.

Runs a small hotspot contention grid twice — once serially and once
fanned out over ``multiprocessing`` workers — asserts the two runs
produce identical metrics rows, and prints the result tables.  CI runs
this on every push (``--scenarios 4 --workers 4``) so the parallel path
is exercised continuously; it exits non-zero on any determinism
divergence.
"""

from __future__ import annotations

import argparse
import sys
import time

from .aggregate import print_report, sweep_report
from .runner import DEFAULT_MP_CONTEXT, SweepRunner
from .spec import Axis, ScenarioSpec, SweepSpec

COLUMNS = [
    "hot_probability", "scheduler", "committed", "aborts", "makespan",
    "blocked_ticks", "throughput", "serialisable",
]


def demo_sweep(scenarios: int) -> SweepSpec:
    """A hotspot contention grid with *at least* ``scenarios`` cells.

    The grid factors the request into schedulers × probabilities, so it can
    overshoot non-factorable counts (capped at 16 cells); ``main`` trims
    the expanded scenario list to the exact requested count before running.
    """
    schedulers = ("n2pl", "nto", "certifier", "single-active")
    probabilities = (0.1, 0.3, 0.6, 0.9)
    scheduler_count = min(len(schedulers), max(1, scenarios))
    probability_count = min(
        len(probabilities), max(1, -(-scenarios // scheduler_count))  # ceil division
    )
    return SweepSpec(
        name="demo",
        base=ScenarioSpec(
            workload="hotspot",
            scheduler="n2pl",
            seed=1988,
            workload_params={
                "transactions": 10,
                "hot_objects": 2,
                "cold_objects": 16,
                "operations_per_transaction": 3,
                "seed": 1988,
            },
        ),
        axes=(
            Axis(
                "hot_probability",
                probabilities[:probability_count],
                target="workload_params.hot_probability",
            ),
            Axis("scheduler", schedulers[:scheduler_count]),
        ),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenarios", type=int, default=4, help="scenarios to run (1-16)"
    )
    parser.add_argument("--workers", type=int, default=4, help="pool size for the parallel run")
    parser.add_argument(
        "--mp-context",
        default=DEFAULT_MP_CONTEXT,
        help="multiprocessing start method (default: %(default)s)",
    )
    arguments = parser.parse_args(argv)

    sweep = demo_sweep(arguments.scenarios)
    roundtrips = SweepSpec.from_json(sweep.to_json()).to_json_dict() == sweep.to_json_dict()
    scenarios = sweep.scenarios()[: max(1, arguments.scenarios)]
    print(
        f"sweep {sweep.name!r}: running {len(scenarios)} of {len(sweep)} grid cells, "
        f"JSON spec round-trips {'OK' if roundtrips else 'BROKEN'}"
    )

    started = time.perf_counter()
    serial_rows = SweepRunner(scenarios, workers=0).run_rows()
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel_rows = SweepRunner(
        scenarios, workers=arguments.workers, mp_context=arguments.mp_context
    ).run_rows()
    parallel_seconds = time.perf_counter() - started

    report = sweep_report(
        sweep.name,
        serial_rows,
        group_by=("scheduler",),
        metrics=("committed", "aborts", "makespan"),
    )
    print_report(report, columns=COLUMNS)
    print(
        f"\nserial {serial_seconds:.3f}s · parallel ({arguments.workers} workers, "
        f"{arguments.mp_context}) {parallel_seconds:.3f}s"
    )

    if not roundtrips:
        print("ROUND-TRIP FAILURE: from_json(to_json(sweep)) differs from the sweep", file=sys.stderr)
        return 1
    if serial_rows != parallel_rows:
        print("DETERMINISM FAILURE: parallel rows differ from serial rows", file=sys.stderr)
        return 1
    print(f"determinism check: {len(serial_rows)} parallel rows identical to serial rows")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
