"""Scenario execution: serial or fanned out over ``multiprocessing`` workers.

:func:`run_scenario` is the single execution path: it constructs the
workload and scheduler named by a :class:`~repro.sweep.spec.ScenarioSpec`
(inside the *current* process), runs a fresh
:class:`~repro.simulation.engine.SimulationEngine` under the spec's seed,
and summarises the run as a flat metrics row.  :class:`SweepRunner` maps
that function over a sweep's scenario list either serially or with a
worker pool.

Determinism
-----------

A scenario's metrics row is a pure function of its spec: the engine RNG
is seeded from ``spec.seed``, workload generation from the seeds inside
``workload_params``, and nothing about the host, the process, or the
wall-clock leaks into the row (per-scenario timings live on
:class:`ScenarioResult` *next to* the row, never inside it).  Results are
returned in scenario order regardless of worker completion order, so a
parallel run returns rows identical to a serial run of the same spec —
``tests/sweep/test_runner.py`` asserts exactly that, and
``benchmarks/bench_e13_sweep_scaling.py`` re-checks it on every recorded
scaling run.

Spawn safety
------------

Workers receive pickled :class:`ScenarioSpec` dataclasses (plain strings,
numbers and dicts) and construct every engine/workload/scheduler object
in-worker; no live simulation state ever crosses a process boundary.  The
pool uses the ``spawn`` start method by default, so the fan-out behaves
identically on platforms without ``fork`` and never inherits ambient
interpreter state; tests may select ``fork`` for speed where available.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..analysis import certify_run
from ..scheduler import make_scheduler
from ..simulation import SimulationEngine
from ..simulation.metrics import RunResult
from ..simulation.workloads import make_workload
from .spec import ScenarioSpec, SweepSpec

#: Default start method for worker processes (see module docstring).
DEFAULT_MP_CONTEXT = "spawn"


@dataclass
class ScenarioResult:
    """One scenario's outcome: the deterministic row plus run bookkeeping.

    ``row`` is the deterministic metrics payload (identical across serial
    and parallel runs of the same spec); ``elapsed_seconds`` and
    ``worker_pid`` describe *this* execution of it and are deliberately
    kept out of the row.
    """

    index: int
    spec: ScenarioSpec
    row: dict[str, Any]
    elapsed_seconds: float
    worker_pid: int


def build_engine(spec: ScenarioSpec) -> SimulationEngine:
    """Construct the engine for a scenario, with its transactions submitted.

    Args:
        spec: the scenario to materialise.

    Returns:
        A single-use :class:`SimulationEngine` ready for :meth:`run`.
    """
    workload = make_workload(spec.workload, **spec.workload_params)
    object_base, transaction_specs = workload.build()
    scheduler_kwargs = dict(spec.scheduler_kwargs)
    if spec.modular_strategy_from_workload:
        scheduler_kwargs.setdefault("per_object_strategy", workload.modular_strategy_map())
    scheduler = make_scheduler(spec.scheduler, **scheduler_kwargs)
    engine_params = dict(spec.engine_params)
    if spec.certify == "stream":
        engine_params.setdefault("certify", "stream")
    engine = SimulationEngine(object_base, scheduler, seed=spec.seed, **engine_params)
    # Streaming workloads (any with an arrival_process hook) enter as an
    # open arrival stream; everything else as the classic closed batch.
    arrival_factory = getattr(workload, "arrival_process", None)
    if arrival_factory is not None:
        engine.submit_stream(transaction_specs, arrival_factory())
    else:
        engine.submit_all(transaction_specs)
    return engine


def summarise_run(
    result: RunResult,
    scheduler_name: str,
    *,
    certify: bool | str = True,
    check_legality: bool = False,
) -> dict[str, Any]:
    """Flatten a run into the metrics row the experiments report.

    Args:
        result: the finished run.
        scheduler_name: registry name recorded in the ``scheduler`` column.
        certify: certify the committed projection and record the verdict
            in a ``serialisable`` column.  ``"stream"`` reads the rolling
            report the engine's online certifier built during the run
            instead of re-certifying post-hoc.
        check_legality: also replay-check legality during certification.

    Returns:
        The flat row (plain scalars only — JSON- and comparison-safe).
    """
    row = _metrics_row(result.metrics, scheduler_name)
    if certify == "stream":
        report = result.streaming_report
        if report is None:
            raise ValueError(
                "certify='stream' requires the engine to have run with "
                "certify='stream' (no streaming report on this RunResult)"
            )
        row["serialisable"] = report.serialisable
        if check_legality:
            row["legal"] = report.legal
    elif certify:
        report = certify_run(result, check_legality=check_legality)
        row["serialisable"] = report.serialisable
        if check_legality:
            row["legal"] = report.legal
    return row


def _metrics_row(metrics, scheduler_name: str) -> dict[str, Any]:
    """The metric columns shared by plain and sharded rows."""
    return {
        "scheduler": scheduler_name,
        "committed": metrics.committed,
        "commit_rate": metrics.commit_rate,
        "aborts": metrics.aborted_attempts,
        "gave_up": metrics.gave_up,
        "deadlocks": metrics.aborts_by_reason.get("deadlock", 0),
        "ts_aborts": metrics.aborts_by_reason.get("timestamp", 0),
        "validation_aborts": metrics.aborts_by_reason.get("validation", 0),
        "cascade_aborts": metrics.aborts_by_reason.get("cascade", 0),
        "inter_object_aborts": metrics.aborts_by_reason.get("inter-object", 0),
        "makespan": metrics.total_ticks,
        "blocked_ticks": metrics.blocked_ticks,
        "blocked_fraction": metrics.blocked_fraction,
        "parks": metrics.parks,
        "wakes": metrics.wakes,
        "wait_ticks": metrics.wait_ticks,
        "restarts": metrics.restarts,
        "delayed_restarts": metrics.delayed_restarts,
        "restart_delay_ticks": metrics.restart_delay_ticks,
        "wasted_fraction": metrics.wasted_fraction,
        "throughput": metrics.throughput,
        "arrived": metrics.arrived,
        "in_flight_peak": metrics.in_flight_peak,
        "mean_latency": metrics.mean_latency,
        "latency_max": metrics.latency_max,
        "live_state_peak": metrics.live_state_peak,
        "live_state_ratio": metrics.live_state_per_in_flight,
    }


def summarise_sharded_run(result, scheduler_name: str) -> dict[str, Any]:
    """Flatten a :class:`~repro.shard.engine.ShardedRunResult` into a row.

    Same columns as :func:`summarise_run` over the merged fleet metrics,
    plus the shard-level extras: ``shards``, ``rounds``,
    ``remote_invocations``, the coordinator's decision counters and the
    conjunction of the per-shard certification verdicts (certification
    runs *inside* the shard workers, so the verdicts are already on the
    result).
    """
    row = _metrics_row(result.metrics, scheduler_name)
    row["shards"] = len(result.shards)
    row["shard_rounds"] = result.rounds
    row["remote_invocations"] = result.metrics.remote_invocations
    row["cross_commits"] = result.coordinator["commits_decided"]
    row["cross_aborts"] = result.coordinator["aborts_decided"]
    if result.serialisable is not None:
        row["serialisable"] = result.serialisable
    if result.legal is not None:
        row["legal"] = result.legal
    return row


def run_sharded_scenario(spec: ScenarioSpec):
    """Run a ``shards > 1`` scenario; returns the ShardedRunResult."""
    # Imported lazily: repro.shard builds on the sweep layer (spec payloads),
    # so a module-level import here would be circular.
    from ..shard import ShardMap, ShardedEngine

    shard_map = ShardMap(shards=spec.shards, assignment=spec.shard_assignment)
    return ShardedEngine(spec, shard_map, check_legality=spec.check_legality).run()


def run_scenario(spec: ScenarioSpec, index: int = 0) -> ScenarioResult:
    """Execute one scenario in the current process.

    Args:
        spec: the scenario to run.
        index: the scenario's position in its sweep (passed through to
            the result so parallel completions can be re-ordered).

    Returns:
        The :class:`ScenarioResult` with the deterministic row, the
        scenario's tags merged in after the metric columns.
    """
    started = time.perf_counter()
    if spec.shards > 1:
        row = summarise_sharded_run(run_sharded_scenario(spec), spec.scheduler)
    else:
        engine = build_engine(spec)
        result = engine.run()
        row = summarise_run(
            result, spec.scheduler, certify=spec.certify, check_legality=spec.check_legality
        )
    row.update(spec.tags)
    return ScenarioResult(
        index=index,
        spec=spec,
        row=row,
        elapsed_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
    )


def _run_indexed(payload: tuple[int, ScenarioSpec]) -> ScenarioResult:
    """Pool worker entry point (top-level so it pickles under spawn)."""
    index, spec = payload
    return run_scenario(spec, index)


class SweepRunner:
    """Expand a sweep and execute it, serially or over a worker pool.

    Args:
        sweep: a :class:`SweepSpec` (expanded once, deterministically) or
            an explicit scenario sequence.
        workers: ``0`` or ``1`` runs in-process; ``n > 1`` fans scenarios
            out over ``n`` worker processes (capped at the scenario
            count).
        mp_context: ``multiprocessing`` start method for the pool
            (default :data:`DEFAULT_MP_CONTEXT`, i.e. ``"spawn"``).
        chunksize: scenarios handed to a worker per dispatch; ``1`` gives
            the best balance for heterogeneous scenario costs.
    """

    def __init__(
        self,
        sweep: SweepSpec | Sequence[ScenarioSpec] | Iterable[ScenarioSpec],
        *,
        workers: int = 0,
        mp_context: str = DEFAULT_MP_CONTEXT,
        chunksize: int = 1,
    ):
        if isinstance(sweep, SweepSpec):
            self.name = sweep.name
            self.scenarios: list[ScenarioSpec] = sweep.scenarios()
        else:
            self.name = "scenarios"
            self.scenarios = list(sweep)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.mp_context = mp_context
        self.chunksize = chunksize

    def run(self) -> list[ScenarioResult]:
        """Execute every scenario; results come back in scenario order.

        Raises:
            RuntimeError: when a ``spawn``/``forkserver`` pool is requested
                from a non-importable ``__main__`` (e.g. a ``python -``
                stdin script) — CPython would otherwise respawn crashing
                workers forever instead of failing.
        """
        payloads = list(enumerate(self.scenarios))
        if not payloads:
            return []
        pool_size = min(self.workers, len(payloads))
        if pool_size <= 1:
            return [_run_indexed(payload) for payload in payloads]
        self._check_spawnable()
        context = multiprocessing.get_context(self.mp_context)
        # ProcessPoolExecutor rather than multiprocessing.Pool: when a worker
        # dies before or during a task (e.g. a spawn re-import failure in a
        # parent without the __main__ guard) the executor raises
        # BrokenProcessPool, whereas Pool would respawn crashing workers
        # forever and hang the sweep.
        try:
            with ProcessPoolExecutor(max_workers=pool_size, mp_context=context) as executor:
                results = list(
                    executor.map(_run_indexed, payloads, chunksize=self.chunksize)
                )
        except BrokenProcessPool as exc:
            raise RuntimeError(
                f"sweep worker pool (mp_context={self.mp_context!r}) broke: a worker "
                "process died before completing its scenario.  With the spawn start "
                "method this usually means the calling script creates the "
                "SweepRunner at module top level — wrap the call in an "
                "`if __name__ == '__main__':` guard, or use workers=0 (serial) or "
                "mp_context='fork' where available."
            ) from exc
        # ``Executor.map`` already preserves input order; the sort is a cheap
        # belt-and-braces guarantee the determinism tests rely on.
        return sorted(results, key=lambda scenario_result: scenario_result.index)

    def _check_spawnable(self) -> None:
        """Fail fast when spawn cannot re-import the parent's ``__main__``.

        ``spawn``/``forkserver`` workers re-run the parent's main module.
        When that module came from a non-existent path (``python -``
        heredocs report ``<stdin>``), every worker dies before connecting
        and ``Pool.map`` respawns replacements forever — an unbounded
        hang.  Detect the situation up front and point at the fixes.
        """
        if self.mp_context not in ("spawn", "forkserver"):
            return
        main_file = getattr(sys.modules.get("__main__"), "__file__", None)
        if main_file is not None and not os.path.exists(main_file):
            raise RuntimeError(
                f"cannot fan out with mp_context={self.mp_context!r}: the current "
                f"__main__ module ({main_file!r}) is not an importable file, so "
                "spawned workers cannot start.  Run the sweep from a real script "
                "or module, use workers=0 (serial), or pass mp_context='fork' "
                "where available."
            )

    def run_rows(self) -> list[dict[str, Any]]:
        """Execute the sweep and return just the metrics rows, in order."""
        return [scenario_result.row for scenario_result in self.run()]
