"""Declarative scenario and sweep specifications.

The paper's claims are comparative (blocking vs restarting schedulers,
step vs operation conflict granularity, modular vs uniform strategy
mixes), so every experiment is a *grid*: a base configuration plus a few
axes whose cartesian product yields the scenarios to run.  This module
turns that shape into data:

* :class:`ScenarioSpec` — one fully-determined scenario: a workload name
  plus constructor parameters (resolved through
  :data:`~repro.simulation.workloads.WORKLOAD_REGISTRY`), a scheduler
  name plus keyword arguments (resolved through
  :data:`~repro.scheduler.SCHEDULER_FACTORIES`), the engine seed and
  engine options, and free-form ``tags`` that are merged into the
  resulting metrics row (the experiment's axis columns).
* :class:`Axis` / :class:`AxisPoint` — one grid dimension.  A scalar
  point sets a single dotted-path target (e.g.
  ``workload_params.hot_probability``); an :class:`AxisPoint` carries a
  display label plus an arbitrary override mapping, which is how
  non-orthogonal configurations (E5's coupled scheduler+kwargs choices)
  stay declarative.
* :class:`SweepSpec` — a named base scenario plus axes;
  :meth:`SweepSpec.scenarios` expands the grid in deterministic
  nested-loop order (first axis outermost).

Every specification is validated eagerly at construction (unknown
workload/scheduler names, unknown workload or engine parameters,
malformed override paths all raise
:class:`~repro.core.errors.SweepSpecError`) and is canonicalised to
JSON-serialisable values, so ``from_json(to_json(spec)) == spec`` holds
for every valid spec and a spec can be pickled to a ``multiprocessing``
worker or stored next to a results file verbatim.
"""

from __future__ import annotations

import dataclasses
import inspect
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from ..core.errors import SweepSpecError
from ..scheduler import GATE_MODES, SCHEDULER_FACTORIES, make_restart_policy
from ..simulation import SimulationEngine
from ..simulation.workloads import WORKLOAD_REGISTRY

#: Engine constructor keywords a scenario may set — derived from the
#: :class:`SimulationEngine` signature so the whitelist tracks the engine
#: by construction (``seed`` is a first-class ScenarioSpec field and the
#: positional arguments are supplied by the runner).
ENGINE_PARAM_NAMES = frozenset(
    name
    for name in inspect.signature(SimulationEngine.__init__).parameters
    if name not in {"self", "object_base", "scheduler", "seed"}
)

_SCALAR_FIELDS = frozenset(
    {
        "workload",
        "scheduler",
        "seed",
        "certify",
        "check_legality",
        "modular_strategy_from_workload",
        "shards",
        "shard_mode",
    }
)
_MAPPING_FIELDS = frozenset(
    {"workload_params", "scheduler_kwargs", "engine_params", "tags", "shard_assignment"}
)

#: Execution modes of the sharded engine (``repro.shard``): the in-process
#: oracle and the one-worker-process-per-shard transport it must match
#: bit for bit.
SHARD_MODES = ("inprocess", "multiprocess")

#: Metrics-row columns produced by :func:`repro.sweep.runner.summarise_run`.
#: Tags (and hence axis names) must not shadow them: ``row.update(tags)``
#: would silently overwrite a *measured* value with an axis label, and the
#: corruption would be identical in serial and parallel runs, so the
#: determinism checks could never catch it.  ``scheduler`` is exempt — the
#: scheduler axis deliberately labels rows with the name already recorded
#: in that column.
RESERVED_ROW_COLUMNS = frozenset(
    {
        "committed",
        "commit_rate",
        "aborts",
        "gave_up",
        "deadlocks",
        "ts_aborts",
        "validation_aborts",
        "cascade_aborts",
        "inter_object_aborts",
        "makespan",
        "blocked_ticks",
        "blocked_fraction",
        "parks",
        "wakes",
        "wait_ticks",
        "restarts",
        "delayed_restarts",
        "restart_delay_ticks",
        "wasted_fraction",
        "throughput",
        "arrived",
        "in_flight_peak",
        "mean_latency",
        "latency_max",
        "live_state_peak",
        "live_state_ratio",
        "serialisable",
        "legal",
        # Sharded-run extras (repro.sweep.runner.summarise_sharded_run).
        # ``shards`` is reserved too: an axis varying the shard count must
        # pick a different *name* (e.g. ``shard_count``) while targeting
        # the ``shards`` field, or its string label would overwrite the
        # measured integer column.
        "shards",
        "shard_rounds",
        "remote_invocations",
        "cross_commits",
        "cross_aborts",
    }
)


def _canonical(value: Any, *, where: str) -> Any:
    """Round ``value`` through JSON, raising :class:`SweepSpecError` if it can't.

    ``allow_nan=False`` keeps the emitted documents strict RFC 8259 JSON
    (Python's default would happily write ``NaN``/``Infinity`` literals
    that other parsers reject).
    """
    try:
        return json.loads(json.dumps(value, allow_nan=False))
    except (TypeError, ValueError) as exc:
        raise SweepSpecError(f"{where} must be JSON-serialisable, got {value!r}") from exc


def _workload_param_names(workload_class: type) -> frozenset[str]:
    """The constructor parameters of a registered workload dataclass."""
    return frozenset(
        spec_field.name for spec_field in dataclasses.fields(workload_class) if spec_field.init
    )


@dataclass
class ScenarioSpec:
    """One fully-determined scenario: workload × scheduler × seed × options.

    Args:
        workload: a :data:`~repro.simulation.workloads.WORKLOAD_REGISTRY` name.
        workload_params: constructor arguments of the workload dataclass
            (validated against its fields; must be JSON-serialisable).
        scheduler: a :func:`~repro.scheduler.make_scheduler` registry name.
        scheduler_kwargs: keyword arguments for the scheduler factory.
        seed: the engine's RNG seed (interleaving choice); workload
            generation seeds live in ``workload_params``.
        engine_params: extra :class:`~repro.simulation.engine.SimulationEngine`
            options (see :data:`ENGINE_PARAM_NAMES`).
        certify: run certification and record the verdict in the row's
            ``serialisable`` column.  ``True`` certifies post-hoc
            (:func:`~repro.analysis.certify.certify_run`), ``"stream"``
            runs the engine with the online
            :class:`~repro.analysis.streaming.StreamingCertifier` and
            reads the rolling report, ``False`` skips certification.
        check_legality: also replay-check legality during certification
            (slower; off by default, matching the benchmark harness).
        modular_strategy_from_workload: ask the built workload for its
            ``modular_strategy_map()`` and pass it to the scheduler factory
            as ``per_object_strategy`` (how E5 wires the modular scheduler
            without embedding per-object tables in the spec).
        shards: partition the object space over this many shards and run
            one engine per shard under the inter-shard coordinator
            (``repro.shard``); ``1`` (the default) is the plain
            single-engine path, bit for bit.
        shard_mode: ``"inprocess"`` runs every shard in the current
            interpreter (the determinism oracle); ``"multiprocess"`` runs
            one worker process per shard.  Ignored when ``shards == 1``.
        shard_assignment: explicit ``object name -> shard index`` pins for
            the :class:`~repro.shard.map.ShardMap` (names absent here fall
            back to the CRC-32 placement).
        tags: extra key/value pairs merged into the metrics row after the
            run — the sweep axes record their labels here.
    """

    workload: str
    scheduler: str
    workload_params: dict[str, Any] = field(default_factory=dict)
    scheduler_kwargs: dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    engine_params: dict[str, Any] = field(default_factory=dict)
    certify: bool | str = True
    check_legality: bool = False
    modular_strategy_from_workload: bool = False
    shards: int = 1
    shard_mode: str = "inprocess"
    shard_assignment: dict[str, int] = field(default_factory=dict)
    tags: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()
        self.workload_params = _canonical(self.workload_params, where="workload_params")
        self.scheduler_kwargs = _canonical(self.scheduler_kwargs, where="scheduler_kwargs")
        self.engine_params = _canonical(self.engine_params, where="engine_params")
        self.shard_assignment = _canonical(self.shard_assignment, where="shard_assignment")
        self.tags = _canonical(self.tags, where="tags")

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check the spec against the registries; raise :class:`SweepSpecError`."""
        if self.workload not in WORKLOAD_REGISTRY:
            raise SweepSpecError(
                f"unknown workload {self.workload!r}; "
                f"available: {', '.join(sorted(WORKLOAD_REGISTRY))}"
            )
        if self.scheduler not in SCHEDULER_FACTORIES:
            raise SweepSpecError(
                f"unknown scheduler {self.scheduler!r}; "
                f"available: {', '.join(sorted(SCHEDULER_FACTORIES))}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SweepSpecError(f"seed must be an int, got {self.seed!r}")
        if self.certify not in (True, False, "stream"):
            raise SweepSpecError(
                f"certify must be True, False or 'stream', got {self.certify!r}"
            )
        for mapping_name in ("workload_params", "scheduler_kwargs", "engine_params", "tags"):
            mapping = getattr(self, mapping_name)
            if not isinstance(mapping, Mapping):
                raise SweepSpecError(f"{mapping_name} must be a mapping, got {mapping!r}")
        workload_class = WORKLOAD_REGISTRY[self.workload]
        allowed = _workload_param_names(workload_class)
        unknown = sorted(set(self.workload_params) - allowed)
        if unknown:
            raise SweepSpecError(
                f"workload {self.workload!r} has no parameters {unknown}; "
                f"available: {', '.join(sorted(allowed))}"
            )
        # Workloads may validate parameter *values* eagerly too — the
        # streaming wrappers check their inner workload name/params and the
        # arrival process configuration here, so a typo'd arrival axis
        # fails at spec construction, not inside a worker process.
        validator = getattr(workload_class, "validate_params", None)
        if validator is not None:
            try:
                validator(self.workload_params)
            except Exception as exc:
                raise SweepSpecError(
                    f"workload {self.workload!r} rejects workload_params: {exc}"
                ) from exc
        unknown_engine = sorted(set(self.engine_params) - ENGINE_PARAM_NAMES)
        if unknown_engine:
            raise SweepSpecError(
                f"unknown engine parameters {unknown_engine}; "
                f"available: {', '.join(sorted(ENGINE_PARAM_NAMES))}"
            )
        # The factories declare their keywords explicitly, so binding the
        # kwargs against the factory signature catches typos eagerly —
        # before any worker process is spawned.
        factory = SCHEDULER_FACTORIES[self.scheduler]
        try:
            inspect.signature(factory).bind(**self.scheduler_kwargs)
        except TypeError as exc:
            raise SweepSpecError(
                f"scheduler {self.scheduler!r} rejects scheduler_kwargs "
                f"{sorted(self.scheduler_kwargs)}: {exc}"
            ) from exc
        # The cross-cutting scheduler axes carry registry *values*, not just
        # keyword names; validate them eagerly too so a typo'd policy name,
        # policy parameter or gate mode fails at spec construction, not
        # inside a worker.
        policy = self.scheduler_kwargs.get("restart_policy")
        if policy is not None:
            try:
                make_restart_policy(policy)
            except (KeyError, TypeError, ValueError) as exc:
                raise SweepSpecError(f"invalid restart policy {policy!r}: {exc}") from exc
        gate_mode = self.scheduler_kwargs.get("gate_mode")
        if gate_mode is not None and gate_mode not in GATE_MODES:
            raise SweepSpecError(
                f"unknown gate mode {gate_mode!r}; available: {', '.join(GATE_MODES)}"
            )
        shadowing = sorted(set(self.tags) & RESERVED_ROW_COLUMNS)
        if shadowing:
            raise SweepSpecError(
                f"tags {shadowing} would overwrite measured metrics-row columns; "
                "rename the tag/axis (e.g. prefix it with the parameter it varies)"
            )
        if self.modular_strategy_from_workload and not hasattr(
            workload_class, "modular_strategy_map"
        ):
            raise SweepSpecError(
                f"workload {self.workload!r} does not define modular_strategy_map(), "
                "required by modular_strategy_from_workload=True"
            )
        if not isinstance(self.shards, int) or isinstance(self.shards, bool):
            raise SweepSpecError(f"shards must be an int, got {self.shards!r}")
        if self.shards < 1:
            raise SweepSpecError(f"shards must be >= 1, got {self.shards}")
        if self.shard_mode not in SHARD_MODES:
            raise SweepSpecError(
                f"unknown shard_mode {self.shard_mode!r}; "
                f"available: {', '.join(SHARD_MODES)}"
            )
        if self.shards > 1 and self.certify == "stream":
            raise SweepSpecError(
                "certify='stream' is the single-engine online path; sharded "
                "runs certify each shard's committed projection post-hoc "
                "(use certify=True)"
            )
        if not isinstance(self.shard_assignment, Mapping):
            raise SweepSpecError(
                f"shard_assignment must be a mapping, got {self.shard_assignment!r}"
            )
        for name, index in self.shard_assignment.items():
            if not isinstance(name, str) or not name:
                raise SweepSpecError(
                    f"shard_assignment keys must be object names, got {name!r}"
                )
            if not isinstance(index, int) or isinstance(index, bool):
                raise SweepSpecError(
                    f"shard_assignment[{name!r}] must be an int, got {index!r}"
                )
            if not 0 <= index < self.shards:
                raise SweepSpecError(
                    f"shard_assignment[{name!r}] = {index} outside 0..{self.shards - 1}"
                )

    # -- description -----------------------------------------------------------

    def describe(self) -> str:
        """A short human-readable label (used in logs and progress output)."""
        parts = [f"workload={self.workload}", f"scheduler={self.scheduler}", f"seed={self.seed}"]
        parts.extend(f"{key}={value}" for key, value in self.tags.items())
        return " ".join(parts)

    # -- JSON round-trip --------------------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        """The spec as a plain JSON-serialisable dictionary."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json_dict` output (re-validates)."""
        known = {spec_field.name for spec_field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SweepSpecError(f"unknown ScenarioSpec fields {unknown}")
        return cls(**dict(data))

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_json_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_json_dict(json.loads(text))


@dataclass(frozen=True)
class AxisPoint:
    """One grid point: a display label plus the overrides it applies.

    ``overrides`` maps dotted paths (``"scheduler"``,
    ``"workload_params.hot_probability"``) to values; the label becomes
    the axis's tag value in the scenario's metrics row.
    """

    label: Any
    overrides: Mapping[str, Any]

    def to_json_dict(self) -> dict[str, Any]:
        return {"label": self.label, "overrides": dict(self.overrides)}

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "AxisPoint":
        return cls(label=data["label"], overrides=dict(data.get("overrides", {})))


def _validate_path(path: str) -> None:
    segments = path.split(".")
    if segments[0] in _SCALAR_FIELDS:
        if len(segments) != 1:
            raise SweepSpecError(f"override path {path!r} must not nest into {segments[0]!r}")
    elif segments[0] in _MAPPING_FIELDS:
        if len(segments) != 2 or not segments[1]:
            raise SweepSpecError(
                f"override path {path!r} must name exactly one key inside {segments[0]!r}"
            )
    else:
        raise SweepSpecError(
            f"override path {path!r} does not start with a ScenarioSpec field; "
            f"expected one of {', '.join(sorted(_SCALAR_FIELDS | _MAPPING_FIELDS))}"
        )


def _apply_override(data: dict[str, Any], path: str, value: Any) -> None:
    segments = path.split(".")
    if len(segments) == 1:
        data[segments[0]] = value
    else:
        data.setdefault(segments[0], {})[segments[1]] = value


@dataclass(frozen=True)
class Axis:
    """One sweep dimension: a name (tag/column label) plus its grid points.

    Args:
        name: the tag key recorded in every scenario's row for this axis.
        points: scalars or :class:`AxisPoint` instances.  A scalar ``v``
            is shorthand for ``AxisPoint(label=v, overrides={target: v})``.
        target: the dotted path scalar points write to; defaults to the
            axis name (so ``Axis("scheduler", ("n2pl", "nto"))`` sweeps
            the scheduler field directly).
    """

    name: str
    points: tuple[AxisPoint, ...]
    target: str | None = None

    def __init__(self, name: str, points: Sequence[Any], target: str | None = None):
        if not name:
            raise SweepSpecError("axis name must be non-empty")
        if not points:
            raise SweepSpecError(f"axis {name!r} needs at least one point")
        default_target = target if target is not None else name
        normalised = []
        for point in points:
            if isinstance(point, AxisPoint):
                if not point.overrides:
                    raise SweepSpecError(
                        f"axis {name!r} point {point.label!r} applies no overrides"
                    )
                for path in point.overrides:
                    _validate_path(path)
                normalised.append(
                    AxisPoint(
                        _canonical(point.label, where=f"axis {name!r} label"),
                        _canonical(dict(point.overrides), where=f"axis {name!r} overrides"),
                    )
                )
            else:
                _validate_path(default_target)
                value = _canonical(point, where=f"axis {name!r} point")
                normalised.append(AxisPoint(value, {default_target: value}))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "points", tuple(normalised))
        object.__setattr__(self, "target", target)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "target": self.target,
            "points": [point.to_json_dict() for point in self.points],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "Axis":
        return cls(
            name=data["name"],
            points=[AxisPoint.from_json_dict(point) for point in data["points"]],
            target=data.get("target"),
        )


@dataclass
class SweepSpec:
    """A named base scenario plus grid axes.

    :meth:`scenarios` expands the cartesian product of the axes over the
    base scenario in deterministic nested-loop order — the first axis is
    the outermost loop — so serial and fanned-out runs see the same
    scenario list in the same order.
    """

    name: str
    base: ScenarioSpec
    axes: tuple[Axis, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SweepSpecError("sweep name must be non-empty")
        if not isinstance(self.base, ScenarioSpec):
            raise SweepSpecError(f"base must be a ScenarioSpec, got {self.base!r}")
        self.axes = tuple(self.axes)
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise SweepSpecError(f"duplicate axis names in {names}")
        # Expansion re-validates every combination; fail fast on specs whose
        # base is valid but whose grid produces an invalid scenario.  The
        # result is cached so later scenarios()/iteration calls do not pay
        # the per-cell JSON round-trip and re-validation again.
        self._scenarios = self._expand()

    # -- expansion --------------------------------------------------------------

    def _expand(self) -> tuple[ScenarioSpec, ...]:
        expanded: list[ScenarioSpec] = []
        for combination in itertools.product(*(axis.points for axis in self.axes)):
            data = self.base.to_json_dict()
            tags = dict(data.get("tags", {}))
            for axis, point in zip(self.axes, combination):
                for path, value in point.overrides.items():
                    _apply_override(data, path, value)
                tags[axis.name] = point.label
            data["tags"] = tags
            expanded.append(ScenarioSpec.from_json_dict(data))
        return tuple(expanded)

    def scenarios(self) -> list[ScenarioSpec]:
        """The expanded scenario list (first axis outermost, stable order)."""
        return list(self._scenarios)

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self._scenarios)

    # -- JSON round-trip --------------------------------------------------------

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base.to_json_dict(),
            "axes": [axis.to_json_dict() for axis in self.axes],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        return cls(
            name=data["name"],
            base=ScenarioSpec.from_json_dict(data["base"]),
            axes=tuple(Axis.from_json_dict(axis) for axis in data.get("axes", [])),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_json_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_json_dict(json.loads(text))
