"""Aggregation and reporting over sweep results.

A sweep produces one flat metrics row per scenario
(:attr:`~repro.sweep.runner.ScenarioResult.row`).  This module merges
those rows into grouped summary tables — mean/min/max of chosen metrics
per group key (typically a sweep axis such as ``scheduler`` or
``hot_probability``) — and renders the whole result as a JSON document
and a markdown report, reusing the text-table machinery in
:mod:`repro.analysis.report` so every experiment's output stays uniform.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..analysis.report import format_markdown_table, format_table
from .runner import ScenarioResult

_AGGREGATIONS: dict[str, Callable[[Sequence[float]], float]] = {
    "mean": lambda values: sum(values) / len(values),
    "min": min,
    "max": max,
    "sum": sum,
}


def rows_of(results: Iterable[ScenarioResult | Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Normalise results (or already-flat rows) to a list of row dicts."""
    rows = []
    for result in results:
        if isinstance(result, ScenarioResult):
            rows.append(dict(result.row))
        else:
            rows.append(dict(result))
    return rows


def group_rows(
    rows: Iterable[Mapping[str, Any]],
    group_by: Sequence[str],
    metrics: Sequence[str],
    *,
    aggregations: Sequence[str] = ("mean", "min", "max"),
) -> list[dict[str, Any]]:
    """Merge rows into one summary row per distinct ``group_by`` key.

    Args:
        rows: flat per-scenario metrics rows.
        group_by: columns whose value-tuples define the groups (rows
            missing a key group under ``None``).
        metrics: numeric columns to aggregate (non-numeric and missing
            values are skipped per group).
        aggregations: names from ``mean``/``min``/``max``/``sum``; each
            produces a ``<metric>_<aggregation>`` column.

    Returns:
        One row per group, in first-appearance order, carrying the group
        keys, a ``scenarios`` count and the aggregated metric columns.
    """
    unknown = sorted(set(aggregations) - set(_AGGREGATIONS))
    if unknown:
        raise ValueError(
            f"unknown aggregations {unknown}; available: {', '.join(sorted(_AGGREGATIONS))}"
        )
    grouped: dict[tuple, list[Mapping[str, Any]]] = {}
    for row in rows:
        key = tuple(row.get(column) for column in group_by)
        grouped.setdefault(key, []).append(row)
    summary_rows = []
    for key, members in grouped.items():
        summary: dict[str, Any] = dict(zip(group_by, key))
        summary["scenarios"] = len(members)
        for metric in metrics:
            values = [
                row[metric]
                for row in members
                if isinstance(row.get(metric), (int, float))
                and not isinstance(row.get(metric), bool)
            ]
            for aggregation in aggregations:
                summary[f"{metric}_{aggregation}"] = (
                    _AGGREGATIONS[aggregation](values) if values else None
                )
        summary_rows.append(summary)
    return summary_rows


def sweep_report(
    name: str,
    results: Iterable[ScenarioResult | Mapping[str, Any]],
    *,
    group_by: Sequence[str] = (),
    metrics: Sequence[str] = (),
    aggregations: Sequence[str] = ("mean", "min", "max"),
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the JSON-ready report document for one sweep.

    The document carries the per-scenario rows verbatim plus (when
    ``group_by`` is given) the grouped summary table, and any ``extra``
    top-level entries (timing records, host facts) the caller supplies.
    """
    rows = rows_of(results)
    report: dict[str, Any] = {"sweep": name, "scenarios": len(rows), "rows": rows}
    if group_by:
        report["grouped"] = {
            "group_by": list(group_by),
            "metrics": list(metrics),
            "aggregations": list(aggregations),
            "rows": group_rows(rows, group_by, metrics, aggregations=aggregations),
        }
    if extra:
        report.update(extra)
    return report


def write_json_report(report: Mapping[str, Any], path: str | Path) -> Path:
    """Write a :func:`sweep_report` document as indented JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, default=str) + "\n")
    return path


def render_markdown_report(
    report: Mapping[str, Any],
    *,
    columns: Sequence[str] | None = None,
    precision: int = 4,
) -> str:
    """Render a :func:`sweep_report` document as a markdown fragment.

    Emits the per-scenario table and, when present, the grouped summary
    table underneath it.
    """
    lines = [f"## Sweep `{report['sweep']}` — {report['scenarios']} scenarios", ""]
    lines.append(format_markdown_table(report["rows"], columns, precision=precision))
    grouped = report.get("grouped")
    if grouped and grouped.get("rows"):
        lines.extend(["", f"### Grouped by {', '.join(grouped['group_by'])}", ""])
        lines.append(format_markdown_table(grouped["rows"], None, precision=precision))
    return "\n".join(lines) + "\n"


def write_markdown_report(
    report: Mapping[str, Any],
    path: str | Path,
    *,
    columns: Sequence[str] | None = None,
    precision: int = 4,
) -> Path:
    """Write the markdown rendering of a report; returns the path."""
    path = Path(path)
    path.write_text(render_markdown_report(report, columns=columns, precision=precision))
    return path


def print_report(report: Mapping[str, Any], *, columns: Sequence[str] | None = None) -> None:
    """Print the per-scenario (and grouped) tables as aligned plain text."""
    print(format_table(report["rows"], columns, title=f"sweep {report['sweep']}"))
    grouped = report.get("grouped")
    if grouped and grouped.get("rows"):
        print()
        print(
            format_table(
                grouped["rows"], title=f"grouped by {', '.join(grouped['group_by'])}"
            )
        )
