"""Parallel scenario-sweep subsystem.

The sweep layer turns the repository's comparative experiments into
declarative data: a :class:`SweepSpec` names a base scenario (workload ×
scheduler × seed) plus grid axes, :class:`SweepRunner` expands and
executes the grid — serially or fanned out over ``multiprocessing``
workers, with deterministic, order-stable results either way — and
:mod:`repro.sweep.aggregate` merges the per-scenario metrics rows into
grouped tables and JSON/markdown reports.

A sweep in five lines::

    from repro.sweep import Axis, ScenarioSpec, SweepRunner, SweepSpec

    sweep = SweepSpec(
        name="contention",
        base=ScenarioSpec(workload="hotspot", scheduler="n2pl", seed=7,
                          workload_params={"transactions": 12, "seed": 7}),
        axes=(Axis("hot_probability", (0.1, 0.5, 0.9),
                   target="workload_params.hot_probability"),
              Axis("scheduler", ("n2pl", "nto", "certifier"))),
    )
    rows = SweepRunner(sweep, workers=4).run_rows()

See the "Scenario sweeps" section of ``DESIGN.md`` for the spec schema,
the worker fan-out model and the determinism guarantees, and
``python -m repro.sweep`` for a self-checking demo.
"""

from .aggregate import (
    group_rows,
    print_report,
    render_markdown_report,
    rows_of,
    sweep_report,
    write_json_report,
    write_markdown_report,
)
from .runner import (
    DEFAULT_MP_CONTEXT,
    ScenarioResult,
    SweepRunner,
    build_engine,
    run_scenario,
    run_sharded_scenario,
    summarise_run,
    summarise_sharded_run,
)
from .spec import (
    ENGINE_PARAM_NAMES,
    Axis,
    AxisPoint,
    ScenarioSpec,
    SweepSpec,
)

__all__ = [
    "Axis",
    "AxisPoint",
    "DEFAULT_MP_CONTEXT",
    "ENGINE_PARAM_NAMES",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepRunner",
    "SweepSpec",
    "build_engine",
    "group_rows",
    "print_report",
    "render_markdown_report",
    "rows_of",
    "run_scenario",
    "run_sharded_scenario",
    "summarise_run",
    "summarise_sharded_run",
    "sweep_report",
    "write_json_report",
    "write_markdown_report",
]
