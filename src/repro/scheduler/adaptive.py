"""Adaptive per-object strategy management for the modular scheduler.

The paper's licence is modularity: each object may run whatever
intra-object synchroniser suits it, and Theorem 5's inter-object
conditions keep the whole serialisable regardless of the mix.  The
:class:`~repro.scheduler.modular.ModularScheduler` realises the split but
fixes the mix at attach time; this module makes the mix *dynamic*.

:class:`AdaptiveModularScheduler` watches per-object contention signals —
blocked requests (waits), abort responses (restarts) and distinct parked
transactions — over a sliding window of scheduling decisions, and moves
each object along a configurable **policy ladder** (by default
``certifier → timestamp → locking``): promotion towards the pessimistic
end when a window's contention score reaches ``promote_threshold``,
demotion towards the optimistic end after ``hysteresis`` consecutive calm
windows at or below ``demote_threshold``.  Hot objects end up paying for
blocking locks because they save restarts; cold objects keep the
certifier's zero-overhead hot path.

Correctness rests on two pillars, argued in DESIGN.md:

* **Quiescent swaps.** A strategy swap is executed only when the object
  is quiescent: no live transaction has touched the object (so every
  transaction sees exactly one regime per object), and the outgoing
  synchroniser's retained state is empty after its own decision-invariant
  garbage collection (so no information that could steer a future
  decision is lost).  Swaps that cannot run yet are deferred and retried
  whenever a transaction finishes on the object.
* **Strategy-agnostic global safety.** Serialisability and recoverability
  are enforced by the inter-object coordinator and the commit gate, which
  never depend on which intra-object strategy produced a step — so any
  mix, static or dynamic, stays within Theorem 5's conditions.

Every input to an adaptation decision (operation counts, per-object
counters, ladder configuration) is a deterministic function of the run,
so repeats at a fixed seed remain bit-identical — the property the E19
benchmark asserts on every adaptive row.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Mapping

from .base import ExecutionInfo, OperationRequest, SchedulerResponse, STEP_LEVEL
from .modular import (
    IntraObjectSynchroniser,
    ModularScheduler,
    make_intra_strategy,
    validate_intra_strategy_spec,
)
from .recovery import CASCADE_MODE

#: The default policy ladder, optimistic to pessimistic.
DEFAULT_LADDER = ("certifier", "timestamp", "locking")


def _ladder_entry_name(spec: Any) -> str:
    if isinstance(spec, str):
        return spec
    if isinstance(spec, Mapping):
        return str(spec.get("name"))
    return str(spec)


class AdaptiveModularScheduler(ModularScheduler):
    """A modular scheduler that re-assigns intra-object strategies online.

    Args:
        ladder: strategy specifications ordered optimistic → pessimistic;
            each entry is a uniform component spec (a name or a
            ``{"name", ...kwargs}`` mapping over
            :data:`~repro.scheduler.modular.INTRA_STRATEGIES` — instances
            are rejected, one cannot be shared across objects).  Every
            non-pinned object starts on rung 0.
        window: scheduling decisions between adaptation evaluations.
        promote_threshold: window contention score (waits + restarts +
            distinct parked transactions, attributed to the requested
            object) at which an object moves one rung up the ladder.
        demote_threshold: score at or below which a window counts as calm.
        hysteresis: consecutive calm windows required before an object
            moves one rung back down — the damper that stops a border-line
            object from oscillating between rungs every window.
        drain_limit: the most live transactions a promotion drain may
            block behind.  Draining a busier object would stall every new
            entrant for as long as the live set takes to empty — under a
            flash crowd that is effectively forever, and the blocked
            newcomers feed deadlock cycles and cascade storms instead of
            a swap.  Promotions on busier objects stay opportunistic
            (executed at the next natural quiescent point).
        drain_patience: evaluation windows a desired promotion may stay
            pending before it is cancelled.  A promotion that cannot find
            quiescence within the patience is evidence the object is too
            busy to swap safely; cancelling re-arms the sampler instead
            of letting a stale desire barrier new entrants indefinitely.
        per_object_strategy: objects pinned to a fixed strategy spec; they
            never adapt.  Objects whose definition names a preferred
            synchroniser (``intra_object_synchroniser``, e.g. the b-tree's
            key-granular locking) are likewise left on their preference —
            the generic ladder cannot reproduce that structure.
        inter_object_checks / level / restart_policy / gate_mode: as on
            :class:`~repro.scheduler.modular.ModularScheduler`.
    """

    name = "adaptive"

    def __init__(
        self,
        ladder: tuple = DEFAULT_LADDER,
        window: int = 128,
        promote_threshold: int = 4,
        demote_threshold: int = 0,
        hysteresis: int = 2,
        drain_limit: int = 4,
        drain_patience: int = 8,
        per_object_strategy: dict[str, Any] | None = None,
        inter_object_checks: bool = True,
        level: str = STEP_LEVEL,
        restart_policy: Any = "immediate",
        gate_mode: str = CASCADE_MODE,
    ):
        ladder = tuple(ladder)
        if not ladder:
            raise ValueError("adaptive policy ladder must name at least one strategy")
        for spec in ladder:
            if isinstance(spec, IntraObjectSynchroniser):
                raise TypeError(
                    "adaptive policy ladder entries must be names or mappings; "
                    "a synchroniser instance is bound to a single object"
                )
            validate_intra_strategy_spec(spec)
        if window < 1:
            raise ValueError(f"adaptation window must be >= 1, got {window}")
        if promote_threshold < 1:
            raise ValueError(
                f"promote threshold must be >= 1, got {promote_threshold}"
            )
        if demote_threshold < 0 or demote_threshold >= promote_threshold:
            raise ValueError(
                f"demote threshold must be in [0, promote), got {demote_threshold}"
            )
        if hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {hysteresis}")
        if drain_limit < 1:
            raise ValueError(f"drain limit must be >= 1, got {drain_limit}")
        if drain_patience < 1:
            raise ValueError(f"drain patience must be >= 1, got {drain_patience}")
        super().__init__(
            default_strategy=ladder[0],
            per_object_strategy=per_object_strategy,
            inter_object_checks=inter_object_checks,
            level=level,
            restart_policy=restart_policy,
            gate_mode=gate_mode,
        )
        self.ladder = ladder
        self.window = window
        self.promote_threshold = promote_threshold
        self.demote_threshold = demote_threshold
        self.hysteresis = hysteresis
        self.drain_limit = drain_limit
        self.drain_patience = drain_patience
        self._reset_adaptive_state()

    # -- wiring ---------------------------------------------------------------

    def _reset_adaptive_state(self) -> None:
        self._rungs: dict[str, int] = {}
        self._desired: dict[str, int] = {}
        self._desired_age: dict[str, int] = defaultdict(int)
        self._calm_windows: dict[str, int] = defaultdict(int)
        self._ops_seen = 0
        self._waits: dict[str, int] = defaultdict(int)
        self._restarts: dict[str, int] = defaultdict(int)
        self._parked: dict[str, set[str]] = defaultdict(set)
        self._live_on: dict[str, set[str]] = defaultdict(set)
        self._objects_of: dict[str, set[str]] = defaultdict(set)
        self.strategy_swaps = 0
        self.deferred_swaps = 0
        self.cancelled_swaps = 0
        self.barrier_blocks = 0
        self.windows_evaluated = 0

    def attach(self, object_base) -> None:
        super().attach(object_base)
        self._reset_adaptive_state()
        registry = self.conflicts_for(self.level)
        step_level = self.level == STEP_LEVEL
        for object_name in self._synchronisers:
            if object_name in self.per_object_strategy:
                continue  # explicitly pinned objects never adapt
            definition = object_base.definition(object_name)
            if getattr(definition, "intra_object_synchroniser", None):
                # A definition-preferred synchroniser (e.g. the b-tree's
                # key-granular locking) encodes structure the generic
                # ladder cannot reproduce; flattening it to a whole-object
                # rung measurably thrashes, so preferences stay pinned.
                continue
            self._synchronisers[object_name] = make_intra_strategy(
                self.ladder[0], object_name, registry[object_name], step_level
            )
            self._rungs[object_name] = 0
        self._refresh_commit_checkers()

    # -- contention sampling ------------------------------------------------------

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        object_name = request.object_name
        rung = self._rungs.get(object_name)
        if rung is not None and self._desired.get(object_name, rung) > rung:
            # Draining barrier — promotions only: a contended object is
            # never *naturally* quiescent, so new entrants wait until its
            # live set empties and the swap towards the pessimistic end
            # can run.  Demotions are opportunistic (they execute at the
            # next natural quiescent point) because paying a drain to
            # relax an object that just went calm re-creates the very
            # contention the demotion says is gone.  The block goes
            # through the ordinary deadlock-checked park path, so a drain
            # that would deadlock aborts the requester.  The barrier only
            # arms when the live set is small enough (``drain_limit``) to
            # actually empty soon; stalling every newcomer behind a
            # flash-crowd-sized live set breeds deadlock cycles and
            # cascade storms worth far more than the swap.
            live = self._live_on.get(object_name)
            transaction_id = request.info.top_level_id
            if (
                live
                and transaction_id not in live
                and len(live) <= self.drain_limit
            ):
                self.barrier_blocks += 1
                self._ops_seen += 1
                if self._ops_seen % self.window == 0:
                    self._evaluate_window()
                return self._park_with_deadlock_check(
                    request,
                    SchedulerResponse.block(
                        f"strategy swap pending on {object_name}: draining "
                        f"live transactions",
                        blockers=set(live),
                    ),
                )
        response = super().on_operation(request)
        if object_name in self._rungs:
            transaction_id = request.info.top_level_id
            # Conservative liveness tracking: any request marks the
            # transaction as (potentially) holding state on the object
            # until it resolves, which is what gates quiescent swaps.
            self._live_on[object_name].add(transaction_id)
            self._objects_of[transaction_id].add(object_name)
            if response.blocked:
                self._waits[object_name] += 1
                self._parked[object_name].add(transaction_id)
            elif response.aborted:
                self._restarts[object_name] += 1
        self._ops_seen += 1
        if self._ops_seen % self.window == 0:
            self._evaluate_window()
        return response

    def _note_commit_veto(
        self, synchroniser: IntraObjectSynchroniser, response: SchedulerResponse
    ) -> None:
        # A commit-time certification veto is a restart the optimistic rung
        # caused; feed it into the vetoing object's score so the sampler
        # sees commit-path contention, not just operation-path blocks.
        if response.aborted and synchroniser.object_name in self._rungs:
            self._restarts[synchroniser.object_name] += 1

    def _finish_transaction(self, info: ExecutionInfo, *, committed: bool) -> None:
        super()._finish_transaction(info, committed=committed)
        transaction_id = info.top_level_id
        for object_name in self._objects_of.pop(transaction_id, ()):
            live = self._live_on.get(object_name)
            if live is not None:
                live.discard(transaction_id)
            if object_name in self._desired:
                self._try_swap(object_name)

    # -- adaptation ---------------------------------------------------------------

    def _evaluate_window(self) -> None:
        self.windows_evaluated += 1
        top = len(self.ladder) - 1
        for object_name, rung in self._rungs.items():
            pending = object_name in self._desired
            target = self._desired.get(object_name, rung)
            score = (
                self._waits[object_name]
                + self._restarts[object_name]
                + len(self._parked[object_name])
            )
            if score >= self.promote_threshold:
                self._calm_windows[object_name] = 0
                if target < top:
                    target += 1
            elif score <= self.demote_threshold:
                self._calm_windows[object_name] += 1
                if self._calm_windows[object_name] >= self.hysteresis:
                    self._calm_windows[object_name] = 0
                    if target > 0:
                        target -= 1
            else:
                self._calm_windows[object_name] = 0
            if pending and target != rung:
                # A still-pending desire ages; one that never finds its
                # quiescent point within the patience is cancelled — the
                # object is too busy to swap safely right now, and the
                # sampler will re-raise the desire if contention persists.
                self._desired_age[object_name] += 1
                if self._desired_age[object_name] >= self.drain_patience:
                    self.cancelled_swaps += 1
                    target = rung
            if target != rung:
                if not pending:
                    self._desired_age[object_name] = 0
                self._desired[object_name] = target
                self._try_swap(object_name)
            else:
                self._desired.pop(object_name, None)
                self._desired_age.pop(object_name, None)
        self._waits.clear()
        self._restarts.clear()
        self._parked.clear()

    def _try_swap(self, object_name: str) -> bool:
        """Execute a pending strategy swap if the object is quiescent now."""
        rung = self._rungs.get(object_name)
        target = self._desired.get(object_name)
        if rung is None or target is None:
            return False
        if target == rung:
            self._desired.pop(object_name, None)
            return False
        if self._live_on.get(object_name):
            self.deferred_swaps += 1
            return False
        outgoing = self._synchronisers[object_name]
        outgoing.collect_garbage()
        if outgoing.live_state_size():
            # Retained state survived its own GC: not provably droppable,
            # so the swap waits for a deeper quiescent point.
            self.deferred_swaps += 1
            return False
        registry = self.conflicts_for(self.level)
        self._synchronisers[object_name] = make_intra_strategy(
            self.ladder[target],
            object_name,
            registry[object_name],
            self.level == STEP_LEVEL,
        )
        self._rungs[object_name] = target
        self._desired.pop(object_name, None)
        self._desired_age.pop(object_name, None)
        self._refresh_commit_checkers()
        self.strategy_swaps += 1
        return True

    def force_swap(self, object_name: str, strategy: Any) -> bool:
        """Request an immediate move of ``object_name`` to a ladder rung.

        A test/diagnostic hook: ``strategy`` must be one of the ladder's
        entries (matched by registry name).  The swap still honours the
        quiescence rule; when the object is busy it is recorded as
        desired and executed at the next quiescent point.

        Returns:
            True when the swap executed immediately.
        """
        if object_name not in self._rungs:
            raise KeyError(
                f"object {object_name!r} is not under adaptive management; "
                f"adapted objects: {', '.join(sorted(self._rungs)) or '(none)'}"
            )
        names = [_ladder_entry_name(spec) for spec in self.ladder]
        wanted = _ladder_entry_name(strategy)
        if wanted not in names:
            raise ValueError(
                f"strategy {wanted!r} is not on the ladder {names}"
            )
        self._desired[object_name] = names.index(wanted)
        self._desired_age[object_name] = 0
        return self._try_swap(object_name)

    # -- descriptive ------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description.update(
            {
                "name": self.name,
                "ladder": [_ladder_entry_name(spec) for spec in self.ladder],
                "window": self.window,
                "promote_threshold": self.promote_threshold,
                "demote_threshold": self.demote_threshold,
                "hysteresis": self.hysteresis,
                "drain_limit": self.drain_limit,
                "drain_patience": self.drain_patience,
                "strategy_swaps": self.strategy_swaps,
                "deferred_swaps": self.deferred_swaps,
                "cancelled_swaps": self.cancelled_swaps,
                "barrier_blocks": self.barrier_blocks,
                "windows_evaluated": self.windows_evaluated,
            }
        )
        return description
