"""Scheduler interface shared by all concurrency-control algorithms.

A scheduler is an *online* arbiter: the simulation engine consults it
before every local operation and at every transaction lifecycle event, and
the scheduler answers with one of three decisions:

* ``GRANT`` — the operation may execute now;
* ``BLOCK`` — the operation must wait.  The response names the *blockers*
  (the owners standing in the way); the engine parks the issuing frame on
  those identifiers and re-issues the request only after a wake-up fires
  for one of them — there is no busy-wait polling loop;
* ``ABORT`` — the issuing top-level transaction must abort (the engine
  undoes its effects and may restart it).

Wake-ups travel through the scheduler: whenever a scheduler releases or
transfers locks (or otherwise resolves the condition some waiter blocked
on) it records the freed owner identifiers with :meth:`Scheduler._note_wakeups`,
and the engine drains them via :meth:`Scheduler.drain_wakeups` after every
lifecycle hook that can free resources — execution completion (lock
inheritance), commit and abort.  The identifiers must be in the same
namespace the scheduler used for ``SchedulerResponse.blockers``.
Independently of the scheduler, the engine always wakes frames parked on a
transaction (or any of its executions) when that transaction commits or
aborts.

``on_commit_request`` may also answer ``BLOCK``: the engine then parks the
completed transaction at its commit point and retries the commit when a
blocker resolves.  Optimistic and timestamp schedulers use this to delay
commits until the transactions whose effects the requester observed have
themselves committed (see :mod:`repro.scheduler.recovery`).

The scheduler sees, with every request, the issuing method execution's
identity and ancestry (:class:`ExecutionInfo`) and the operation together
with the value it *would* return on the current state
(:class:`OperationRequest.provisional_step`).  The provisional value is how
the engine realises the paper's "provisionally issue an operation, observe
the resulting return value, and, having established the actual step,
acquire the necessary lock" implementation of step-level conflict
detection (Section 5.1); schedulers that only use operation-level
conflicts simply ignore it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.conflicts import PerObjectConflicts
from ..core.operations import LocalOperation, LocalStep
from ..objectbase.base import ObjectBase
from .restart import IMMEDIATE_RESTART, RestartPolicy, make_restart_policy

OPERATION_LEVEL = "operation"
STEP_LEVEL = "step"


@dataclass(frozen=True, slots=True)
class ExecutionInfo:
    """Identity and ancestry of one method execution, as seen by schedulers."""

    execution_id: str
    object_name: str
    method_name: str
    parent_id: str | None
    ancestor_ids: tuple[str, ...]
    top_level_id: str

    @property
    def is_top_level(self) -> bool:
        return self.parent_id is None

    def is_ancestor_or_self(self, other_execution_id: str) -> bool:
        """True when ``other_execution_id`` is this execution or an ancestor of it."""
        return other_execution_id == self.execution_id or other_execution_id in self.ancestor_ids


def disjoint_ancestors(first: ExecutionInfo, second: ExecutionInfo) -> tuple[str, str] | None:
    """The children of the least common ancestor on each side, or top-levels.

    Returns ``None`` when the executions are comparable (one an ancestor of
    the other), in which case no inter-object ordering constraint applies.
    """
    first_chain = (first.execution_id,) + first.ancestor_ids
    second_chain = (second.execution_id,) + second.ancestor_ids
    if first.execution_id in second_chain or second.execution_id in first_chain:
        return None
    second_set = set(second_chain)
    common = next((ancestor for ancestor in first_chain if ancestor in second_set), None)
    if common is None:
        return first.top_level_id, second.top_level_id
    first_side = first_chain[first_chain.index(common) - 1]
    second_side = second_chain[second_chain.index(common) - 1]
    return first_side, second_side


@dataclass(frozen=True, slots=True)
class OperationRequest:
    """A request to execute one local operation on behalf of an execution."""

    info: ExecutionInfo
    object_name: str
    operation: LocalOperation
    provisional_step: LocalStep

    def lock_item(self, level: str) -> LocalOperation | LocalStep:
        """What should be locked / conflict-checked at the given granularity."""
        return self.operation if level == OPERATION_LEVEL else self.provisional_step


class Decision(enum.Enum):
    """The three possible answers of a scheduler."""

    GRANT = "grant"
    BLOCK = "block"
    ABORT = "abort"


@dataclass(slots=True)
class SchedulerResponse:
    """A decision plus a human-readable reason and optional blocker set."""

    decision: Decision
    reason: str = ""
    blockers: frozenset[str] = field(default_factory=frozenset)

    @classmethod
    def grant(cls) -> "SchedulerResponse":
        """The operation (or commit) may proceed now."""
        return cls(Decision.GRANT)

    @classmethod
    def block(cls, reason: str = "", blockers: frozenset[str] | set[str] = frozenset()) -> "SchedulerResponse":
        """The request must wait.

        Args:
            reason: human-readable explanation recorded in the trace.
            blockers: identifiers of the owners standing in the way, in
                the same namespace this scheduler reports wake-ups in; the
                engine parks the issuing frame on them.  An empty set
                makes the frame fall back to retrying (and feeds the
                starvation valve).

        Returns:
            The BLOCK response.
        """
        return cls(Decision.BLOCK, reason, frozenset(blockers))

    @classmethod
    def abort(cls, reason: str = "") -> "SchedulerResponse":
        """The issuing top-level transaction must abort (``reason`` is recorded)."""
        return cls(Decision.ABORT, reason)

    @property
    def granted(self) -> bool:
        return self.decision is Decision.GRANT

    @property
    def blocked(self) -> bool:
        return self.decision is Decision.BLOCK

    @property
    def aborted(self) -> bool:
        return self.decision is Decision.ABORT


#: The one GRANT response every scheduler hands out (see
#: :meth:`SchedulerResponse.grant`).  Treat as immutable.
_GRANT_RESPONSE = SchedulerResponse(Decision.GRANT)


class Scheduler:
    """Base class: grants everything and tracks nothing.

    Subclasses override the hooks they care about.  The engine calls them
    in this order for a typical transaction::

        on_transaction_begin(T)
        on_invoke(T, T.1) ... on_operation(...) / on_operation_executed(...)
        on_execution_complete(T.1)
        ...
        on_commit_request(T)            # may veto with ABORT
        on_transaction_commit(T)        # or on_transaction_abort(T, subtree)

    ``attach`` is called once before the run starts and provides the object
    base plus the per-object conflict registries at both granularities.

    Every scheduler also carries a *restart policy*
    (:mod:`repro.scheduler.restart`): when the engine aborts a transaction
    it asks ``scheduler.restart_policy`` how many ticks to wait before
    resubmitting it (``"immediate"`` — the default — restarts at once;
    ``"backoff"`` and ``"ordered"`` delay restarts to break cascade
    storms).  The policy is configuration the scheduler transports; the
    engine drives it.

    Args:
        restart_policy: a policy name, a ``{"name": ..., **kwargs}``
            mapping, or a :class:`~repro.scheduler.restart.RestartPolicy`
            instance (see :func:`~repro.scheduler.restart.make_restart_policy`).
    """

    name = "pass-through"

    def __init__(
        self, restart_policy: "str | Mapping[str, Any] | RestartPolicy" = IMMEDIATE_RESTART
    ) -> None:
        self.object_base: ObjectBase | None = None
        self.operation_conflicts: PerObjectConflicts = PerObjectConflicts()
        self.step_conflicts: PerObjectConflicts = PerObjectConflicts()
        self._pending_wakeups: set[str] = set()
        self.restart_policy: RestartPolicy = make_restart_policy(restart_policy)

    # -- wiring ---------------------------------------------------------------

    def attach(self, object_base: ObjectBase) -> None:
        """Bind the scheduler to the object base it will arbitrate for."""
        self.object_base = object_base
        self.operation_conflicts = object_base.conflicts(OPERATION_LEVEL)
        self.step_conflicts = object_base.conflicts(STEP_LEVEL)
        self._pending_wakeups = set()

    def conflicts_for(self, level: str) -> PerObjectConflicts:
        """The per-object conflict registry at ``"operation"`` or ``"step"`` level."""
        return self.operation_conflicts if level == OPERATION_LEVEL else self.step_conflicts

    # -- wake-up notification ----------------------------------------------------

    def _note_wakeups(self, owner_ids) -> None:
        """Record that the given owners released (or transferred) resources.

        The identifiers must match the namespace this scheduler uses for
        ``SchedulerResponse.blockers``; parked frames waiting on any of them
        will be re-awakened when the engine next drains the wake set.
        """
        self._pending_wakeups.update(owner_ids)

    def drain_wakeups(self) -> frozenset[str]:
        """Hand the accumulated wake-up identifiers to the engine (and reset)."""
        if not self._pending_wakeups:
            return frozenset()
        drained = frozenset(self._pending_wakeups)
        self._pending_wakeups.clear()
        return drained

    # -- lifecycle hooks --------------------------------------------------------

    def on_transaction_begin(self, info: ExecutionInfo) -> None:
        """A new top-level transaction (or a restart of one) has started."""

    def on_invoke(self, parent: ExecutionInfo, child: ExecutionInfo) -> None:
        """A message step created the child method execution."""

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        """Arbitrate a local operation request.

        Args:
            request: the issuing execution's identity plus the operation
                and its provisional step (return value on current state).

        Returns:
            GRANT to execute now, BLOCK (with blockers) to park the
            frame, or ABORT to abort the issuing top-level transaction.
        """
        return SchedulerResponse.grant()

    def on_operation_executed(self, request: OperationRequest, value: Any) -> None:
        """The operation was executed and returned ``value``."""

    def on_execution_complete(self, info: ExecutionInfo) -> None:
        """A (child) method execution finished normally."""

    def on_commit_request(self, info: ExecutionInfo) -> SchedulerResponse:
        """A top-level transaction asks to commit (certifiers may veto)."""
        return SchedulerResponse.grant()

    def on_transaction_commit(self, info: ExecutionInfo) -> None:
        """A top-level transaction committed."""

    def on_transaction_abort(self, info: ExecutionInfo, subtree: tuple[str, ...]) -> None:
        """A top-level transaction aborted; ``subtree`` lists its executions."""

    # -- live-state garbage collection -------------------------------------------

    def collect_garbage(self) -> int:
        """Drop retained state that nothing live (or future) can depend on.

        Called by the engine on its garbage-collection cadence during long
        (streaming) runs.  Schedulers whose records outlive the issuing
        transaction — the certifier's committed step records, NTO's
        timestamp records — override this to prune what can no longer
        influence any decision; lock-based schedulers release everything
        at transaction end and need not.  Must never change the outcome
        of any future request: garbage collection is invisible except in
        memory and in :meth:`live_state_size`.

        Returns:
            The number of pruned items (0 by default).
        """
        return 0

    def live_state_size(self) -> int:
        """The number of retained per-transaction items, for the gauge.

        The engine samples this (plus its own undo-log and parked-frame
        counts) at every garbage-collection pass; on a bounded-memory
        stream the sample stays proportional to the in-flight population.
        The base scheduler retains nothing.
        """
        return 0

    # -- descriptive ------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Scheduler description recorded alongside run metrics."""
        return {"name": self.name, "restart_policy": self.restart_policy.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
