"""Lock management for nested two-phase locking.

Locks are associated with operations or with steps (operation + return
value), following the two implementation strategies Section 5.1 discusses.
A lock request conflicts with a held lock when the corresponding
operations/steps conflict according to the object's conflict
specification; per Moss' rules the request can only be granted when every
conflicting holder is an *ancestor* of the requester.

The :class:`LockManager` also implements lock inheritance (rule 5): when a
method execution completes, its locks are transferred to — "immediately
acquired by" — its parent.

Release and transfer return the identifiers of the owners whose locks were
freed; blocking schedulers forward them (translated to whatever namespace
their ``blockers`` use) into the engine's wake-up path so parked waiters
are re-awakened exactly when a blocker commits, aborts, or passes its
locks up the execution tree.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from ..core.conflicts import PerObjectConflicts
from ..core.operations import LocalOperation, LocalStep
from .base import ExecutionInfo


@dataclass(eq=False, slots=True)
class LockEntry:
    """One held lock: the owner and the operation/step it covers.

    Identity semantics (``eq=False``): entries are unique table rows —
    hashable, so the per-object table can delete them in O(1).  Two
    entries with equal fields are interchangeable anyway (they conflict
    with exactly the same requests).
    """

    owner_id: str
    object_name: str
    item: LocalOperation | LocalStep

    def operation(self) -> LocalOperation:
        return self.item.operation if isinstance(self.item, LocalStep) else self.item


@dataclass
class LockRequestOutcome:
    """Result of a lock request: granted or the set of blocking owners."""

    granted: bool
    blockers: frozenset[str] = frozenset()


class LockManager:
    """Holds lock tables for every object of the base.

    Parameters
    ----------
    conflicts:
        Per-object conflict registry used to decide lock compatibility.
    step_level:
        When true, conflicts are evaluated between steps (return-value
        aware); otherwise between operations.
    """

    def __init__(self, conflicts: PerObjectConflicts, step_level: bool = False):
        self._conflicts = conflicts
        self._step_level = step_level
        # Per-object tables are insertion-ordered dict-sets: iteration in
        # grant order (like the lists they replaced) but O(1) deletion,
        # which keeps releasing a heavily-locked hot object linear instead
        # of quadratic.
        self._locks_by_object: dict[str, dict[LockEntry, None]] = defaultdict(dict)
        self._locks_by_owner: dict[str, list[LockEntry]] = defaultdict(list)

    # -- queries ----------------------------------------------------------------

    def holders(self, object_name: str) -> list[LockEntry]:
        """All lock entries currently held on the object."""
        return list(self._locks_by_object.get(object_name, ()))

    def held_by(self, owner_id: str) -> list[LockEntry]:
        """All lock entries currently owned by the execution."""
        return list(self._locks_by_owner.get(owner_id, []))

    def lock_count(self) -> int:
        return sum(len(entries) for entries in self._locks_by_object.values())

    def _items_conflict(
        self,
        object_name: str,
        held: LocalOperation | LocalStep,
        requested: LocalOperation | LocalStep,
    ) -> bool:
        # The held lock's step executed (or will execute) before the requested
        # one, so the relevant relation is "held conflicts with requested" —
        # the same directional relation that induces serialisation-graph
        # edges.  Commutativity is allowed to be asymmetric (Definition 3),
        # and exploiting the asymmetry admits strictly more concurrency.
        spec = self._conflicts[object_name]
        if isinstance(held, LocalStep) and isinstance(requested, LocalStep):
            return spec.steps_conflict(held, requested)
        held_operation = held.operation if isinstance(held, LocalStep) else held
        requested_operation = (
            requested.operation if isinstance(requested, LocalStep) else requested
        )
        return spec.operations_conflict(held_operation, requested_operation)

    def conflicting_holders(
        self,
        object_name: str,
        item: LocalOperation | LocalStep,
        requester: ExecutionInfo,
    ) -> set[str]:
        """Owners of conflicting locks that are *not* ancestors of the requester."""
        blockers: set[str] = set()
        entries = self._locks_by_object.get(object_name)
        if not entries:
            return blockers
        # One granularity per manager, so the registry lookup and the
        # conflict relation can be bound once instead of per held entry
        # (this loop runs for every lock request on a contended object).
        spec = self._conflicts[object_name]
        conflict = spec.steps_conflict if self._step_level else spec.operations_conflict
        requester_id = requester.execution_id
        ancestor_ids = requester.ancestor_ids
        for entry in entries:
            owner_id = entry.owner_id
            if owner_id == requester_id or owner_id in ancestor_ids:
                continue
            if conflict(entry.item, item):
                blockers.add(owner_id)
        return blockers

    # -- acquisition, release, inheritance ----------------------------------------

    def request(
        self,
        object_name: str,
        item: LocalOperation | LocalStep,
        requester: ExecutionInfo,
    ) -> LockRequestOutcome:
        """Try to acquire a lock on ``item`` for the requester (rule 2).

        The lock is granted — and recorded — when every execution owning a
        conflicting lock is an ancestor of the requester (or the requester
        itself); otherwise the set of blocking owners is returned and
        nothing is recorded.
        """
        blockers = self.conflicting_holders(object_name, item, requester)
        if blockers:
            return LockRequestOutcome(False, frozenset(blockers))
        entry = LockEntry(requester.execution_id, object_name, item)
        self._locks_by_object[object_name][entry] = None
        self._locks_by_owner[requester.execution_id].append(entry)
        return LockRequestOutcome(True)

    def release_all(self, owner_id: str) -> frozenset[str]:
        """Release every lock owned by the execution.

        Returns the freed owner identifiers — ``{owner_id}`` when at least
        one lock was released, empty otherwise — so the caller can turn the
        release into wake-ups for parked waiters.
        """
        entries = self._locks_by_owner.pop(owner_id, [])
        for entry in entries:
            self._locks_by_object[entry.object_name].pop(entry, None)
        return frozenset({owner_id}) if entries else frozenset()

    def release_all_of(self, owner_ids: Iterable[str]) -> frozenset[str]:
        """Release every lock owned by any of the executions; freed owner ids."""
        freed: set[str] = set()
        for owner_id in owner_ids:
            freed.update(self.release_all(owner_id))
        return frozenset(freed)

    def transfer(self, child_id: str, parent_id: str) -> frozenset[str]:
        """Rule 5: the parent acquires every lock the child releases.

        Returns ``{child_id}`` when locks actually moved: waiters blocked on
        the child must be re-examined, because the inheriting parent may be
        their ancestor (in which case the conflict has evaporated).
        """
        entries = self._locks_by_owner.pop(child_id, [])
        for entry in entries:
            entry.owner_id = parent_id
            self._locks_by_owner[parent_id].append(entry)
        return frozenset({child_id}) if entries else frozenset()

    def owners(self) -> set[str]:
        """All executions currently owning at least one lock."""
        return {owner for owner, entries in self._locks_by_owner.items() if entries}
