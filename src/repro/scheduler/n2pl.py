"""Nested two-phase locking (Moss' algorithm), Section 5.1 of the paper.

Rules enforced for every method execution ``e``:

1. ``e`` issues a step only while owning the corresponding lock.
2. ``e`` may acquire a lock only if every owner of a conflicting lock is an
   ancestor of ``e``.
3. ``e`` acquires no lock after releasing one (automatic here: locks are
   only released when the execution completes or aborts).
4. ``e`` releases no lock before its children have released theirs
   (automatic: children complete before their parent does).
5. When ``e`` releases a lock it is immediately acquired by ``e``'s parent
   (lock inheritance, implemented by :meth:`LockManager.transfer`).

The scheduler supports both conflict granularities of Section 5.1's
"Implementation Considerations": ``level="operation"`` locks operations
(Moss' original, conservative scheme) while ``level="step"`` locks steps,
using the provisional return value the engine supplies — Weihl's
observation that return values can be exploited to enhance concurrency.

Because N2PL blocks, it can deadlock; a waits-for graph at transaction
granularity detects cycles and the requesting transaction is chosen as the
victim.
"""

from __future__ import annotations

from typing import Any

from ..objectbase.base import ObjectBase
from .base import (
    OPERATION_LEVEL,
    STEP_LEVEL,
    ExecutionInfo,
    OperationRequest,
    Scheduler,
    SchedulerResponse,
)
from .deadlock import WaitsForGraph
from .locks import LockManager


class NestedTwoPhaseLocking(Scheduler):
    """Moss-style nested two-phase locking."""

    name = "n2pl"

    def __init__(self, level: str = OPERATION_LEVEL, restart_policy: Any = "immediate"):
        super().__init__(restart_policy=restart_policy)
        if level not in (OPERATION_LEVEL, STEP_LEVEL):
            raise ValueError(f"unknown conflict level {level!r}")
        self.level = level
        self.locks: LockManager | None = None
        self.waits = WaitsForGraph()
        self._top_level_of: dict[str, str] = {}
        self._executions_of: dict[str, set[str]] = {}
        self.deadlocks_detected = 0
        self.blocked_requests = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, object_base: ObjectBase) -> None:
        super().attach(object_base)
        self.locks = LockManager(
            self.conflicts_for(self.level), step_level=self.level == STEP_LEVEL
        )
        self.waits = WaitsForGraph()
        self._top_level_of = {}
        self._executions_of = {}
        self.deadlocks_detected = 0
        self.blocked_requests = 0

    # -- lifecycle --------------------------------------------------------------

    def on_transaction_begin(self, info: ExecutionInfo) -> None:
        self._top_level_of[info.execution_id] = info.top_level_id
        self._executions_of[info.top_level_id] = {info.execution_id}

    def on_invoke(self, parent: ExecutionInfo, child: ExecutionInfo) -> None:
        self._top_level_of[child.execution_id] = child.top_level_id
        self._executions_of.setdefault(child.top_level_id, set()).add(child.execution_id)

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        assert self.locks is not None, "scheduler not attached"
        item = (
            request.operation if self.level == OPERATION_LEVEL else request.provisional_step
        )
        outcome = self.locks.request(request.object_name, item, request.info)
        if outcome.granted:
            self.waits.unpark(request.info.execution_id)
            return SchedulerResponse.grant()

        self.blocked_requests += 1
        # Deadlock detection works at transaction granularity: waiting on an
        # execution of one's *own* transaction is not recorded (a sibling can
        # complete and pass its locks to the common parent, unblocking the
        # waiter), whereas a cycle of transactions waiting on one another can
        # never resolve itself and the requester is chosen as the victim.
        # The waits-for graph is maintained incrementally from the parked
        # waiters, keyed by the blocked execution, so parallel siblings of
        # one transaction each contribute their own edges.
        blocking_transactions = {
            self._top_level_of.get(owner_id, owner_id) for owner_id in outcome.blockers
        }
        cross_transaction_blockers = blocking_transactions - {request.info.top_level_id}
        self.waits.park(
            request.info.execution_id, request.info.top_level_id, cross_transaction_blockers
        )
        # The graph was acyclic before this park (cycles are broken at the
        # park that closes them), so any new cycle runs through this
        # transaction — which requires an edge *into* it.  No incoming
        # edge, no DFS needed.
        cycle = (
            self.waits.find_cycle_from(request.info.top_level_id)
            if self.waits.is_waited_on(request.info.top_level_id)
            else None
        )
        if cycle is not None:
            self.deadlocks_detected += 1
            self.waits.remove_transaction(request.info.top_level_id)
            return SchedulerResponse.abort(f"deadlock among transactions {sorted(set(cycle))}")
        # Blockers are reported at execution granularity: a parked waiter is
        # then only re-awakened by events that can actually change its
        # outcome — the blocking execution transfers its locks (rule 5) or
        # its transaction ends — instead of by every release anywhere in the
        # blocking transaction.
        return SchedulerResponse.block(
            "conflicting locks held by non-ancestors", blockers=outcome.blockers
        )

    def on_execution_complete(self, info: ExecutionInfo) -> None:
        assert self.locks is not None
        if info.parent_id is not None:
            # Rule 5: the parent immediately acquires the released locks.
            freed = self.locks.transfer(info.execution_id, info.parent_id)
            if freed:
                # Waiters blocked on the child must re-check their conflict:
                # the inheriting parent may be their ancestor.
                self._note_wakeups(freed)

    def on_transaction_commit(self, info: ExecutionInfo) -> None:
        # The engine itself wakes every frame parked on an ending
        # transaction (or any of its executions), so the release needs no
        # wake-up note; only rule-5 transfers do.
        assert self.locks is not None
        self.locks.release_all(info.execution_id)
        self.waits.remove_transaction(info.top_level_id)
        self._forget_top_level(info.top_level_id)

    def on_transaction_abort(self, info: ExecutionInfo, subtree: tuple[str, ...]) -> None:
        assert self.locks is not None
        self.locks.release_all_of(subtree)
        self.locks.release_all(info.execution_id)
        self.waits.remove_transaction(info.top_level_id)
        self._forget_top_level(info.top_level_id)

    def _forget_top_level(self, top_level_id: str) -> None:
        """Release the resolved transaction's blocker-translation entries.

        Execution ids are never reused, so keeping them would grow the
        translation map with every transaction that ever ran — a leak a
        long arrival stream cannot afford.  The reverse index keeps the
        cleanup O(the transaction's own executions).
        """
        for execution_id in self._executions_of.pop(top_level_id, ()):
            self._top_level_of.pop(execution_id, None)

    # -- live-state garbage collection ---------------------------------------------

    def live_state_size(self) -> int:
        """Retained items: held locks plus blocker-translation entries.

        Strict two-phase locking releases everything at transaction end,
        so no :meth:`collect_garbage` pass is needed — the size is
        O(live) by construction.
        """
        lock_count = self.locks.lock_count() if self.locks is not None else 0
        return lock_count + len(self._top_level_of)

    # -- descriptive ------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "level": self.level,
            "restart_policy": self.restart_policy.name,
            "deadlocks_detected": self.deadlocks_detected,
            "blocked_requests": self.blocked_requests,
        }


class StepLevelNestedTwoPhaseLocking(NestedTwoPhaseLocking):
    """Convenience subclass preconfigured for step-level (return-value) locks."""

    name = "n2pl-step"

    def __init__(self, restart_policy: Any = "immediate") -> None:
        super().__init__(level=STEP_LEVEL, restart_policy=restart_policy)
