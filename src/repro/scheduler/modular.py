"""Modular concurrency control: intra-object plus inter-object synchronisation.

Section 2 and Section 5.3 of the paper propose splitting concurrency
control into two cooperating parts:

* **intra-object synchronisation** — each object serialises the method
  executions operating on its own variables, with whatever algorithm suits
  its semantics best (locking for a register, timestamp ordering for a
  log, key-granularity locking for a B-tree, ...);
* **inter-object synchronisation** — a base-wide mechanism that ensures the
  per-object serialisation orders are mutually compatible, which Theorem 5
  characterises as keeping ``SG_local ∪ SG_mesg`` acyclic for every object
  and the message relation ``->_e`` acyclic for every execution.

:class:`ModularScheduler` realises exactly that split.  Every object is
given its own :class:`IntraObjectSynchroniser` (per-object locking,
per-object timestamp ordering, or a B-tree-specific key-locking variant;
the object definition may name its preference).  The inter-object
coordinator maintains, online, the sibling-level projection of the
serialisation graph: whenever a newly granted step conflicts with an
earlier step of an incomparable execution it adds the induced edge between
their *disjoint ancestors* (the children of their least common ancestor, or
their top-level transactions when they are unrelated) and aborts the
requester if the edge would close a cycle.  The coordinator can be switched
off (``inter_object_checks=False``) to demonstrate experimentally that
intra-object serialisability alone is *not* sufficient — the paper's
Section 2 example and experiment E4.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

import networkx as nx

from ..core.conflicts import ConflictSpec
from ..core.errors import UnknownObjectError
from ..core.operations import LocalStep
from ..core.registry import resolve_component
from ..objectbase.base import ObjectBase
from .base import (
    OPERATION_LEVEL,
    STEP_LEVEL,
    ExecutionInfo,
    OperationRequest,
    Scheduler,
    SchedulerResponse,
    disjoint_ancestors,
)
from .deadlock import WaitsForGraph
from .recovery import CASCADE_MODE, CommitGate
from .timestamps import TimestampAuthority


# ---------------------------------------------------------------------------
# Intra-object synchronisers
# ---------------------------------------------------------------------------


class IntraObjectSynchroniser:
    """Serialises the method executions of a single object.

    One instance guards one object.  It sees only the operations addressed
    to that object and decides GRANT / BLOCK / ABORT; lifecycle events of
    top-level transactions are forwarded so it can release whatever state it
    keeps per transaction.
    """

    strategy = "abstract"

    def __init__(self, object_name: str, conflicts: ConflictSpec, step_level: bool = True):
        self.object_name = object_name
        self.conflicts = conflicts
        self.step_level = step_level

    # -- hooks ------------------------------------------------------------------

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        return SchedulerResponse.grant()

    def on_operation_executed(self, request: OperationRequest, value: Any) -> None:
        """The operation executed and returned ``value``."""

    def on_commit_request(self, info: ExecutionInfo) -> SchedulerResponse:
        """The top-level transaction asks to commit (optimistic validation hook).

        Called once per commit request for every synchroniser that
        overrides it (the modular scheduler skips synchronisers that keep
        the default).  Returning an abort response vetoes the commit —
        the certifying strategy's backward-validation point.
        """
        return SchedulerResponse.grant()

    def on_transaction_committed(self, transaction_id: str) -> None:
        """The top-level transaction committed (fires before ``finished``)."""

    def on_transaction_finished(self, transaction_id: str) -> None:
        """The top-level transaction committed or aborted."""

    def collect_garbage(self) -> int:
        """Prune records no live or future transaction's decision can read.

        Called on the engine's garbage-collection cadence via
        :meth:`ModularScheduler.collect_garbage`.  Must be
        decision-invariant: a strategy may only drop state whose presence
        cannot change the outcome of any future :meth:`on_operation`.
        Lock-style strategies release at transaction end and keep nothing
        collectable.

        Returns:
            The number of pruned items (0 by default).
        """
        return 0

    def live_state_size(self) -> int:
        """Retained per-transaction items, for the engine's live-state gauge.

        Every concrete strategy must override this (the modular
        scheduler's gauge sums it polymorphically); the stateless base
        retains nothing.
        """
        return 0

    # -- helpers ------------------------------------------------------------------

    def _items_conflict(self, held, requested) -> bool:
        # ``held`` was processed before ``requested``; per Definition 3 the
        # directional relation "held conflicts with requested" is what forces
        # an ordering, so that is what intra-object synchronisers check.
        if self.step_level and isinstance(held, LocalStep) and isinstance(requested, LocalStep):
            return self.conflicts.steps_conflict(held, requested)
        held_operation = held.operation if isinstance(held, LocalStep) else held
        requested_operation = requested.operation if isinstance(requested, LocalStep) else requested
        return self.conflicts.operations_conflict(held_operation, requested_operation)

    def _item_of(self, request: OperationRequest):
        return request.provisional_step if self.step_level else request.operation

    def describe(self) -> dict[str, Any]:
        return {"object": self.object_name, "strategy": self.strategy}


class IntraObjectLocking(IntraObjectSynchroniser):
    """Per-object two-phase locking, locks held until transaction end.

    Locks belong to top-level transactions (not individual nested
    executions), which keeps the object-local protocol simple: comparable
    executions of the same transaction never block each other, incomparable
    ones do when their operations/steps conflict.
    """

    strategy = "locking"

    def __init__(self, object_name: str, conflicts: ConflictSpec, step_level: bool = True):
        super().__init__(object_name, conflicts, step_level)
        self._held: dict[str, list] = defaultdict(list)

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        requested = self._item_of(request)
        transaction_id = request.info.top_level_id
        blockers = {
            holder_id
            for holder_id, items in self._held.items()
            if holder_id != transaction_id
            and any(self._items_conflict(item, requested) for item in items)
        }
        if blockers:
            return SchedulerResponse.block(
                f"intra-object lock conflict on {self.object_name}", blockers=blockers
            )
        self._held[transaction_id].append(requested)
        return SchedulerResponse.grant()

    def on_transaction_finished(self, transaction_id: str) -> None:
        self._held.pop(transaction_id, None)

    def live_state_size(self) -> int:
        return sum(len(items) for items in self._held.values())


class IntraObjectTimestampOrdering(IntraObjectSynchroniser):
    """Per-object timestamp ordering using transaction arrival timestamps."""

    strategy = "timestamp"

    def __init__(self, object_name: str, conflicts: ConflictSpec, step_level: bool = True):
        super().__init__(object_name, conflicts, step_level)
        self._records: list[tuple[Any, int, str]] = []  # (item, timestamp, transaction)
        self._timestamps: dict[str, int] = {}
        self._clock = itertools.count(1)

    def _timestamp_of(self, transaction_id: str) -> int:
        if transaction_id not in self._timestamps:
            self._timestamps[transaction_id] = next(self._clock)
        return self._timestamps[transaction_id]

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        transaction_id = request.info.top_level_id
        timestamp = self._timestamp_of(transaction_id)
        requested = self._item_of(request)
        for item, recorded_timestamp, recorded_transaction in self._records:
            if recorded_transaction == transaction_id:
                continue
            if recorded_timestamp > timestamp and self._items_conflict(item, requested):
                return SchedulerResponse.abort(
                    f"intra-object timestamp violation on {self.object_name}"
                )
        return SchedulerResponse.grant()

    def on_operation_executed(self, request: OperationRequest, value: Any) -> None:
        transaction_id = request.info.top_level_id
        timestamp = self._timestamp_of(transaction_id)
        item = (
            LocalStep(request.info.execution_id, request.object_name, request.operation, value)
            if self.step_level
            else request.operation
        )
        self._records.append((item, timestamp, transaction_id))

    def on_transaction_finished(self, transaction_id: str) -> None:
        self._timestamps.pop(transaction_id, None)

    def collect_garbage(self) -> int:
        """Watermark pruning: drop records below every live timestamp.

        ``_timestamps`` holds exactly the unresolved transactions that
        touched this object, and any transaction yet to touch it will draw
        a fresh (strictly larger) timestamp — so a record stamped below
        ``min(live timestamps)`` can never again satisfy the abort
        condition ``recorded_timestamp > requester_timestamp`` and is dead
        weight (the NTO watermark argument, object-locally).
        """
        before = len(self._records)
        watermark = min(self._timestamps.values(), default=None)
        if watermark is None:
            self._records.clear()
        else:
            self._records[:] = [
                record for record in self._records if record[1] >= watermark
            ]
        return before - len(self._records)

    def live_state_size(self) -> int:
        return len(self._records) + len(self._timestamps)


class IntraObjectCertifier(IntraObjectSynchroniser):
    """Per-object optimistic certification (backward validation at commit).

    The optimist's end of the strategy spectrum: operations are granted
    immediately and never block, so an uncontended object pays no lock
    table or timestamp bookkeeping on the hot path.  The price is paid at
    commit: a transaction validates against every transaction that
    committed on this object after it first touched the object, and is
    aborted when any of those installed a conflicting item (classic
    first-committer-wins backward validation, object-locally).  Under
    contention whole executions are wasted at the commit point — exactly
    the trade the adaptive manager (:mod:`repro.scheduler.adaptive`)
    exploits by promoting hot objects towards blocking strategies.

    Global serialisability never rests on this class: with the
    inter-object coordinator on, the precedence-graph check already
    orders every conflicting pair across all objects.  The certifier is
    the object's *local* serialisation discipline, kept honest so the
    modular split's intra-object half still does its job per Section 2.
    """

    strategy = "certifier"

    def __init__(self, object_name: str, conflicts: ConflictSpec, step_level: bool = True):
        super().__init__(object_name, conflicts, step_level)
        self._seq = itertools.count(1)
        self._started: dict[str, int] = {}
        self._items: dict[str, list] = defaultdict(list)
        self._committed: list[tuple[tuple, int]] = []  # (items, commit seq)
        self.certification_aborts = 0

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        transaction_id = request.info.top_level_id
        if transaction_id not in self._started:
            self._started[transaction_id] = next(self._seq)
        return SchedulerResponse.grant()

    def on_operation_executed(self, request: OperationRequest, value: Any) -> None:
        item = (
            LocalStep(request.info.execution_id, request.object_name, request.operation, value)
            if self.step_level
            else request.operation
        )
        self._items[request.info.top_level_id].append(item)

    def on_commit_request(self, info: ExecutionInfo) -> SchedulerResponse:
        transaction_id = info.top_level_id
        mine = self._items.get(transaction_id)
        if not mine:
            return SchedulerResponse.grant()
        started = self._started[transaction_id]
        for committed_items, commit_seq in self._committed:
            if commit_seq <= started:
                continue
            for committed_item in committed_items:
                for item in mine:
                    # Conservative both-direction check: any conflict with a
                    # transaction that committed during our window invalidates.
                    if self._items_conflict(committed_item, item) or self._items_conflict(
                        item, committed_item
                    ):
                        self.certification_aborts += 1
                        return SchedulerResponse.abort(
                            f"intra-object certification failure on "
                            f"{self.object_name}: conflicting transaction "
                            f"committed first"
                        )
        return SchedulerResponse.grant()

    def on_transaction_committed(self, transaction_id: str) -> None:
        items = self._items.get(transaction_id)
        if items:
            self._committed.append((tuple(items), next(self._seq)))

    def on_transaction_finished(self, transaction_id: str) -> None:
        self._started.pop(transaction_id, None)
        self._items.pop(transaction_id, None)

    def collect_garbage(self) -> int:
        """Watermark pruning of the committed window.

        A committed entry stamped at or below every live transaction's
        start can never again satisfy ``commit_seq > started`` for any
        current or future validator (future transactions draw strictly
        larger start stamps), so dropping it is decision-invariant.
        """
        before = len(self._committed)
        watermark = min(self._started.values(), default=None)
        if watermark is None:
            self._committed.clear()
        else:
            self._committed[:] = [
                entry for entry in self._committed if entry[1] > watermark
            ]
        return before - len(self._committed)

    def live_state_size(self) -> int:
        return (
            len(self._started)
            + sum(len(items) for items in self._items.values())
            + sum(len(items) for items, _ in self._committed)
        )


class BTreeKeyLocking(IntraObjectLocking):
    """Key-granularity locking for B-tree index objects.

    Structurally this is :class:`IntraObjectLocking`; the concurrency gain
    comes from the B-tree's own conflict specification, which declares
    operations on distinct keys non-conflicting, so the lock table keeps
    key-level entries — the object-specific algorithm the paper's Section 2
    envisages for dictionary objects.
    """

    strategy = "btree-key-locking"


INTRA_STRATEGIES: dict[str, Callable[..., IntraObjectSynchroniser]] = {
    "locking": IntraObjectLocking,
    "timestamp": IntraObjectTimestampOrdering,
    "certifier": IntraObjectCertifier,
    "btree-key-locking": BTreeKeyLocking,
    "pass-through": IntraObjectSynchroniser,
}


def make_intra_strategy(
    spec: Any, object_name: str, conflicts: ConflictSpec, step_level: bool = True
) -> IntraObjectSynchroniser:
    """Build an intra-object synchroniser from a uniform component spec.

    Accepts the same ``name | {"name", ...kwargs} | instance`` shapes as
    every other registry (:func:`repro.core.registry.resolve_component`),
    so ``per_object_strategy`` maps and the adaptive scheduler's policy
    ladder share one contract.  A ready instance is returned unchanged
    and must already be bound to ``object_name``.

    Raises:
        KeyError: on an unknown strategy name.
        TypeError: on a malformed specification, or an instance bound to
            a different object.
    """
    synchroniser = resolve_component(
        INTRA_STRATEGIES,
        spec,
        kind="intra-object strategy",
        instance_of=IntraObjectSynchroniser,
        construction_args=(object_name, conflicts, step_level),
    )
    if synchroniser.object_name != object_name:
        raise TypeError(
            f"intra-object strategy instance is bound to "
            f"{synchroniser.object_name!r}, not {object_name!r}"
        )
    return synchroniser


def validate_intra_strategy_spec(spec: Any) -> None:
    """Eagerly reject strategy specs that could never resolve.

    Construction needs an object's conflict specification, so full
    resolution happens at :meth:`ModularScheduler.attach`; this check
    surfaces unknown names and malformed mappings at configuration time
    instead (the scheduler constructors call it).
    """
    if isinstance(spec, IntraObjectSynchroniser):
        return
    if isinstance(spec, str):
        name = spec
    elif isinstance(spec, Mapping):
        name = spec.get("name")
        if not isinstance(name, str):
            raise TypeError(
                f"intra-object strategy mapping needs a 'name' entry, got {dict(spec)!r}"
            )
    else:
        raise TypeError(
            f"intra-object strategy must be a name, a mapping or an "
            f"IntraObjectSynchroniser, got {spec!r}"
        )
    if name not in INTRA_STRATEGIES:
        raise KeyError(
            f"unknown intra-object strategy {name!r}; "
            f"available: {', '.join(sorted(INTRA_STRATEGIES))}"
        )


# ---------------------------------------------------------------------------
# Inter-object coordination
# ---------------------------------------------------------------------------


def prune_unreachable(graph: "nx.DiGraph", live: Iterable[str]) -> tuple[int, set[str]]:
    """Frontier GC for a precedence graph: drop nodes no live node reaches.

    Precedence edges always point *recorded transaction → requester*, and a
    resolved transaction's in-edges are frozen (edges into a node are only
    added while it is live and requesting).  A future cycle must therefore
    enter every resolved node it contains through an edge that already
    exists — so a resolved node matters to some future acyclicity check
    only if it is forward-reachable from a currently-live node.  Everything
    else (and, at the caller's side, its recorded steps, which are the only
    source of *new* out-edges) can be dropped without changing any future
    decision.  This is the same frontier argument the streaming certifier's
    GC uses, shared here so the inter-shard coordinator can reuse it.

    Args:
        graph: the precedence DiGraph, mutated in place.
        live: identifiers of the unresolved transactions.

    Returns:
        ``(removed, keep)`` — how many nodes were dropped, and the node ids
        retained (live nodes plus their descendants), which the caller uses
        to prune its step records consistently.
    """
    keep: set[str] = set()
    for node in live:
        if node in graph and node not in keep:
            keep.add(node)
            keep.update(nx.descendants(graph, node))
    dead = [node for node in graph if node not in keep]
    graph.remove_nodes_from(dead)
    return len(dead), keep


@dataclass
class _RecordedStep:
    """A granted step remembered for inter-object ordering checks."""

    step: LocalStep
    info: ExecutionInfo


class InterObjectCoordinator:
    """Maintains the sibling-level serialisation order across all objects.

    Every granted step is compared against earlier conflicting steps of
    incomparable executions; the induced ordering edges must keep the
    precedence graph acyclic, otherwise the requesting transaction is
    aborted.  This is the "more complex and stringent inter-object
    synchronisation" the paper trades for per-object freedom.
    """

    def __init__(self, conflicts_lookup: Callable[[str], ConflictSpec], step_level: bool = True):
        self._conflicts_lookup = conflicts_lookup
        self._step_level = step_level
        self._steps_by_object: dict[str, list[_RecordedStep]] = defaultdict(list)
        self._precedence = nx.DiGraph()
        self._live: set[str] = set()
        self.ordering_aborts = 0

    def _conflict(self, object_name: str, earlier: LocalStep, later: LocalStep) -> bool:
        # Only "earlier conflicts with later" induces a serialisation edge.
        spec = self._conflicts_lookup(object_name)
        if self._step_level:
            return spec.steps_conflict(earlier, later)
        return spec.operations_conflict(earlier.operation, later.operation)

    def check_step(self, request: OperationRequest) -> SchedulerResponse:
        """Decide whether admitting the step keeps the global order acyclic."""
        new_edges: set[tuple[str, str]] = set()
        provisional = request.provisional_step
        for recorded in self._steps_by_object[request.object_name]:
            pair = disjoint_ancestors(recorded.info, request.info)
            if pair is None:
                continue
            if self._conflict(request.object_name, recorded.step, provisional):
                new_edges.add(pair)
        if not new_edges:
            return SchedulerResponse.grant()
        trial = self._precedence.copy()
        trial.add_edges_from(new_edges)
        if nx.is_directed_acyclic_graph(trial):
            self._precedence = trial
            return SchedulerResponse.grant()
        self.ordering_aborts += 1
        return SchedulerResponse.abort(
            "inter-object ordering violation: admitting the step would make the "
            "serialisation orders of different objects incompatible"
        )

    def record_step(self, request: OperationRequest, value: Any) -> None:
        step = LocalStep(
            request.info.execution_id, request.object_name, request.operation, value
        )
        self._steps_by_object[request.object_name].append(_RecordedStep(step, request.info))

    def note_begin(self, transaction_id: str) -> None:
        """A top-level transaction became live (tracked for the frontier GC)."""
        self._live.add(transaction_id)

    def note_finished(self, transaction_id: str) -> None:
        """The transaction resolved; its node stays until the GC frontier passes it."""
        self._live.discard(transaction_id)

    def collect_garbage(self) -> int:
        """Frontier GC over the precedence graph and the recorded steps.

        Resolved transactions that no live transaction can reach in the
        precedence graph can never participate in a future cycle (see
        :func:`prune_unreachable`), so their nodes, edges and recorded
        steps — the only source of new edges out of them — are dropped
        together.  Decision-invariant by construction: only the memory
        profile changes, never an abort verdict.
        """
        removed, keep = prune_unreachable(self._precedence, self._live)
        keep |= self._live
        for object_name in list(self._steps_by_object):
            records = self._steps_by_object[object_name]
            kept = [record for record in records if record.info.top_level_id in keep]
            removed += len(records) - len(kept)
            if kept:
                records[:] = kept
            else:
                del self._steps_by_object[object_name]
        return removed

    def live_state_size(self) -> int:
        """Recorded steps plus precedence nodes/edges still retained."""
        return (
            sum(len(records) for records in self._steps_by_object.values())
            + self._precedence.number_of_nodes()
            + self._precedence.number_of_edges()
        )

    def forget_transaction(self, subtree_ids: set[str], node_ids: set[str]) -> None:
        """Drop an aborted transaction's steps and precedence nodes."""
        for records in self._steps_by_object.values():
            records[:] = [
                record for record in records if record.info.execution_id not in subtree_ids
            ]
        for node in node_ids:
            if node in self._precedence:
                self._precedence.remove_node(node)


# ---------------------------------------------------------------------------
# The modular scheduler
# ---------------------------------------------------------------------------


class ModularScheduler(Scheduler):
    """Per-object intra-object synchronisers plus an inter-object coordinator."""

    name = "modular"

    def __init__(
        self,
        default_strategy: Any = "locking",
        per_object_strategy: dict[str, Any] | None = None,
        inter_object_checks: bool = True,
        level: str = STEP_LEVEL,
        restart_policy: Any = "immediate",
        gate_mode: str = CASCADE_MODE,
    ):
        super().__init__(restart_policy=restart_policy)
        if level not in (OPERATION_LEVEL, STEP_LEVEL):
            raise ValueError(f"unknown conflict level {level!r}")
        self.level = level
        self.gate_mode = gate_mode
        self.default_strategy = default_strategy
        self.per_object_strategy = dict(per_object_strategy or {})
        validate_intra_strategy_spec(default_strategy)
        for strategy_spec in self.per_object_strategy.values():
            validate_intra_strategy_spec(strategy_spec)
        self.inter_object_checks = inter_object_checks
        self._synchronisers: dict[str, IntraObjectSynchroniser] = {}
        self._commit_checkers: list[IntraObjectSynchroniser] = []
        self._coordinator: InterObjectCoordinator | None = None
        self.waits = WaitsForGraph()
        self.authority = TimestampAuthority()
        self.gate = self._make_gate()
        self.deadlocks_detected = 0
        self.blocked_requests = 0
        self.gc_pruned_records = 0

    def _make_gate(self) -> CommitGate:
        # Intra-object synchronisers are free to execute against uncommitted
        # state (timestamp ordering does); the gate keeps committed histories
        # recoverable regardless of the per-object strategy mix.  It belongs
        # to the *inter-object* half of the split, so the intra-only
        # configuration — the paper's deliberately insufficient baseline —
        # runs without it.
        registry = self.conflicts_for(self.level)
        return CommitGate(
            lambda name: registry[name],
            step_level=self.level == STEP_LEVEL,
            mode=self.gate_mode,
        )

    # -- wiring ---------------------------------------------------------------

    def attach(self, object_base: ObjectBase) -> None:
        super().attach(object_base)
        self._synchronisers = {}
        registry = self.conflicts_for(self.level)
        step_level = self.level == STEP_LEVEL
        for object_name in object_base.object_names(include_environment=True):
            definition = object_base.definition(object_name)
            strategy_spec = (
                self.per_object_strategy.get(object_name)
                or definition.intra_object_synchroniser
                or self.default_strategy
            )
            self._synchronisers[object_name] = make_intra_strategy(
                strategy_spec, object_name, registry[object_name], step_level
            )
        self._refresh_commit_checkers()
        self._coordinator = InterObjectCoordinator(lambda name: registry[name], step_level)
        self.waits = WaitsForGraph()
        self.authority = TimestampAuthority()
        self.gate = self._make_gate()
        self.deadlocks_detected = 0
        self.blocked_requests = 0
        self.gc_pruned_records = 0

    def _refresh_commit_checkers(self) -> None:
        # Only synchronisers that override the default (always-grant)
        # commit hook are consulted on the commit path, so the common
        # locking/timestamp configurations pay nothing for it.
        self._commit_checkers = [
            synchroniser
            for synchroniser in self._synchronisers.values()
            if type(synchroniser).on_commit_request
            is not IntraObjectSynchroniser.on_commit_request
        ]

    def synchroniser_for(self, object_name: str) -> IntraObjectSynchroniser:
        try:
            return self._synchronisers[object_name]
        except KeyError:
            # Historically this silently handed out a locking synchroniser,
            # which masked typos and out-of-base accesses; unknown objects
            # are a caller error, exactly like the eager attach-time path.
            raise UnknownObjectError(
                f"no intra-object synchroniser for unknown object "
                f"{object_name!r}; attached objects: "
                f"{', '.join(sorted(self._synchronisers)) or '(none)'}"
            ) from None

    # -- scheduling --------------------------------------------------------------

    def on_transaction_begin(self, info: ExecutionInfo) -> None:
        if self._coordinator is not None:
            self._coordinator.note_begin(info.top_level_id)
        if self.inter_object_checks:
            self.gate.begin(info.top_level_id)

    def _park_with_deadlock_check(
        self, request: OperationRequest, response: SchedulerResponse
    ) -> SchedulerResponse:
        """Track a BLOCK in the waits-for graph; abort instead on a cycle.

        Used for both intra-object lock waits and aca dirty-read waits, so
        cycles mixing the two kinds of wait are detected in one graph.
        """
        transaction_id = request.info.top_level_id
        self.blocked_requests += 1
        self.waits.park(request.info.execution_id, transaction_id, set(response.blockers))
        cycle = self.waits.find_cycle_from(transaction_id)
        if cycle is not None:
            self.deadlocks_detected += 1
            self.waits.remove_transaction(transaction_id)
            return SchedulerResponse.abort(
                f"deadlock among transactions {sorted(set(cycle))}"
            )
        return response

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        intra = self.synchroniser_for(request.object_name)
        intra_response = intra.on_operation(request)
        if intra_response.blocked:
            return self._park_with_deadlock_check(request, intra_response)
        if intra_response.aborted:
            return intra_response

        self.waits.unpark(request.info.execution_id)
        if self.inter_object_checks:
            if self._coordinator is not None:
                inter_response = self._coordinator.check_step(request)
                if not inter_response.granted:
                    return inter_response
            gate_response = self.gate.check_operation(
                request.object_name, request.lock_item(self.level), request.info
            )
            if gate_response.blocked:
                return self._park_with_deadlock_check(request, gate_response)
            if not gate_response.granted:
                return gate_response
        return SchedulerResponse.grant()

    def on_operation_executed(self, request: OperationRequest, value: Any) -> None:
        self.synchroniser_for(request.object_name).on_operation_executed(request, value)
        if self._coordinator is not None:
            self._coordinator.record_step(request, value)
        if self.inter_object_checks:
            item = (
                LocalStep(request.info.execution_id, request.object_name, request.operation, value)
                if self.level == STEP_LEVEL
                else request.operation
            )
            self.gate.record_step(request.object_name, item, request.info.top_level_id)

    def _note_commit_veto(
        self, synchroniser: IntraObjectSynchroniser, response: SchedulerResponse
    ) -> None:
        """Hook: a synchroniser vetoed a commit (adaptive sampling taps this)."""

    def on_commit_request(self, info: ExecutionInfo) -> SchedulerResponse:
        for synchroniser in self._commit_checkers:
            response = synchroniser.on_commit_request(info)
            if not response.granted:
                self._note_commit_veto(synchroniser, response)
                return response
        if not self.inter_object_checks:
            return SchedulerResponse.grant()
        transaction_id = info.top_level_id
        response = self.gate.check_commit(transaction_id)
        if response.blocked:
            # A commit-wait must enter the same waits-for graph as the lock
            # and aca waits: a transaction holding an intra-object lock can
            # be commit-blocked on a transaction that waits for that very
            # lock, and neither the gate's graph nor ours alone sees the
            # full cycle.  (The gate still catches pure commit-wait cycles
            # itself.)
            self.waits.park(transaction_id, transaction_id, set(response.blockers))
            cycle = self.waits.find_cycle_from(transaction_id)
            if cycle is not None:
                self.deadlocks_detected += 1
                self.waits.remove_transaction(transaction_id)
                return SchedulerResponse.abort(
                    f"deadlock among transactions {sorted(set(cycle))} "
                    "(commit-wait closing a lock-wait cycle)"
                )
            return response
        if response.granted:
            self.waits.unpark(transaction_id)
        return response

    def _finish_transaction(self, info: ExecutionInfo, *, committed: bool) -> None:
        for synchroniser in self._synchronisers.values():
            if committed:
                synchroniser.on_transaction_committed(info.top_level_id)
            synchroniser.on_transaction_finished(info.top_level_id)
        if self._coordinator is not None:
            self._coordinator.note_finished(info.top_level_id)
        self.waits.remove_transaction(info.top_level_id)
        # Intra-object locks (held to transaction end) are now gone and any
        # read-from dependencies on this transaction are resolved.
        self._note_wakeups(self.gate.finish(info.top_level_id, committed=committed))

    def on_transaction_commit(self, info: ExecutionInfo) -> None:
        self._finish_transaction(info, committed=True)

    def on_transaction_abort(self, info: ExecutionInfo, subtree: tuple[str, ...]) -> None:
        self._finish_transaction(info, committed=False)
        if self._coordinator is not None:
            subtree_ids = set(subtree) | {info.execution_id}
            self._coordinator.forget_transaction(subtree_ids, subtree_ids)

    # -- live-state garbage collection ---------------------------------------------

    def collect_garbage(self) -> int:
        """Prune both halves of the split on the engine's GC cadence.

        The coordinator drops resolved transactions unreachable from the
        live frontier of its precedence graph (with their recorded steps),
        and each timestamp synchroniser drops records below its live
        watermark — so a long stream retains state proportional to the
        in-flight population, not to the total arrival count (ROADMAP
        item 5).  Both prunes are decision-invariant.
        """
        removed = sum(
            synchroniser.collect_garbage()
            for synchroniser in self._synchronisers.values()
        )
        if self._coordinator is not None:
            removed += self._coordinator.collect_garbage()
        self.gc_pruned_records += removed
        return removed

    def live_state_size(self) -> int:
        """Retained items across both halves of the modular split.

        Intra-object locks are released at transaction end and the gate
        prunes itself; the inter-object coordinator's recorded steps and
        precedence nodes and the per-object timestamp synchronisers'
        records persist until a garbage-collection pass proves them
        unreachable from the live frontier — the gauge reports whatever
        is retained *now*, so unbounded growth would still be visible.
        """
        size = self.gate.live_state_size() if self.inter_object_checks else 0
        size += sum(
            synchroniser.live_state_size()
            for synchroniser in self._synchronisers.values()
        )
        if self._coordinator is not None:
            size += self._coordinator.live_state_size()
        return size

    # -- descriptive ------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        strategies = {
            object_name: synchroniser.strategy
            for object_name, synchroniser in sorted(self._synchronisers.items())
        }
        ordering_aborts = self._coordinator.ordering_aborts if self._coordinator else 0
        return {
            "name": self.name,
            "level": self.level,
            "restart_policy": self.restart_policy.name,
            "inter_object_checks": self.inter_object_checks,
            "strategies": strategies,
            "ordering_aborts": ordering_aborts,
            "deadlocks_detected": self.deadlocks_detected,
            "blocked_requests": self.blocked_requests,
            "gc_pruned_records": self.gc_pruned_records,
            **self.gate.describe(),
        }
