"""Nested timestamp ordering (Reed's algorithm), Section 5.2 of the paper.

Rules enforced:

1. If incomparable executions issue conflicting local steps, the step of
   the execution with the smaller hierarchical timestamp must come first;
   an operation arriving "too late" (a conflicting step of a later-stamped
   execution has already been processed) causes the issuing transaction to
   abort.
2. Children created by sequentially issued messages receive increasing
   timestamps; this is realised by drawing each child's last timestamp
   component from a per-parent counter (:class:`TimestampAuthority`).

Both implementation strategies of the paper are available:

* ``level="operation"`` — the conservative scheme: for every local
  operation of every object the scheduler remembers the timestamps of the
  executions that issued it, and a new operation is admitted only when no
  *conflicting operation* carries a larger timestamp.
* ``level="step"`` — the provisional-execution scheme: the recorded
  information is the actual steps (with return values), so only
  *conflicting steps* can force an abort, admitting strictly more
  interleavings (e.g. enqueues and dequeues of different items).

Timestamps of ancestors are prefixes of their descendants' timestamps;
records issued by comparable executions never force an abort.

NTO grants operations against uncommitted state, so a transaction can
observe values influenced by a concurrent transaction that later aborts.
To keep committed histories legal the scheduler runs a
:class:`~repro.scheduler.recovery.CommitGate`.  In the default
``gate_mode="cascade"`` commits wait (the engine parks the transaction at
its commit point) until the transactions whose effects were observed have
committed, and cascade-abort when one of them aborted — Reed's "commit
dependencies" in the terms of this code base.  ``gate_mode="aca"``
instead blocks a conflicting read of uncommitted effects at execution
time, so commits never cascade.  How aborted transactions are
resubmitted is the ``restart_policy`` axis (immediate / backoff /
ordered; see :mod:`repro.scheduler.restart`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any

from ..core.operations import LocalOperation, LocalStep
from ..objectbase.base import ObjectBase
from .base import (
    OPERATION_LEVEL,
    STEP_LEVEL,
    ExecutionInfo,
    OperationRequest,
    Scheduler,
    SchedulerResponse,
)
from .recovery import CASCADE_MODE, CommitGate
from .timestamps import HierarchicalTimestamp, TimestampAuthority


@dataclass(slots=True)
class _StepRecord:
    """A processed step (or operation) and the timestamp of its issuer."""

    item: LocalOperation | LocalStep
    timestamp: HierarchicalTimestamp
    issuer_id: str


class NestedTimestampOrdering(Scheduler):
    """Reed-style nested timestamp ordering."""

    name = "nto"

    def __init__(
        self,
        level: str = OPERATION_LEVEL,
        restart_policy: Any = "immediate",
        gate_mode: str = CASCADE_MODE,
    ):
        super().__init__(restart_policy=restart_policy)
        if level not in (OPERATION_LEVEL, STEP_LEVEL):
            raise ValueError(f"unknown conflict level {level!r}")
        self.level = level
        self.gate_mode = gate_mode
        self.authority = TimestampAuthority()
        self._records: dict[str, list[_StepRecord]] = defaultdict(list)
        # First timestamp component per live top-level execution (the
        # garbage-collection watermark) and the execution ids of each live
        # transaction's subtree (so the authority's assignments can be
        # released at commit, when no subtree listing is provided).
        self._live_first: dict[str, int] = {}
        self._members: dict[str, set[str]] = {}
        self.timestamp_aborts = 0
        self.gc_pruned_records = 0
        self.gate = self._make_gate()

    def _make_gate(self) -> CommitGate:
        registry = self.conflicts_for(self.level)
        return CommitGate(
            lambda name: registry[name],
            step_level=self.level == STEP_LEVEL,
            mode=self.gate_mode,
        )

    # -- wiring ---------------------------------------------------------------

    def attach(self, object_base: ObjectBase) -> None:
        super().attach(object_base)
        self.authority = TimestampAuthority()
        self._records = defaultdict(list)
        self._live_first = {}
        self._members = {}
        self.timestamp_aborts = 0
        self.gc_pruned_records = 0
        self.gate = self._make_gate()

    # -- lifecycle --------------------------------------------------------------

    def on_transaction_begin(self, info: ExecutionInfo) -> None:
        timestamp = self.authority.assign_top_level(info.execution_id)
        self._live_first[info.execution_id] = timestamp.components[0]
        self._members[info.execution_id] = {info.execution_id}
        self.gate.begin(info.top_level_id)

    def on_invoke(self, parent: ExecutionInfo, child: ExecutionInfo) -> None:
        self.authority.assign_child(parent.execution_id, child.execution_id)
        self._members.setdefault(child.top_level_id, set()).add(child.execution_id)

    def _conflicting(self, object_name: str, recorded, requested) -> bool:
        # The recorded step was processed before the requested one, so NTO
        # rule 1 cares about "recorded conflicts with requested" only.
        if self.level == STEP_LEVEL and isinstance(recorded, LocalStep) and isinstance(requested, LocalStep):
            spec = self.step_conflicts[object_name]
            return spec.steps_conflict(recorded, requested)
        spec = self.operation_conflicts[object_name]
        recorded_operation = recorded.operation if isinstance(recorded, LocalStep) else recorded
        requested_operation = requested.operation if isinstance(requested, LocalStep) else requested
        return spec.operations_conflict(recorded_operation, requested_operation)

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        timestamp = self.authority.timestamp_of(request.info.execution_id)
        requested = request.lock_item(self.level)
        for record in self._records[request.object_name]:
            if record.timestamp.is_prefix_of(timestamp) or timestamp.is_prefix_of(record.timestamp):
                continue  # comparable executions are never reordered by NTO
            if record.timestamp < timestamp:
                continue
            if self._conflicting(request.object_name, record.item, requested):
                self.timestamp_aborts += 1
                return SchedulerResponse.abort(
                    f"timestamp order violation: conflicting step of {record.issuer_id} "
                    f"carries {record.timestamp}, requester has {timestamp}"
                )
        # In aca mode the gate may additionally block the step until the
        # uncommitted writers it would observe have resolved (no-op GRANT in
        # cascade mode).
        return self.gate.check_operation(request.object_name, requested, request.info)

    def on_operation_executed(self, request: OperationRequest, value: Any) -> None:
        timestamp = self.authority.timestamp_of(request.info.execution_id)
        if self.level == STEP_LEVEL:
            item: LocalOperation | LocalStep = LocalStep(
                request.info.execution_id, request.object_name, request.operation, value
            )
        else:
            item = request.operation
        self._records[request.object_name].append(
            _StepRecord(item, timestamp, request.info.execution_id)
        )
        self.gate.record_step(request.object_name, item, request.info.top_level_id)

    def on_commit_request(self, info: ExecutionInfo) -> SchedulerResponse:
        return self.gate.check_commit(info.top_level_id)

    def on_transaction_commit(self, info: ExecutionInfo) -> None:
        self._forget_live(info.top_level_id)
        self._note_wakeups(self.gate.finish(info.top_level_id, committed=True))

    def on_transaction_abort(self, info: ExecutionInfo, subtree: tuple[str, ...]) -> None:
        # The aborted executions' records are kept (their timestamps remain a
        # conservative lower bound, as in the paper's max-timestamp scheme),
        # but their timestamp assignments can be forgotten.
        self._members.setdefault(info.top_level_id, set()).update(subtree)
        self._forget_live(info.top_level_id)
        self._note_wakeups(self.gate.finish(info.top_level_id, committed=False))

    def _forget_live(self, top_level_id: str) -> None:
        """A transaction resolved: release its watermark and its timestamps.

        Records keep timestamps *by value*, so dropping the authority's
        assignments (ids are never reused — a restart begins a fresh
        top-level execution with a fresh timestamp) loses nothing.
        """
        self._live_first.pop(top_level_id, None)
        self.authority.forget_subtree(self._members.pop(top_level_id, set()))

    # -- live-state garbage collection ---------------------------------------------

    def collect_garbage(self) -> int:
        """Drop records no live or future execution can violate.

        NTO rule 1 aborts a requester only when a *conflicting* record
        carries a **larger** timestamp.  Top-level timestamps grow with
        begin order — the paper's "if e terminates before e' begins then
        hts(e) < hts(e')", which it notes is what allows step information
        to be garbage-collected — so a record whose first component is
        smaller than every live transaction's first component compares
        below every current and future requester and can never force an
        abort again.

        Returns:
            The number of pruned records.
        """
        watermark = min(self._live_first.values(), default=None)
        removed = 0
        for object_name in list(self._records):
            records = self._records[object_name]
            kept = (
                []
                if watermark is None
                else [
                    record
                    for record in records
                    if record.timestamp.components[0] >= watermark
                ]
            )
            removed += len(records) - len(kept)
            if kept:
                records[:] = kept
            else:
                del self._records[object_name]
        self.gc_pruned_records += removed
        return removed

    def live_state_size(self) -> int:
        """Retained items: timestamp records, assignments, and the gate's state."""
        return (
            sum(len(records) for records in self._records.values())
            + self.authority.size()
            + self.gate.live_state_size()
        )

    # -- descriptive ------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "level": self.level,
            "restart_policy": self.restart_policy.name,
            "timestamp_aborts": self.timestamp_aborts,
            "recorded_steps": sum(len(records) for records in self._records.values()),
            "gc_pruned_records": self.gc_pruned_records,
            **self.gate.describe(),
        }


class StepLevelNestedTimestampOrdering(NestedTimestampOrdering):
    """Convenience subclass preconfigured for step-level conflict checks."""

    name = "nto-step"

    def __init__(
        self, restart_policy: Any = "immediate", gate_mode: str = CASCADE_MODE
    ) -> None:
        super().__init__(level=STEP_LEVEL, restart_policy=restart_policy, gate_mode=gate_mode)
