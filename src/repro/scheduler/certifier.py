"""Optimistic certifier scheduler.

Section 6 of the paper mentions "techniques that resemble certifiers (or
'optimistic' schedulers) in conventional database concurrency control"
which favour unconstrained intra-object execution at the price of
validation aborts.  This scheduler realises that end of the trade-off:

* every local operation is granted immediately (no blocking, no timestamp
  checks);
* when a top-level transaction asks to commit, its conflicts with already
  *committed* transactions are examined — if serialising it after its
  predecessors would close a cycle in the committed-precedence graph, the
  transaction is aborted (backward validation), otherwise it commits and
  its precedence edges become part of the committed graph.

Validation works at *disjoint-ancestor* granularity (the children of the
least common ancestor of the two conflicting executions, or their
top-level transactions when unrelated) — the same sibling-level
projection of the serialisation graph Theorem 5 constrains.  Validating
only whole transactions would miss cycles among the parallel children of
a single nested transaction, whose sibling orders on different objects
must also be mutually compatible.

The committed projection of any run is therefore serialisable, which the
post-hoc certification in :mod:`repro.analysis` verifies.

Serialisable is not yet legal: executing against uncommitted state allows
dirty reads, and a reader that commits before its writer aborts would
record return values no replay of the committed projection can reproduce.
A :class:`~repro.scheduler.recovery.CommitGate` therefore defers commits
(the engine parks the transaction at its commit point — still never
blocking an *operation*) until every transaction whose effects the
candidate observed has resolved, cascade-aborting when one aborted.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Any

import networkx as nx

from ..core.operations import LocalStep
from ..objectbase.base import ObjectBase
from .base import (
    OPERATION_LEVEL,
    STEP_LEVEL,
    ExecutionInfo,
    OperationRequest,
    Scheduler,
    SchedulerResponse,
    disjoint_ancestors,
)
from .recovery import CommitGate


@dataclass
class _ExecutedStep:
    """A step executed on behalf of some method execution."""

    sequence: int
    step: LocalStep
    info: ExecutionInfo

    @property
    def transaction_id(self) -> str:
        return self.info.top_level_id


class OptimisticCertifier(Scheduler):
    """Execute-then-validate concurrency control (backward validation)."""

    name = "certifier"

    def __init__(self, level: str = STEP_LEVEL):
        super().__init__()
        if level not in (OPERATION_LEVEL, STEP_LEVEL):
            raise ValueError(f"unknown conflict level {level!r}")
        self.level = level
        self._sequence = itertools.count(1)
        self._steps_by_object: dict[str, list[_ExecutedStep]] = defaultdict(list)
        self._committed: set[str] = set()
        self._committed_graph = nx.DiGraph()
        self._nodes_by_transaction: dict[str, set[str]] = defaultdict(set)
        self.validation_aborts = 0
        self.gate = self._make_gate()

    def _make_gate(self) -> CommitGate:
        registry = self.conflicts_for(self.level)
        return CommitGate(lambda name: registry[name], step_level=self.level == STEP_LEVEL)

    def attach(self, object_base: ObjectBase) -> None:
        super().attach(object_base)
        self._sequence = itertools.count(1)
        self._steps_by_object = defaultdict(list)
        self._committed = set()
        self._committed_graph = nx.DiGraph()
        self._nodes_by_transaction = defaultdict(set)
        self.validation_aborts = 0
        self.gate = self._make_gate()

    def on_transaction_begin(self, info: ExecutionInfo) -> None:
        self.gate.begin(info.top_level_id)

    # -- execution phase ----------------------------------------------------------

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        return SchedulerResponse.grant()

    def on_operation_executed(self, request: OperationRequest, value: Any) -> None:
        step = LocalStep(
            request.info.execution_id, request.object_name, request.operation, value
        )
        self._steps_by_object[request.object_name].append(
            _ExecutedStep(next(self._sequence), step, request.info)
        )
        item = step if self.level == STEP_LEVEL else request.operation
        self.gate.record_step(request.object_name, item, request.info.top_level_id)

    # -- validation phase ----------------------------------------------------------

    def _conflicting(self, object_name: str, earlier: LocalStep, later: LocalStep) -> bool:
        # Precedence edges follow the serialisation-graph definition: only
        # "earlier conflicts with later" forces the earlier transaction first.
        if self.level == STEP_LEVEL:
            spec = self.step_conflicts[object_name]
            return spec.steps_conflict(earlier, later)
        spec = self.operation_conflicts[object_name]
        return spec.operations_conflict(earlier.operation, later.operation)

    def _precedence_edges(
        self, candidate_id: str
    ) -> tuple[set[tuple[str, str]], dict[str, str]]:
        """Sibling-level edges the candidate adds, plus node ownership.

        Every pair of conflicting steps of incomparable executions — where
        at least one side belongs to the candidate and both sides belong to
        resolved-or-candidate transactions — induces an edge between their
        disjoint ancestors: top-level transactions when unrelated, sibling
        executions inside the candidate when the conflict is internal.
        """
        relevant = self._committed | {candidate_id}
        edges: set[tuple[str, str]] = set()
        owner_of: dict[str, str] = {}
        for object_name, records in self._steps_by_object.items():
            for first, second in itertools.combinations(records, 2):
                if first.transaction_id not in relevant or second.transaction_id not in relevant:
                    continue
                if candidate_id not in (first.transaction_id, second.transaction_id):
                    continue
                earlier, later = (first, second) if first.sequence < second.sequence else (second, first)
                if not self._conflicting(object_name, earlier.step, later.step):
                    continue
                pair = disjoint_ancestors(earlier.info, later.info)
                if pair is None:
                    continue  # comparable executions: no ordering constraint
                edges.add(pair)
                owner_of[pair[0]] = earlier.transaction_id
                owner_of[pair[1]] = later.transaction_id
        return edges, owner_of

    def on_commit_request(self, info: ExecutionInfo) -> SchedulerResponse:
        candidate_id = info.top_level_id
        # Recoverability first: wait out (or cascade on) live dependencies,
        # so validation only ever runs against resolved predecessors.
        gate_response = self.gate.check_commit(candidate_id)
        if not gate_response.granted:
            return gate_response
        edges, owner_of = self._precedence_edges(candidate_id)
        trial_graph = self._committed_graph.copy()
        trial_graph.add_node(candidate_id)
        trial_graph.add_edges_from(edges)
        if nx.is_directed_acyclic_graph(trial_graph):
            self._committed_graph = trial_graph
            for node, owner in owner_of.items():
                # Ownership is only needed to clean up after an abort;
                # committed owners can never abort, so don't index them.
                if owner not in self._committed:
                    self._nodes_by_transaction[owner].add(node)
            self._nodes_by_transaction[candidate_id].add(candidate_id)
            return SchedulerResponse.grant()
        self.validation_aborts += 1
        return SchedulerResponse.abort(
            "validation failed: committing would create a precedence cycle"
        )

    def on_transaction_commit(self, info: ExecutionInfo) -> None:
        self._committed.add(info.top_level_id)
        # The nodes stay in the committed graph; only the abort-cleanup
        # index is released (a committed transaction never aborts).
        self._nodes_by_transaction.pop(info.top_level_id, None)
        self._note_wakeups(self.gate.finish(info.top_level_id, committed=True))

    def on_transaction_abort(self, info: ExecutionInfo, subtree: tuple[str, ...]) -> None:
        transaction_id = info.top_level_id
        for records in self._steps_by_object.values():
            records[:] = [record for record in records if record.transaction_id != transaction_id]
        if transaction_id not in self._committed:
            # A failed candidate never merged its trial graph, but edges
            # *touching* it may have been added by later-validating peers;
            # drop every node the aborted transaction owns.
            for node in self._nodes_by_transaction.pop(transaction_id, set()):
                if node in self._committed_graph:
                    self._committed_graph.remove_node(node)
            if transaction_id in self._committed_graph:
                self._committed_graph.remove_node(transaction_id)
        self._note_wakeups(self.gate.finish(transaction_id, committed=False))

    # -- descriptive ------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "level": self.level,
            "validation_aborts": self.validation_aborts,
            "committed": len(self._committed),
            **self.gate.describe(),
        }
