"""Optimistic certifier scheduler.

Section 6 of the paper mentions "techniques that resemble certifiers (or
'optimistic' schedulers) in conventional database concurrency control"
which favour unconstrained intra-object execution at the price of
validation aborts.  This scheduler realises that end of the trade-off:

* every local operation is granted immediately (no blocking, no timestamp
  checks);
* when a top-level transaction asks to commit, its conflicts with already
  *committed* transactions are examined — if serialising it after its
  predecessors would close a cycle in the committed-precedence graph, the
  transaction is aborted (backward validation), otherwise it commits and
  its precedence edges become part of the committed graph.

Validation works at *disjoint-ancestor* granularity (the children of the
least common ancestor of the two conflicting executions, or their
top-level transactions when unrelated) — the same sibling-level
projection of the serialisation graph Theorem 5 constrains.  Validating
only whole transactions would miss cycles among the parallel children of
a single nested transaction, whose sibling orders on different objects
must also be mutually compatible.

Validation is **incremental**: every executed step is classified exactly
once, against the steps already recorded on its object
(``on_operation_executed`` — cost proportional to the step's conflicting
predecessors), and the resulting candidate edges are filed under both
involved transactions.  A commit request then merely *selects* the filed
edges whose other side has committed — it performs **zero** conflict-spec
calls and never re-enumerates committed-vs-committed step pairs — and
feeds them into the committed precedence graph with a DFS-based
incremental cycle check (edges are added in place and rolled back on a
cycle; the graph is never copied).  The original revalidate-everything
implementation is retained as ``_precedence_edges_legacy`` and
``check=True`` cross-checks every commit decision against it.

The committed projection of any run is therefore serialisable, which the
post-hoc certification in :mod:`repro.analysis` verifies.

Serialisable is not yet legal: executing against uncommitted state allows
dirty reads, and a reader that commits before its writer aborts would
record return values no replay of the committed projection can reproduce.
A :class:`~repro.scheduler.recovery.CommitGate` closes that hole; how is
the ``gate_mode`` axis.  The default ``"cascade"`` defers commits (the
engine parks the transaction at its commit point — still never blocking
an *operation*) until every transaction whose effects the candidate
observed has resolved, cascade-aborting when one aborted; ``"aca"``
trades the no-operation-blocking property away and blocks a conflicting
read of uncommitted effects at execution time, so commits never cascade.
How aborted transactions are resubmitted is the scheduler's
``restart_policy`` axis (:mod:`repro.scheduler.restart`) — under the
default immediate policy, contended hotspot workloads degenerate into
cascade storms (aborted readers restart straight back into the unchanged
hot set); ``"backoff"``/``"ordered"`` break the storm, which E14
measures.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Any

import networkx as nx

from ..core.errors import VerificationError
from ..core.graphs import has_path
from ..core.operations import LocalStep
from ..core.values import freeze
from ..objectbase.base import ObjectBase
from .base import (
    OPERATION_LEVEL,
    STEP_LEVEL,
    ExecutionInfo,
    OperationRequest,
    Scheduler,
    SchedulerResponse,
    disjoint_ancestors,
)
from .recovery import CASCADE_MODE, CommitGate


@dataclass(slots=True)
class _ExecutedStep:
    """A step executed on behalf of some method execution."""

    sequence: int
    step: LocalStep
    info: ExecutionInfo

    @property
    def transaction_id(self) -> str:
        return self.info.top_level_id


@dataclass(frozen=True, slots=True)
class _CandidateEdge:
    """A sibling-level precedence edge discovered at step-execution time.

    ``source``/``target`` are the disjoint ancestors the edge joins;
    ``earlier_tx``/``later_tx`` own the two sides (earlier = the side whose
    step executed first).  The edge becomes *active* for a committing
    candidate once the other involved transaction has committed (or both
    sides belong to the candidate itself).
    """

    source: str
    target: str
    earlier_tx: str
    later_tx: str

    def other(self, transaction_id: str) -> str:
        return self.later_tx if self.earlier_tx == transaction_id else self.earlier_tx


class OptimisticCertifier(Scheduler):
    """Execute-then-validate concurrency control (backward validation)."""

    name = "certifier"

    def __init__(
        self,
        level: str = STEP_LEVEL,
        check: bool = False,
        restart_policy: Any = "immediate",
        gate_mode: str = CASCADE_MODE,
    ):
        super().__init__(restart_policy=restart_policy)
        if level not in (OPERATION_LEVEL, STEP_LEVEL):
            raise ValueError(f"unknown conflict level {level!r}")
        self.level = level
        self.check = check
        self.gate_mode = gate_mode
        self._sequence = itertools.count(1)
        self._steps_by_object: dict[str, list[_ExecutedStep]] = defaultdict(list)
        self._committed: set[str] = set()
        self._committed_graph = nx.DiGraph()
        self._nodes_by_transaction: dict[str, set[str]] = defaultdict(set)
        self._pending_edges: dict[str, set[_CandidateEdge]] = defaultdict(set)
        self._touched_objects: dict[str, set[str]] = defaultdict(set)
        self._live_transactions: set[str] = set()
        # Begin/resolve stamps (drawn from the step sequence counter) and
        # the nodes/objects of *retained* committed transactions, kept so
        # collect_garbage can decide overlap and clean up; all three are
        # dropped when the transaction's records are pruned.
        self._begin_seq: dict[str, int] = {}
        self._resolve_seq: dict[str, int] = {}
        self._committed_nodes: dict[str, set[str]] = {}
        self._committed_touched: dict[str, set[str]] = {}
        # Ids whose records were garbage-collected — tracked only under
        # check=True so the legacy oracle comparison can exclude edges the
        # re-enumeration can no longer see (an unbounded id set is fine in
        # a testing mode).
        self._pruned_committed: set[str] | None = set() if check else None
        self.validation_aborts = 0
        self.classified_pairs = 0
        self.commit_conflict_calls = 0
        self.gc_pruned_records = 0
        self.gate = self._make_gate()

    def _make_gate(self) -> CommitGate:
        registry = self.conflicts_for(self.level)
        return CommitGate(
            lambda name: registry[name],
            step_level=self.level == STEP_LEVEL,
            mode=self.gate_mode,
        )

    def attach(self, object_base: ObjectBase) -> None:
        super().attach(object_base)
        self._sequence = itertools.count(1)
        self._steps_by_object = defaultdict(list)
        self._committed = set()
        self._committed_graph = nx.DiGraph()
        self._nodes_by_transaction = defaultdict(set)
        self._pending_edges = defaultdict(set)
        self._touched_objects = defaultdict(set)
        self._live_transactions = set()
        self._begin_seq = {}
        self._resolve_seq = {}
        self._committed_nodes = {}
        self._committed_touched = {}
        self._pruned_committed = set() if self.check else None
        self.validation_aborts = 0
        self.classified_pairs = 0
        self.commit_conflict_calls = 0
        self.gc_pruned_records = 0
        self.gate = self._make_gate()

    def on_transaction_begin(self, info: ExecutionInfo) -> None:
        transaction_id = info.top_level_id
        self._live_transactions.add(transaction_id)
        self._begin_seq[transaction_id] = next(self._sequence)
        self.gate.begin(transaction_id)

    # -- execution phase ----------------------------------------------------------

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        # Unconditional GRANT in cascade mode; in aca mode the gate blocks
        # steps that would observe uncommitted effects.
        item = request.lock_item(self.level)
        return self.gate.check_operation(request.object_name, item, request.info)

    def on_operation_executed(self, request: OperationRequest, value: Any) -> None:
        step = LocalStep(
            request.info.execution_id, request.object_name, request.operation, value
        )
        record = _ExecutedStep(next(self._sequence), step, request.info)
        records = self._steps_by_object[request.object_name]
        # Classify the new step against the object's recorded suffix exactly
        # once: every earlier step executed first, so only "earlier conflicts
        # with later" can force an edge (the serialisation-graph rule).
        for earlier in records:
            self.classified_pairs += 1
            if not self._conflicting(request.object_name, earlier.step, record.step):
                continue
            pair = disjoint_ancestors(earlier.info, record.info)
            if pair is None:
                continue  # comparable executions: no ordering constraint
            edge = _CandidateEdge(pair[0], pair[1], earlier.transaction_id, record.transaction_id)
            # A committed predecessor never revalidates (its file was popped
            # at commit), so the edge is filed only under sides that can
            # still reach validation.
            if earlier.transaction_id not in self._committed:
                self._pending_edges[earlier.transaction_id].add(edge)
            if record.transaction_id != earlier.transaction_id:
                self._pending_edges[record.transaction_id].add(edge)
        records.append(record)
        self._touched_objects[record.transaction_id].add(request.object_name)
        item = step if self.level == STEP_LEVEL else request.operation
        self.gate.record_step(request.object_name, item, request.info.top_level_id)

    # -- validation phase ----------------------------------------------------------

    def _conflicting(self, object_name: str, earlier: LocalStep, later: LocalStep) -> bool:
        # Precedence edges follow the serialisation-graph definition: only
        # "earlier conflicts with later" forces the earlier transaction first.
        if self.level == STEP_LEVEL:
            spec = self.step_conflicts[object_name]
            return spec.steps_conflict(earlier, later)
        spec = self.operation_conflicts[object_name]
        return spec.operations_conflict(earlier.operation, later.operation)

    def _active_edges(self, candidate_id: str) -> list[_CandidateEdge]:
        """The candidate's filed edges whose other side has resolved.

        Pure selection over the pre-classified edge sets: no conflict-spec
        calls, no step-pair enumeration.
        """
        active = []
        for edge in self._pending_edges.get(candidate_id, ()):
            other = edge.other(candidate_id)
            if other == candidate_id or other in self._committed:
                active.append(edge)
        return active

    def _precedence_edges_legacy(
        self, candidate_id: str
    ) -> tuple[set[tuple[str, str]], dict[str, str]]:
        """The original full re-enumeration over every recorded step pair.

        Retained as the ``check=True`` oracle for the incremental edge
        sets; its conflict-spec calls are counted separately so the
        "no committed-vs-committed enumeration" unit test can tell the two
        apart.
        """
        relevant = self._committed | {candidate_id}
        edges: set[tuple[str, str]] = set()
        owner_of: dict[str, str] = {}
        for object_name, records in self._steps_by_object.items():
            for first, second in itertools.combinations(records, 2):
                if first.transaction_id not in relevant or second.transaction_id not in relevant:
                    continue
                if candidate_id not in (first.transaction_id, second.transaction_id):
                    continue
                earlier, later = (first, second) if first.sequence < second.sequence else (second, first)
                self.commit_conflict_calls += 1
                if not self._conflicting(object_name, earlier.step, later.step):
                    continue
                pair = disjoint_ancestors(earlier.info, later.info)
                if pair is None:
                    continue  # comparable executions: no ordering constraint
                edges.add(pair)
                owner_of[pair[0]] = earlier.transaction_id
                owner_of[pair[1]] = later.transaction_id
        return edges, owner_of

    def _check_against_legacy(self, candidate_id: str, active: list[_CandidateEdge]) -> None:
        # Edges whose other side's records were garbage-collected cannot be
        # re-derived by the legacy re-enumeration (the steps are gone);
        # compare only what both sides can still see.
        pruned = self._pruned_committed or set()
        active = [edge for edge in active if edge.other(candidate_id) not in pruned]
        legacy_edges, legacy_owner_of = self._precedence_edges_legacy(candidate_id)
        incremental_edges = {(edge.source, edge.target) for edge in active}
        if incremental_edges != legacy_edges:
            raise VerificationError(
                f"certifier check: candidate {candidate_id!r} incremental edges "
                f"{sorted(incremental_edges)!r} != legacy {sorted(legacy_edges)!r}"
            )
        owner_of = self._owner_map(active)
        if owner_of != legacy_owner_of:
            raise VerificationError(
                f"certifier check: candidate {candidate_id!r} owner map diverges "
                f"({owner_of!r} != {legacy_owner_of!r})"
            )

    @staticmethod
    def _owner_map(active: list[_CandidateEdge]) -> dict[str, str]:
        owner_of: dict[str, str] = {}
        for edge in active:
            owner_of[edge.source] = edge.earlier_tx
            owner_of[edge.target] = edge.later_tx
        return owner_of

    def on_commit_request(self, info: ExecutionInfo) -> SchedulerResponse:
        candidate_id = info.top_level_id
        # Recoverability first: wait out (or cascade on) live dependencies,
        # so validation only ever runs against resolved predecessors.
        gate_response = self.gate.check_commit(candidate_id)
        if not gate_response.granted:
            return gate_response
        active = self._active_edges(candidate_id)
        if self.check:
            self._check_against_legacy(candidate_id, active)
        # Trial insertion into the committed graph itself — no copy.  Each
        # genuinely new edge runs a DFS reachability check first (a cycle
        # must close at its last-inserted edge); on failure everything the
        # trial added is rolled back.
        graph = self._committed_graph
        added_edges: list[tuple[str, str]] = []
        added_nodes: list[str] = []
        if candidate_id not in graph:
            graph.add_node(candidate_id)
            added_nodes.append(candidate_id)
        cyclic = False
        for source, target in sorted({(edge.source, edge.target) for edge in active}):
            if graph.has_edge(source, target):
                continue
            if has_path(graph, target, source):
                cyclic = True
                break
            for node in (source, target):
                if node not in graph:
                    added_nodes.append(node)
            graph.add_edge(source, target)
            added_edges.append((source, target))
        if not cyclic:
            owner_of = self._owner_map(active)
            for node, owner in owner_of.items():
                # Ownership is only needed to clean up after an abort;
                # committed owners can never abort, so don't index them.
                if owner not in self._committed:
                    self._nodes_by_transaction[owner].add(node)
            self._nodes_by_transaction[candidate_id].add(candidate_id)
            return SchedulerResponse.grant()
        for source, target in added_edges:
            graph.remove_edge(source, target)
        for node in added_nodes:
            graph.remove_node(node)
        self.validation_aborts += 1
        return SchedulerResponse.abort(
            "validation failed: committing would create a precedence cycle"
        )

    def on_transaction_commit(self, info: ExecutionInfo) -> None:
        transaction_id = info.top_level_id
        self._committed.add(transaction_id)
        self._live_transactions.discard(transaction_id)
        self._resolve_seq[transaction_id] = next(self._sequence)
        # The nodes stay in the committed graph; ownership moves to the
        # retained-committed index so collect_garbage can remove them once
        # nothing live can reach them (a committed transaction never
        # aborts, so the abort-cleanup index is done with them).
        self._committed_nodes[transaction_id] = self._nodes_by_transaction.pop(
            transaction_id, set()
        )
        # The transaction never revalidates, so its own edge file is done;
        # edges shared with still-live peers remain filed under the peer.
        self._pending_edges.pop(transaction_id, None)
        touched = self._touched_objects.pop(transaction_id, set())
        for object_name in touched:
            self._prune_dominated_records(object_name)
        self._committed_touched[transaction_id] = touched
        self._note_wakeups(self.gate.finish(transaction_id, committed=True))

    def _prune_dominated_records(self, object_name: str) -> None:
        """Drop committed records dominated by an equivalent committed record.

        A committed record is dominated when an earlier committed record of
        the *same execution* carries the same operation signature and return
        value: every future step classifies identically against the two
        (same conflict verdicts, same disjoint-ancestor pair, same owners),
        so the duplicate can never contribute a new edge.
        """
        records = self._steps_by_object.get(object_name)
        if not records:
            return
        seen: set[tuple] = set()
        kept: list[_ExecutedStep] = []
        for record in records:
            if record.transaction_id in self._committed:
                key = self._domination_key(record)
                if key is not None:
                    if key in seen:
                        continue
                    seen.add(key)
            kept.append(record)
        if len(kept) != len(records):
            records[:] = kept

    @staticmethod
    def _domination_key(record: _ExecutedStep) -> tuple | None:
        try:
            return (
                record.step.execution_id,
                record.step.operation.signature(),
                freeze(record.step.return_value),
            )
        except TypeError:
            return None  # unhashable payloads: keep the record

    def on_transaction_abort(self, info: ExecutionInfo, subtree: tuple[str, ...]) -> None:
        transaction_id = info.top_level_id
        self._live_transactions.discard(transaction_id)
        self._begin_seq.pop(transaction_id, None)
        # Abort cleanup touches only the objects the transaction used.
        for object_name in self._touched_objects.pop(transaction_id, ()):
            records = self._steps_by_object.get(object_name)
            if records:
                records[:] = [
                    record for record in records if record.transaction_id != transaction_id
                ]
        # Un-file the aborted transaction's candidate edges on both sides.
        for edge in self._pending_edges.pop(transaction_id, ()):
            other = edge.other(transaction_id)
            if other != transaction_id and other in self._pending_edges:
                self._pending_edges[other].discard(edge)
        if transaction_id not in self._committed:
            # A failed candidate never merged its trial edges, but edges
            # *touching* it may have been added by later-validating peers;
            # drop every node the aborted transaction owns.
            for node in self._nodes_by_transaction.pop(transaction_id, set()):
                if node in self._committed_graph:
                    self._committed_graph.remove_node(node)
            if transaction_id in self._committed_graph:
                self._committed_graph.remove_node(transaction_id)
        self._note_wakeups(self.gate.finish(transaction_id, committed=False))

    # -- live-state garbage collection ---------------------------------------------

    def collect_garbage(self) -> int:
        """Prune committed records and graph nodes nothing live can reach.

        A committed transaction's step records exist to seed precedence
        edges towards *later* steps; such an edge can only close a cycle
        through a path leading back to the transaction.  Two facts bound
        when that is still possible:

        * a new *in-edge* of a committed transaction T requires another
          transaction with a step before one of T's — i.e. one that began
          before T resolved — so once every such overlapper has resolved,
          T's in-edge set is final;
        * a newly inserted edge always *targets* a transaction that is
          live at insertion time, so any future path into T must start
          from a currently-live node (or a committed one some live
          transaction still overlaps) and continue over edges that
          already exist.

        Hence: mark everything forward-reachable in the committed graph
        from the *frontier* — live transactions plus committed ones whose
        resolve stamp is later than the oldest live begin stamp — and
        prune every non-frontier committed transaction none of whose
        nodes is marked: drop its step records, its graph nodes, and its
        bookkeeping.  Edges already *filed* under live peers survive
        (they were discovered while the records existed and re-add a
        fresh, in-edge-free node at validation, which cannot close a
        cycle), so decisions are unchanged — only memory shrinks, which
        is what keeps week-long streams O(in-flight) instead of O(total
        arrivals).

        Returns:
            The number of pruned step records.
        """
        if not self._resolve_seq:
            return 0
        min_live_begin = min(
            (self._begin_seq[t] for t in self._live_transactions), default=None
        )
        if min_live_begin is None:
            frontier = set()
        else:
            frontier = {
                t for t, seq in self._resolve_seq.items() if seq > min_live_begin
            }
        if len(frontier) == len(self._resolve_seq):
            return 0  # every retained transaction is still overlapped
        graph = self._committed_graph
        marked: set[str] = set()
        stack: list[str] = []
        for t in self._live_transactions:
            stack.extend(self._nodes_by_transaction.get(t, ()))
        for t in frontier:
            stack.extend(self._committed_nodes.get(t, ()))
        while stack:
            node = stack.pop()
            if node in marked or node not in graph:
                continue
            marked.add(node)
            stack.extend(graph.successors(node))
        removed = 0
        for transaction_id in [
            t for t in self._resolve_seq if t not in frontier
        ]:
            nodes = self._committed_nodes.get(transaction_id, set())
            if any(node in marked for node in nodes):
                continue
            for object_name in self._committed_touched.pop(transaction_id, ()):
                records = self._steps_by_object.get(object_name)
                if not records:
                    continue
                kept = [
                    record
                    for record in records
                    if record.transaction_id != transaction_id
                ]
                removed += len(records) - len(kept)
                if kept:
                    records[:] = kept
                else:
                    del self._steps_by_object[object_name]
            for node in nodes:
                if node in graph:
                    graph.remove_node(node)
            self._committed_nodes.pop(transaction_id, None)
            self._resolve_seq.pop(transaction_id, None)
            self._begin_seq.pop(transaction_id, None)
            if self._pruned_committed is not None:
                self._pruned_committed.add(transaction_id)
        # Orphan sweep: nodes re-added by a trial insertion after their
        # owner was pruned carry out-edges only (an in-edge would require
        # an overlapper, which would have kept the owner in the frontier);
        # they can never sit on a cycle, so unmarked unowned nodes go too.
        owned: set[str] = set()
        for nodes in self._nodes_by_transaction.values():
            owned.update(nodes)
        for nodes in self._committed_nodes.values():
            owned.update(nodes)
        for node in [n for n in graph.nodes if n not in marked and n not in owned]:
            graph.remove_node(node)
        self.gc_pruned_records += removed
        return removed

    def live_state_size(self) -> int:
        """Retained items: step records, filed edges, graph nodes/edges, gate."""
        return (
            sum(len(records) for records in self._steps_by_object.values())
            + sum(len(edges) for edges in self._pending_edges.values())
            + self._committed_graph.number_of_nodes()
            + self._committed_graph.number_of_edges()
            + self.gate.live_state_size()
        )

    # -- descriptive ------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "level": self.level,
            "restart_policy": self.restart_policy.name,
            "validation_aborts": self.validation_aborts,
            "committed": len(self._committed),
            "classified_pairs": self.classified_pairs,
            "commit_conflict_calls": self.commit_conflict_calls,
            "gc_pruned_records": self.gc_pruned_records,
            **self.gate.describe(),
        }
