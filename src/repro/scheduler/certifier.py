"""Optimistic certifier scheduler.

Section 6 of the paper mentions "techniques that resemble certifiers (or
'optimistic' schedulers) in conventional database concurrency control"
which favour unconstrained intra-object execution at the price of
validation aborts.  This scheduler realises that end of the trade-off:

* every local operation is granted immediately (no blocking, no timestamp
  checks);
* when a top-level transaction asks to commit, its conflicts with already
  *committed* transactions are examined — if serialising it after its
  predecessors would close a cycle in the committed-precedence graph, the
  transaction is aborted (backward validation), otherwise it commits and
  its precedence edges become part of the committed graph.

The committed projection of any run is therefore serialisable, which the
post-hoc certification in :mod:`repro.analysis` verifies.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Any

import networkx as nx

from ..core.operations import LocalStep
from ..objectbase.base import ObjectBase
from .base import (
    OPERATION_LEVEL,
    STEP_LEVEL,
    ExecutionInfo,
    OperationRequest,
    Scheduler,
    SchedulerResponse,
)


@dataclass
class _ExecutedStep:
    """A step executed on behalf of some top-level transaction."""

    sequence: int
    step: LocalStep
    transaction_id: str


class OptimisticCertifier(Scheduler):
    """Execute-then-validate concurrency control (backward validation)."""

    name = "certifier"

    def __init__(self, level: str = STEP_LEVEL):
        super().__init__()
        if level not in (OPERATION_LEVEL, STEP_LEVEL):
            raise ValueError(f"unknown conflict level {level!r}")
        self.level = level
        self._sequence = itertools.count(1)
        self._steps_by_object: dict[str, list[_ExecutedStep]] = defaultdict(list)
        self._committed: set[str] = set()
        self._committed_graph = nx.DiGraph()
        self.validation_aborts = 0

    def attach(self, object_base: ObjectBase) -> None:
        super().attach(object_base)
        self._sequence = itertools.count(1)
        self._steps_by_object = defaultdict(list)
        self._committed = set()
        self._committed_graph = nx.DiGraph()
        self.validation_aborts = 0

    # -- execution phase ----------------------------------------------------------

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        return SchedulerResponse.grant()

    def on_operation_executed(self, request: OperationRequest, value: Any) -> None:
        step = LocalStep(
            request.info.execution_id, request.object_name, request.operation, value
        )
        self._steps_by_object[request.object_name].append(
            _ExecutedStep(next(self._sequence), step, request.info.top_level_id)
        )

    # -- validation phase ----------------------------------------------------------

    def _conflicting(self, object_name: str, earlier: LocalStep, later: LocalStep) -> bool:
        # Precedence edges follow the serialisation-graph definition: only
        # "earlier conflicts with later" forces the earlier transaction first.
        if self.level == STEP_LEVEL:
            spec = self.step_conflicts[object_name]
            return spec.steps_conflict(earlier, later)
        spec = self.operation_conflicts[object_name]
        return spec.operations_conflict(earlier.operation, later.operation)

    def _precedence_edges(self, candidate_id: str) -> set[tuple[str, str]]:
        """Edges between committed transactions and the candidate."""
        relevant = self._committed | {candidate_id}
        edges: set[tuple[str, str]] = set()
        for object_name, records in self._steps_by_object.items():
            for first, second in itertools.combinations(records, 2):
                if first.transaction_id == second.transaction_id:
                    continue
                if first.transaction_id not in relevant or second.transaction_id not in relevant:
                    continue
                if candidate_id not in (first.transaction_id, second.transaction_id):
                    continue
                earlier, later = (first, second) if first.sequence < second.sequence else (second, first)
                if self._conflicting(object_name, earlier.step, later.step):
                    edges.add((earlier.transaction_id, later.transaction_id))
        return edges

    def on_commit_request(self, info: ExecutionInfo) -> SchedulerResponse:
        candidate_id = info.top_level_id
        edges = self._precedence_edges(candidate_id)
        trial_graph = self._committed_graph.copy()
        trial_graph.add_node(candidate_id)
        trial_graph.add_edges_from(edges)
        if nx.is_directed_acyclic_graph(trial_graph):
            self._committed_graph = trial_graph
            return SchedulerResponse.grant()
        self.validation_aborts += 1
        return SchedulerResponse.abort(
            "validation failed: committing would create a precedence cycle"
        )

    def on_transaction_commit(self, info: ExecutionInfo) -> None:
        self._committed.add(info.top_level_id)

    def on_transaction_abort(self, info: ExecutionInfo, subtree: tuple[str, ...]) -> None:
        transaction_id = info.top_level_id
        for records in self._steps_by_object.values():
            records[:] = [record for record in records if record.transaction_id != transaction_id]
        if transaction_id in self._committed_graph and transaction_id not in self._committed:
            self._committed_graph.remove_node(transaction_id)

    # -- descriptive ------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "level": self.level,
            "validation_aborts": self.validation_aborts,
            "committed": len(self._committed),
        }
