"""Waits-for graph and deadlock detection for blocking schedulers.

Two-phase locking schedulers may deadlock (the paper notes that NTO, by
contrast, aborts instead of waiting and is deadlock free).  The detector
below maintains a waits-for graph at top-level-transaction granularity:
when execution ``e`` of transaction ``T`` blocks on locks held by
executions of transaction ``T'``, an edge ``T -> T'`` is recorded.  A cycle
(including the degenerate self-loop produced when two sibling executions of
the same transaction block each other) means no further progress is
possible and a victim must be aborted.
"""

from __future__ import annotations

from collections import defaultdict


class WaitsForGraph:
    """A mutable waits-for graph over top-level transaction identifiers."""

    def __init__(self) -> None:
        self._edges: dict[str, set[str]] = defaultdict(set)

    def set_waits(self, waiter: str, holders: set[str]) -> None:
        """Replace the out-edges of ``waiter`` with the given holder set.

        Self-loops are kept: a transaction whose sibling executions wait on
        one another is just as stuck as a cross-transaction cycle.
        """
        holder_set = set(holders)
        if holder_set:
            self._edges[waiter] = holder_set
        else:
            self._edges.pop(waiter, None)

    def clear_waits(self, waiter: str) -> None:
        """Remove every wait recorded for ``waiter``."""
        self._edges.pop(waiter, None)

    def remove_transaction(self, transaction_id: str) -> None:
        """Remove the transaction both as waiter and as holder."""
        self._edges.pop(transaction_id, None)
        for holders in self._edges.values():
            holders.discard(transaction_id)

    def edges(self) -> dict[str, set[str]]:
        return {waiter: set(holders) for waiter, holders in self._edges.items()}

    def waits_of(self, waiter: str) -> set[str]:
        return set(self._edges.get(waiter, set()))

    def find_cycle_from(self, start: str) -> list[str] | None:
        """Return a cycle reachable from ``start`` (as a list of nodes), if any."""
        path: list[str] = []
        on_path: set[str] = set()
        visited: set[str] = set()

        def visit(node: str) -> list[str] | None:
            path.append(node)
            on_path.add(node)
            for successor in self._edges.get(node, ()):  # deterministic enough for tests
                if successor in on_path:
                    return path[path.index(successor) :]
                if successor not in visited:
                    found = visit(successor)
                    if found is not None:
                        return found
            on_path.discard(node)
            visited.add(node)
            path.pop()
            return None

        return visit(start)

    def has_self_wait(self, transaction_id: str) -> bool:
        """True when a transaction's executions wait on one another."""
        return transaction_id in self._edges.get(transaction_id, set())
