"""Waits-for graph and deadlock detection for blocking schedulers.

Two-phase locking schedulers may deadlock (the paper notes that NTO, by
contrast, aborts instead of waiting and is deadlock free).  The detector
below maintains a waits-for graph at top-level-transaction granularity,
derived *incrementally* from a parked-waiter table: every parked method
execution contributes one record ``(waiter transaction, holder
transactions)``, and the graph's edges are reference-counted sums of those
records.  Parking and unparking a waiter are O(holders) updates — nothing
is recomputed per lock request — and several executions of the same
transaction can wait simultaneously (parallel siblings) without clobbering
one another's edges, which the old replace-the-out-edge-set interface
could not express.

A cycle (including the degenerate self-loop produced when two sibling
executions of the same transaction block each other) means no further
progress is possible and a victim must be aborted.

The legacy ``set_waits``/``clear_waits`` interface is kept as a thin layer
over the table (one record keyed by the waiter itself) for callers that
track at most one wait per transaction.
"""

from __future__ import annotations


class WaitsForGraph:
    """A waits-for graph over top-level transactions, fed by parked waiters."""

    def __init__(self) -> None:
        # waiter transaction -> holder transaction -> number of parked
        # records contributing the edge.
        self._out: dict[str, dict[str, int]] = {}
        # parked-waiter table: record key (usually the waiting execution's
        # id) -> (waiter transaction, holder transactions).
        self._parked: dict[str, tuple[str, frozenset[str]]] = {}
        self._keys_by_waiter: dict[str, set[str]] = {}
        # Reverse index: holder transaction -> record keys waiting on it,
        # as an insertion-ordered dict-set so removing a transaction visits
        # its waiters in park order (the order the full-table scan it
        # replaces observed) instead of scanning every parked record.
        self._keys_by_holder: dict[str, dict[str, None]] = {}

    # -- the parked-waiter table ------------------------------------------------

    def park(self, key: str, waiter: str, holders: set[str] | frozenset[str]) -> None:
        """Record that the execution ``key`` of ``waiter`` waits on ``holders``.

        Re-parking an existing key replaces its previous record (the waiter
        retried and is now blocked on a possibly different holder set).
        """
        self.unpark(key)
        holder_set = frozenset(holders)
        if not holder_set:
            return
        self._parked[key] = (waiter, holder_set)
        self._keys_by_waiter.setdefault(waiter, set()).add(key)
        out = self._out.setdefault(waiter, {})
        keys_by_holder = self._keys_by_holder
        for holder in holder_set:
            out[holder] = out.get(holder, 0) + 1
            keys_by_holder.setdefault(holder, {})[key] = None

    def unpark(self, key: str) -> None:
        """Remove the parked record for ``key`` (no-op when absent)."""
        record = self._parked.pop(key, None)
        if record is None:
            return
        waiter, holders = record
        keys = self._keys_by_waiter.get(waiter)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._keys_by_waiter[waiter]
        keys_by_holder = self._keys_by_holder
        for holder in holders:
            holder_keys = keys_by_holder.get(holder)
            if holder_keys is not None:
                holder_keys.pop(key, None)
                if not holder_keys:
                    del keys_by_holder[holder]
        out = self._out.get(waiter)
        if out is None:
            return
        for holder in holders:
            count = out.get(holder, 0) - 1
            if count <= 0:
                out.pop(holder, None)
            else:
                out[holder] = count
        if not out:
            del self._out[waiter]

    def parked_keys(self, waiter: str) -> set[str]:
        """The record keys currently parked on behalf of ``waiter``."""
        return set(self._keys_by_waiter.get(waiter, ()))

    # -- legacy single-record interface ------------------------------------------

    def set_waits(self, waiter: str, holders: set[str]) -> None:
        """Replace the single record keyed by ``waiter`` with the holder set.

        Self-loops are kept: a transaction whose sibling executions wait on
        one another is just as stuck as a cross-transaction cycle.
        """
        if holders:
            self.park(waiter, waiter, holders)
        else:
            self.unpark(waiter)

    def clear_waits(self, waiter: str) -> None:
        """Remove the record keyed by ``waiter``."""
        self.unpark(waiter)

    # -- transaction life cycle ---------------------------------------------------

    def remove_transaction(self, transaction_id: str) -> None:
        """Remove the transaction both as waiter and as holder."""
        for key in list(self._keys_by_waiter.get(transaction_id, ())):
            self.unpark(key)
        holder_keys = self._keys_by_holder.get(transaction_id)
        if not holder_keys:
            return
        for key in list(holder_keys):
            record = self._parked.get(key)
            if record is None:
                continue
            waiter, holders = record
            remaining = holders - {transaction_id}
            self.unpark(key)
            if remaining:
                self.park(key, waiter, remaining)

    # -- queries -------------------------------------------------------------------

    def edges(self) -> dict[str, set[str]]:
        return {waiter: set(out) for waiter, out in self._out.items() if out}

    def waits_of(self, waiter: str) -> set[str]:
        return set(self._out.get(waiter, ()))

    def find_cycle_from(self, start: str) -> list[str] | None:
        """Return a cycle reachable from ``start`` (as a list of nodes), if any."""
        path: list[str] = []
        on_path: set[str] = set()
        visited: set[str] = set()

        def visit(node: str) -> list[str] | None:
            path.append(node)
            on_path.add(node)
            for successor in self._out.get(node, ()):  # deterministic enough for tests
                if successor in on_path:
                    return path[path.index(successor) :]
                if successor not in visited:
                    found = visit(successor)
                    if found is not None:
                        return found
            on_path.discard(node)
            visited.add(node)
            path.pop()
            return None

        return visit(start)

    def is_waited_on(self, transaction_id: str) -> bool:
        """True when some parked record lists the transaction as a holder.

        A freshly parked waiter can only be part of a cycle that runs
        through itself (every older cycle was broken at the park that
        closed it), and such a cycle needs an edge *into* the waiter —
        so callers that check for deadlock right after parking may skip
        the DFS entirely when this is false.
        """
        return bool(self._keys_by_holder.get(transaction_id))

    def has_self_wait(self, transaction_id: str) -> bool:
        """True when a transaction's executions wait on one another."""
        return transaction_id in self._out.get(transaction_id, ())
