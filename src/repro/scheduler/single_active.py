"""Coarse-grained baseline: every object is a single data item.

Section 1 of the paper describes the simple way of reducing object-base
concurrency control to database concurrency control: "view each object as
a data item, treat a method invocation as a group of read or write
operations on those data items, and require that only one method execution
can be active at each object at any one time" — the approach taken by the
GemStone system.  Any conventional scheduler can then be used; we use
strict two-phase locking at object granularity, the most common choice.

The scheduler grants a *shared* object lock to transactions that only ever
invoke methods declared ``read_only`` on the object and an *exclusive* lock
otherwise; locks belong to the top-level transaction and are held until it
commits or aborts.  This deliberately "severely curtails parallelism"
(the paper's words) and is the baseline experiment E1 compares the
fine-grained schedulers against.

Transaction-granularity locks say nothing about the *parallel siblings
inside* a transaction: two parallel children may interleave conflicting
steps on different objects in incompatible orders, closing a
sibling-level serialisation cycle (Theorem 5) that no amount of
inter-transaction locking prevents.  A lightweight intra-transaction
ordering guard therefore records, per transaction, the sibling-level
edges its conflicting steps induce and aborts the transaction when a new
step would close a cycle among its own siblings.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..core.operations import LocalStep
from ..objectbase.base import ObjectBase
from .base import (
    ExecutionInfo,
    OperationRequest,
    Scheduler,
    SchedulerResponse,
    disjoint_ancestors,
)
from .deadlock import WaitsForGraph

SHARED = "shared"
EXCLUSIVE = "exclusive"


class IntraTransactionOrdering:
    """Keeps one transaction's sibling-level step orders mutually compatible.

    For every pair of conflicting steps issued by *incomparable* executions
    of the same transaction, the induced edge between their disjoint
    ancestors (children of the least common ancestor) must keep the
    transaction-local precedence graph acyclic; the requesting transaction
    is aborted otherwise.  Sequentially issued siblings always order
    consistently, so only parallel siblings can ever trigger an abort.
    """

    def __init__(self, conflicts_lookup):
        self._conflicts_lookup = conflicts_lookup
        # top-level id -> recorded (object_name, step, info) in issue order
        self._steps: dict[str, list[tuple[str, LocalStep, ExecutionInfo]]] = defaultdict(list)
        # top-level id -> sibling precedence adjacency
        self._edges: dict[str, dict[str, set[str]]] = defaultdict(dict)

    def _reaches(self, edges: dict[str, set[str]], start: str, target: str) -> bool:
        stack, seen = [start], set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
        return False

    def check_step(self, request: OperationRequest) -> SchedulerResponse:
        transaction_id = request.info.top_level_id
        edges = self._edges[transaction_id]
        new_pairs: set[tuple[str, str]] = set()
        for object_name, step, info in self._steps[transaction_id]:
            if object_name != request.object_name:
                continue
            pair = disjoint_ancestors(info, request.info)
            if pair is None:
                continue  # comparable executions are ordered by nesting
            spec = self._conflicts_lookup(object_name)
            if spec.steps_conflict(step, request.provisional_step):
                new_pairs.add(pair)
        for earlier_side, later_side in new_pairs:
            if earlier_side == later_side:
                continue
            if self._reaches(edges, later_side, earlier_side):
                return SchedulerResponse.abort(
                    "inter-object ordering violation among parallel siblings: "
                    f"admitting the step would order {later_side} both before "
                    f"and after {earlier_side}"
                )
        for earlier_side, later_side in new_pairs:
            edges.setdefault(earlier_side, set()).add(later_side)
        return SchedulerResponse.grant()

    def record_step(self, request: OperationRequest, value: Any) -> None:
        step = LocalStep(
            request.info.execution_id, request.object_name, request.operation, value
        )
        self._steps[request.info.top_level_id].append(
            (request.object_name, step, request.info)
        )

    def forget_transaction(self, transaction_id: str) -> None:
        self._steps.pop(transaction_id, None)
        self._edges.pop(transaction_id, None)


class SingleActiveObjectScheduler(Scheduler):
    """Object-granularity strict two-phase locking (GemStone-style baseline)."""

    name = "single-active-object"

    def __init__(self, restart_policy: Any = "immediate") -> None:
        super().__init__(restart_policy=restart_policy)
        # object name -> {transaction id -> mode}
        self._object_locks: dict[str, dict[str, str]] = defaultdict(dict)
        self.waits = WaitsForGraph()
        self.sibling_order = IntraTransactionOrdering(self._sibling_conflicts)
        self.deadlocks_detected = 0
        self.blocked_requests = 0
        self.sibling_ordering_aborts = 0

    def _sibling_conflicts(self, object_name: str):
        return self.step_conflicts[object_name]

    def attach(self, object_base: ObjectBase) -> None:
        super().attach(object_base)
        self._object_locks = defaultdict(dict)
        self.waits = WaitsForGraph()
        self.sibling_order = IntraTransactionOrdering(self._sibling_conflicts)
        self.deadlocks_detected = 0
        self.blocked_requests = 0
        self.sibling_ordering_aborts = 0

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _required_mode(request: OperationRequest) -> str:
        write_set = request.operation.write_set()
        if write_set is not None and not write_set:
            return SHARED
        return EXCLUSIVE

    def _incompatible_holders(self, object_name: str, transaction_id: str, mode: str) -> set[str]:
        holders = self._object_locks[object_name]
        blockers: set[str] = set()
        for holder_id, held_mode in holders.items():
            if holder_id == transaction_id:
                continue
            if mode == EXCLUSIVE or held_mode == EXCLUSIVE:
                blockers.add(holder_id)
        return blockers

    # -- scheduling --------------------------------------------------------------

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        transaction_id = request.info.top_level_id
        mode = self._required_mode(request)
        blockers = self._incompatible_holders(request.object_name, transaction_id, mode)
        if not blockers:
            sibling_response = self.sibling_order.check_step(request)
            if not sibling_response.granted:
                self.sibling_ordering_aborts += 1
                return sibling_response
            holders = self._object_locks[request.object_name]
            current = holders.get(transaction_id)
            if current != EXCLUSIVE:
                holders[transaction_id] = mode if current is None else (
                    EXCLUSIVE if EXCLUSIVE in (current, mode) else SHARED
                )
            self.waits.unpark(request.info.execution_id)
            return SchedulerResponse.grant()

        self.blocked_requests += 1
        self.waits.park(request.info.execution_id, transaction_id, blockers)
        cycle = self.waits.find_cycle_from(transaction_id)
        if cycle is not None:
            self.deadlocks_detected += 1
            self.waits.remove_transaction(transaction_id)
            return SchedulerResponse.abort(
                f"deadlock among transactions {sorted(set(cycle))}"
            )
        return SchedulerResponse.block("object locked by another transaction", blockers=blockers)

    def on_operation_executed(self, request: OperationRequest, value: Any) -> None:
        self.sibling_order.record_step(request, value)

    def _release(self, transaction_id: str) -> None:
        # Object locks only ever free at transaction end, and the engine
        # itself wakes frames parked on an ending transaction — no wake-up
        # note needed here.
        for holders in self._object_locks.values():
            holders.pop(transaction_id, None)
        self.waits.remove_transaction(transaction_id)
        self.sibling_order.forget_transaction(transaction_id)

    def on_transaction_commit(self, info: ExecutionInfo) -> None:
        self._release(info.top_level_id)

    def on_transaction_abort(self, info: ExecutionInfo, subtree: tuple[str, ...]) -> None:
        self._release(info.top_level_id)

    # -- descriptive ------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "restart_policy": self.restart_policy.name,
            "deadlocks_detected": self.deadlocks_detected,
            "blocked_requests": self.blocked_requests,
            "sibling_ordering_aborts": self.sibling_ordering_aborts,
        }
