"""Coarse-grained baseline: every object is a single data item.

Section 1 of the paper describes the simple way of reducing object-base
concurrency control to database concurrency control: "view each object as
a data item, treat a method invocation as a group of read or write
operations on those data items, and require that only one method execution
can be active at each object at any one time" — the approach taken by the
GemStone system.  Any conventional scheduler can then be used; we use
strict two-phase locking at object granularity, the most common choice.

The scheduler grants a *shared* object lock to transactions that only ever
invoke methods declared ``read_only`` on the object and an *exclusive* lock
otherwise; locks belong to the top-level transaction and are held until it
commits or aborts.  This deliberately "severely curtails parallelism"
(the paper's words) and is the baseline experiment E1 compares the
fine-grained schedulers against.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..objectbase.base import ObjectBase
from .base import ExecutionInfo, OperationRequest, Scheduler, SchedulerResponse
from .deadlock import WaitsForGraph

SHARED = "shared"
EXCLUSIVE = "exclusive"


class SingleActiveObjectScheduler(Scheduler):
    """Object-granularity strict two-phase locking (GemStone-style baseline)."""

    name = "single-active-object"

    def __init__(self) -> None:
        super().__init__()
        # object name -> {transaction id -> mode}
        self._object_locks: dict[str, dict[str, str]] = defaultdict(dict)
        self.waits = WaitsForGraph()
        self.deadlocks_detected = 0
        self.blocked_requests = 0

    def attach(self, object_base: ObjectBase) -> None:
        super().attach(object_base)
        self._object_locks = defaultdict(dict)
        self.waits = WaitsForGraph()
        self.deadlocks_detected = 0
        self.blocked_requests = 0

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _required_mode(request: OperationRequest) -> str:
        write_set = request.operation.write_set()
        if write_set is not None and not write_set:
            return SHARED
        return EXCLUSIVE

    def _incompatible_holders(self, object_name: str, transaction_id: str, mode: str) -> set[str]:
        holders = self._object_locks[object_name]
        blockers: set[str] = set()
        for holder_id, held_mode in holders.items():
            if holder_id == transaction_id:
                continue
            if mode == EXCLUSIVE or held_mode == EXCLUSIVE:
                blockers.add(holder_id)
        return blockers

    # -- scheduling --------------------------------------------------------------

    def on_operation(self, request: OperationRequest) -> SchedulerResponse:
        transaction_id = request.info.top_level_id
        mode = self._required_mode(request)
        blockers = self._incompatible_holders(request.object_name, transaction_id, mode)
        if not blockers:
            holders = self._object_locks[request.object_name]
            current = holders.get(transaction_id)
            if current != EXCLUSIVE:
                holders[transaction_id] = mode if current is None else (
                    EXCLUSIVE if EXCLUSIVE in (current, mode) else SHARED
                )
            self.waits.clear_waits(transaction_id)
            return SchedulerResponse.grant()

        self.blocked_requests += 1
        self.waits.set_waits(transaction_id, blockers)
        cycle = self.waits.find_cycle_from(transaction_id)
        if cycle is not None:
            self.deadlocks_detected += 1
            self.waits.remove_transaction(transaction_id)
            return SchedulerResponse.abort(
                f"deadlock among transactions {sorted(set(cycle))}"
            )
        return SchedulerResponse.block("object locked by another transaction", blockers=blockers)

    def _release(self, transaction_id: str) -> None:
        for holders in self._object_locks.values():
            holders.pop(transaction_id, None)
        self.waits.remove_transaction(transaction_id)

    def on_transaction_commit(self, info: ExecutionInfo) -> None:
        self._release(info.top_level_id)

    def on_transaction_abort(self, info: ExecutionInfo, subtree: tuple[str, ...]) -> None:
        self._release(info.top_level_id)

    # -- descriptive ------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "deadlocks_detected": self.deadlocks_detected,
            "blocked_requests": self.blocked_requests,
        }
