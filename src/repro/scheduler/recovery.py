"""Commit-time recoverability gate for non-strict schedulers.

Schedulers that grant operations against uncommitted state — timestamp
ordering, optimistic certifiers, and per-object timestamp synchronisers —
admit *dirty reads*: an execution can observe a return value influenced by
a step of a transaction that later aborts.  If the reader then commits,
its recorded return values contradict any replay of the committed
projection and the history stops being legal (the seed's
``test_committed_projection_is_legal[nto]`` failure).

:class:`CommitGate` closes that hole; *how* is a contention-handling
policy, selected by the gate's ``mode`` axis:

**``mode="cascade"``** (the default) makes committed histories
*recoverable* without ever blocking an operation:

* every executed step is compared against the earlier steps of still-live
  transactions; a conflict records a read-from dependency (the requester
  may have observed the other transaction's effects);
* a commit request is **blocked** while any dependency is still live (the
  engine parks the transaction at its commit point and re-awakens it when
  a dependency commits or aborts);
* a commit request is **aborted** — a cascading abort — when a dependency
  has aborted: the requester observed state that has since been undone;
* mutual commit-waits (a dependency cycle) would stall forever, so the
  gate keeps its own incremental :class:`~repro.scheduler.deadlock.WaitsForGraph`
  over commit-waiters and aborts the requester that closes a cycle (such a
  cycle is also a serialisation-graph cycle, so one of the participants
  must die anyway).

**``mode="aca"``** avoids cascading aborts altogether by gating
conflicting reads at *execution* time: :meth:`CommitGate.check_operation`
BLOCKs a step that conflicts with an earlier state-mutating step of a
still-live transaction (the engine parks the issuing frame on those
writers and re-awakens it when they resolve).  By the time a step
executes, every effect it can observe is committed, so no read-from
dependency on a live transaction is ever recorded and commits neither
wait nor cascade.  The price is operation blocking — the scheduler's
"never blocks an operation" property is traded away — and the dirty-read
wait cycles that come with it, which the same waits-for graph detects and
breaks by aborting the requester.

The gate tracks only live transactions: a transaction's records, its
dependency set and — once no live dependent references them — aborted
markers are all dropped as transactions resolve.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from ..core.operations import LocalOperation, LocalStep
from .base import ExecutionInfo, SchedulerResponse
from .deadlock import WaitsForGraph

#: Commit-time cascading (the default, legacy behaviour).
CASCADE_MODE = "cascade"
#: Avoid cascading aborts: gate conflicting reads at execution time.
ACA_MODE = "aca"
#: The gate's contention-handling modes, in registry order.
GATE_MODES = (CASCADE_MODE, ACA_MODE)


@dataclass(slots=True)
class _GateRecord:
    """One executed step (or operation) of a still-live transaction."""

    sequence: int
    item: LocalOperation | LocalStep
    transaction_id: str


class CommitGate:
    """Tracks read-from dependencies and arbitrates commit requests.

    Parameters
    ----------
    conflicts_lookup:
        ``object name -> ConflictSpec`` accessor (matching the owning
        scheduler's conflict granularity).
    step_level:
        When true, dependencies are induced by step conflicts (return-value
        aware); otherwise by operation conflicts.
    mode:
        ``"cascade"`` (default) resolves dirty reads at commit time —
        commit-waits plus cascading aborts; ``"aca"`` prevents them at
        execution time — :meth:`check_operation` blocks conflicting reads
        of uncommitted effects, so commits never cascade.
    """

    def __init__(
        self,
        conflicts_lookup: Callable[[str], Any],
        step_level: bool = True,
        mode: str = CASCADE_MODE,
    ):
        if mode not in GATE_MODES:
            raise ValueError(f"unknown gate mode {mode!r}; available: {', '.join(GATE_MODES)}")
        self._conflicts_lookup = conflicts_lookup
        self._step_level = step_level
        self.mode = mode
        self._sequence = itertools.count(1)
        # Per-object records keyed by sequence (insertion-ordered), plus a
        # per-transaction index of (object, sequence) pairs so finish()
        # removes exactly the resolved transaction's records instead of
        # rebuilding every object's list (which made transaction turnover
        # O(objects x records)).
        self._steps_by_object: dict[str, dict[int, _GateRecord]] = {}
        self._records_of: dict[str, list[tuple[str, int]]] = {}
        self._live: set[str] = set()
        self._aborted: set[str] = set()
        self._dependencies: dict[str, set[str]] = {}
        self._waits = WaitsForGraph()
        # Transactions currently inside a blocked commit spell.  The
        # inter-shard coordinator polls check_commit every vote round, so
        # the counter tracks *spells*, not calls — otherwise commit_waits
        # would scale with the barrier frequency and a sharded run's
        # scheduler description would depend on round_ticks.
        self._commit_waiters: set[str] = set()
        self.cascading_aborts = 0
        self.commit_waits = 0
        self.blocked_reads = 0

    # -- life cycle ----------------------------------------------------------

    def begin(self, transaction_id: str) -> None:
        self._live.add(transaction_id)

    def finish(self, transaction_id: str, *, committed: bool) -> frozenset[str]:
        """The transaction resolved; returns the wake-up keys it frees."""
        self._live.discard(transaction_id)
        if not committed:
            self._aborted.add(transaction_id)
        for object_name, sequence in self._records_of.pop(transaction_id, ()):
            records = self._steps_by_object.get(object_name)
            if records is not None:
                records.pop(sequence, None)
                if not records:
                    del self._steps_by_object[object_name]
        self._dependencies.pop(transaction_id, None)
        self._commit_waiters.discard(transaction_id)
        self._waits.remove_transaction(transaction_id)
        if self._aborted:
            # An aborted marker only matters while some live dependent might
            # still observe it; prune the rest to keep the gate bounded.
            referenced: set[str] = set()
            for dependencies in self._dependencies.values():
                referenced.update(dependencies)
            self._aborted &= referenced
        return frozenset({transaction_id})

    # -- recording -----------------------------------------------------------

    def _conflicting(self, object_name: str, earlier, later) -> bool:
        spec = self._conflicts_lookup(object_name)
        if self._step_level and isinstance(earlier, LocalStep) and isinstance(later, LocalStep):
            return spec.steps_conflict(earlier, later)
        earlier_operation = earlier.operation if isinstance(earlier, LocalStep) else earlier
        later_operation = later.operation if isinstance(later, LocalStep) else later
        return spec.operations_conflict(earlier_operation, later_operation)

    @staticmethod
    def _mutates_state(item: LocalOperation | LocalStep) -> bool:
        """False only when the item is provably read-only.

        A read-only step cannot have transferred uncommitted data to a
        later observer, so it never seeds a read-from dependency; an
        operation that does not declare its write set is treated as
        mutating (conservatively).
        """
        operation = item.operation if isinstance(item, LocalStep) else item
        write_set = operation.write_set()
        return write_set is None or bool(write_set)

    def record_step(
        self,
        object_name: str,
        item: LocalOperation | LocalStep,
        transaction_id: str,
    ) -> None:
        """An operation of ``transaction_id`` executed; collect dependencies.

        Earlier conflicting *state-mutating* steps of other live
        transactions may have influenced the observed return value, so each
        contributes a read-from dependency.
        """
        records = self._steps_by_object.setdefault(object_name, {})
        dependencies = self._dependencies.setdefault(transaction_id, set())
        live = self._live
        for record in records.values():
            if record.transaction_id == transaction_id:
                continue
            if record.transaction_id not in live:
                continue  # pragma: no cover - records of resolved txns are pruned
            if not self._mutates_state(record.item):
                continue
            if self._conflicting(object_name, record.item, item):
                dependencies.add(record.transaction_id)
        sequence = next(self._sequence)
        records[sequence] = _GateRecord(sequence, item, transaction_id)
        self._records_of.setdefault(transaction_id, []).append((object_name, sequence))

    # -- operation gating (aca mode) -------------------------------------------

    def check_operation(
        self,
        object_name: str,
        item: LocalOperation | LocalStep,
        info: ExecutionInfo,
    ) -> SchedulerResponse:
        """In ``aca`` mode, keep a step from observing uncommitted effects.

        BLOCKs (naming the live writers as blockers) when the requested
        item conflicts with an earlier state-mutating step of another
        still-live transaction; a dirty-read wait cycle — reader and
        writer each stuck behind the other's uncommitted effects — is
        broken by aborting the requester.  In ``cascade`` mode this is a
        no-op GRANT: dirty reads are resolved at commit time instead.

        Args:
            object_name: the object the operation addresses.
            item: the operation (or provisional step, at step granularity)
                about to execute.
            info: the issuing execution (parked per-execution, so parallel
                siblings of one transaction wait independently).
        """
        if self.mode != ACA_MODE:
            return SchedulerResponse.grant()
        transaction_id = info.top_level_id
        writers: set[str] = set()
        for record in self._steps_by_object.get(object_name, {}).values():
            if record.transaction_id == transaction_id:
                continue
            if record.transaction_id not in self._live:
                continue  # pragma: no cover - records of resolved txns are pruned
            if not self._mutates_state(record.item):
                continue
            if self._conflicting(object_name, record.item, item):
                writers.add(record.transaction_id)
        if not writers:
            self._waits.unpark(info.execution_id)
            return SchedulerResponse.grant()
        self._waits.park(info.execution_id, transaction_id, writers)
        cycle = self._waits.find_cycle_from(transaction_id)
        if cycle is not None:
            self._waits.unpark(info.execution_id)
            return SchedulerResponse.abort(
                f"deadlock: dirty-read wait cycle among {sorted(set(cycle))} "
                "(aca gate)"
            )
        self.blocked_reads += 1
        return SchedulerResponse.block(
            f"aca: waiting for uncommitted writers of {object_name} to resolve",
            blockers=writers,
        )

    # -- commit arbitration ----------------------------------------------------

    def check_commit(self, transaction_id: str) -> SchedulerResponse:
        """GRANT, BLOCK (park until dependencies resolve) or ABORT (cascade)."""
        dependencies = self._dependencies.get(transaction_id, set())
        dirty = dependencies & self._aborted
        if dirty:
            self.cascading_aborts += 1
            self._commit_waiters.discard(transaction_id)
            self._waits.unpark(transaction_id)
            return SchedulerResponse.abort(
                f"cascading abort: observed state written by aborted transaction(s) "
                f"{sorted(dirty)}"
            )
        waiting = dependencies & self._live
        if waiting:
            self._waits.park(transaction_id, transaction_id, waiting)
            cycle = self._waits.find_cycle_from(transaction_id)
            if cycle is not None:
                self._commit_waiters.discard(transaction_id)
                self._waits.unpark(transaction_id)
                return SchedulerResponse.abort(
                    f"validation failed: commit dependency cycle among "
                    f"{sorted(set(cycle))}"
                )
            if transaction_id not in self._commit_waiters:
                self._commit_waiters.add(transaction_id)
                self.commit_waits += 1
            return SchedulerResponse.block(
                "waiting for commit of transactions whose effects were observed",
                blockers=waiting,
            )
        self._commit_waiters.discard(transaction_id)
        self._waits.unpark(transaction_id)
        return SchedulerResponse.grant()

    # -- descriptive ------------------------------------------------------------

    def live_state_size(self) -> int:
        """Retained gate items: step records, dependencies, aborted markers.

        The gate prunes itself as transactions resolve (see
        :meth:`finish`), so this is O(live transactions × their steps) by
        construction; the engine's live-state gauge samples it to assert
        exactly that on long streams.
        """
        return (
            sum(len(records) for records in self._steps_by_object.values())
            + sum(len(dependencies) for dependencies in self._dependencies.values())
            + len(self._aborted)
        )

    def describe(self) -> dict[str, Any]:
        return {
            "gate_mode": self.mode,
            "cascading_aborts": self.cascading_aborts,
            "commit_waits": self.commit_waits,
            "blocked_reads": self.blocked_reads,
        }
