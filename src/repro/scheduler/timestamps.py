"""Hierarchical timestamps for nested timestamp ordering (Reed's algorithm).

Every method execution ``e`` receives a hierarchical timestamp ``hts(e)``:
a tuple whose prefix is the parent's timestamp and whose last component is
drawn from a counter owned by the parent, so that children invoked
sequentially are ordered and children invoked in parallel receive unique
but a-priori unordered components.  Timestamps are compared
lexicographically.

The *environment* object assigns the single-component timestamps of
top-level transactions from a global counter, which also realises the
paper's requirement that "if e terminates before e' begins then
hts(e) < hts(e')" used to garbage-collect step information.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class HierarchicalTimestamp:
    """An immutable, lexicographically ordered hierarchical timestamp."""

    components: tuple[int, ...]

    def child(self, component: int) -> "HierarchicalTimestamp":
        """The timestamp of a child created with the given counter value."""
        return HierarchicalTimestamp(self.components + (component,))

    def is_prefix_of(self, other: "HierarchicalTimestamp") -> bool:
        """True when this timestamp is an ancestor's timestamp of ``other``."""
        return other.components[: len(self.components)] == self.components

    def level(self) -> int:
        return len(self.components)

    def __lt__(self, other: "HierarchicalTimestamp") -> bool:
        return self.components < other.components

    def __repr__(self) -> str:
        return "hts(" + ".".join(str(component) for component in self.components) + ")"


class TimestampAuthority:
    """Issues hierarchical timestamps to top-level transactions and children.

    One per-execution counter realises the paper's ``Increment(ctr_e)``:
    every message an execution sends obtains the next counter value, so the
    timestamps of its children respect the order in which sequential
    messages were issued (NTO rule 2) and are unique for parallel ones.
    """

    def __init__(self) -> None:
        self._top_level_counter = itertools.count(1)
        self._child_counters: dict[str, itertools.count] = {}
        self._assigned: dict[str, HierarchicalTimestamp] = {}

    def assign_top_level(self, execution_id: str) -> HierarchicalTimestamp:
        """Assign (and record) a fresh single-component timestamp."""
        timestamp = HierarchicalTimestamp((next(self._top_level_counter),))
        self._assigned[execution_id] = timestamp
        return timestamp

    def assign_child(self, parent_id: str, child_id: str) -> HierarchicalTimestamp:
        """Assign the child the next component of its parent's counter."""
        parent_timestamp = self._assigned[parent_id]
        counter = self._child_counters.setdefault(parent_id, itertools.count(1))
        timestamp = parent_timestamp.child(next(counter))
        self._assigned[child_id] = timestamp
        return timestamp

    def timestamp_of(self, execution_id: str) -> HierarchicalTimestamp:
        return self._assigned[execution_id]

    def knows(self, execution_id: str) -> bool:
        return execution_id in self._assigned

    def size(self) -> int:
        """The number of retained assignments (for the live-state gauge)."""
        return len(self._assigned)

    def forget_subtree(self, execution_ids) -> None:
        """Drop assignments of an aborted subtree (their ids are never reused)."""
        for execution_id in execution_ids:
            self._assigned.pop(execution_id, None)
            self._child_counters.pop(execution_id, None)
