"""Pluggable transaction-restart policies.

An abort is only half of a scheduling error; the other half is *when* the
transaction is resubmitted.  The paper treats "scheduling errors requiring
abortions" as the price non-strict schedulers pay for admitting more
interleavings, but resubmitting an aborted transaction immediately into an
unchanged conflict pattern turns that price into a storm: on contended
hotspot workloads every cascading abort restarts straight back into the
same hot set and the commit rate collapses (the pre-PR-4 behaviour, kept
as :class:`ImmediateRestart`).

A :class:`RestartPolicy` decides, per abort, how many ticks to wait before
the transaction is resubmitted.  The engine delegates its abort/respawn
path to the scheduler's policy and realises positive delays as *delayed
restarts* on its unified event heap (drained by
:meth:`~repro.simulation.engine.SimulationEngine._release_due_events`),
so a waiting transaction consumes no scheduling decisions — the delay
shows up as makespan, not as polling.

Policies are identified by *lineage*, the transaction's original
submission index, which is preserved across restarts: attempt 3 of the
first-submitted transaction still reports lineage 0.  That is what lets
:class:`OrderedRestart` implement a wait-die-style seniority rule — the
oldest unfinished transaction always restarts immediately, so it can never
cascade forever.

All randomness is owned by the policy and seeded deterministically from
the engine seed (:meth:`RestartPolicy.bind`), so a run remains a pure
function of ``(workload seed, engine seed, scheduler configuration)`` and
the sweep layer's serial/parallel determinism guarantee extends to delayed
restarts.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Mapping

from ..core.registry import resolve_component

#: Registry name of the default (pre-PR-4) policy.
IMMEDIATE_RESTART = "immediate"


class RestartPolicy:
    """Decides how long an aborted transaction waits before restarting.

    The engine drives one policy instance per run:

    * :meth:`bind` — called once at engine construction with the engine
      seed; must reset all policy state (policies may be constructed once
      and bound to a fresh run later);
    * :meth:`on_submit` — a new lineage entered the system (first
      attempt only, in submission order);
    * :meth:`delay` — attempt ``attempt`` of ``lineage`` just aborted for
      ``reason``; return the number of ticks to wait before resubmission
      (``0`` restarts within the same tick, exactly the legacy path);
    * :meth:`on_finished` — the lineage left the system for good (it
      committed or exhausted its restart budget).
    """

    name = "abstract"

    def bind(self, seed: int) -> None:
        """Reset the policy for a fresh run seeded with the engine seed."""

    def on_submit(self, lineage: int) -> None:
        """Lineage ``lineage`` was submitted (first attempt)."""

    def on_finished(self, lineage: int) -> None:
        """Lineage ``lineage`` committed or gave up."""

    def delay(self, lineage: int, attempt: int, reason: str) -> int:
        """Ticks to wait before restarting ``lineage`` after ``attempt`` aborted."""
        return 0

    def describe(self) -> dict[str, Any]:
        """Policy description merged into run metadata."""
        return {"name": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ImmediateRestart(RestartPolicy):
    """Restart at once — the legacy behaviour and the storm baseline."""

    name = "immediate"


class RandomizedBackoff(RestartPolicy):
    """Deterministic seeded randomized-exponential backoff.

    Attempt ``a`` waits a uniformly random number of ticks from
    ``[1, base * 2^min(a - 1, cap)]``: repeated aborts of one lineage back
    off exponentially (up to the cap), and the randomization de-correlates
    the restart times of distinct lineages so they stop re-colliding on
    the same hot objects in lockstep.

    Args:
        base: window size (in ticks) of the first retry.
        cap: maximum number of doublings of the window.
        seed: explicit RNG seed; ``None`` derives one from the engine seed
            at :meth:`bind` time (the common case — keeps a scenario a pure
            function of its spec without repeating the seed here).
    """

    name = "backoff"

    def __init__(self, base: int = 32, cap: int = 8, seed: int | None = None):
        if base < 1:
            raise ValueError(f"backoff base must be >= 1, got {base}")
        if cap < 0:
            raise ValueError(f"backoff cap must be >= 0, got {cap}")
        self.base = base
        self.cap = cap
        self.seed = seed
        self._rng = random.Random(seed)

    def bind(self, seed: int) -> None:
        # XOR with a fixed odd constant decouples the policy's stream from
        # the engine's tick-choice stream without introducing any
        # process-dependent state (str hashes would break spawn workers).
        effective = self.seed if self.seed is not None else seed ^ 0x9E3779B9
        self._rng = random.Random(effective)

    def delay(self, lineage: int, attempt: int, reason: str) -> int:
        window = self.base << min(max(attempt, 1) - 1, self.cap)
        return 1 + self._rng.randrange(window)

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "base": self.base, "cap": self.cap}


class OrderedRestart(RestartPolicy):
    """Wait-die-style seniority: young lineages defer to old ones.

    The delay is ``stride`` ticks per unfinished lineage *older* than the
    aborted one (smaller original submission index).  The oldest unfinished
    lineage therefore always restarts immediately and faces progressively
    less competition — it can never cascade forever — while younger
    lineages queue up behind their seniors instead of storming back into
    the hot set.

    Args:
        stride: ticks of deference per older unfinished lineage.
    """

    name = "ordered"

    def __init__(self, stride: int = 100):
        if stride < 1:
            raise ValueError(f"ordered stride must be >= 1, got {stride}")
        self.stride = stride
        self._unfinished: set[int] = set()

    def bind(self, seed: int) -> None:
        self._unfinished = set()

    def on_submit(self, lineage: int) -> None:
        self._unfinished.add(lineage)

    def on_finished(self, lineage: int) -> None:
        self._unfinished.discard(lineage)

    def delay(self, lineage: int, attempt: int, reason: str) -> int:
        rank = sum(1 for other in self._unfinished if other < lineage)
        return self.stride * rank

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "stride": self.stride}


RESTART_POLICIES: dict[str, Callable[..., RestartPolicy]] = {
    "immediate": ImmediateRestart,
    "backoff": RandomizedBackoff,
    "ordered": OrderedRestart,
}


def restart_policy_names() -> list[str]:
    """Names accepted by :func:`make_restart_policy` (and scheduler factories)."""
    return sorted(RESTART_POLICIES)


def make_restart_policy(
    policy: "str | Mapping[str, Any] | RestartPolicy" = IMMEDIATE_RESTART,
) -> RestartPolicy:
    """Build a restart policy from a name, a config mapping, or an instance.

    Accepted shapes (all JSON-friendly, so sweep axes can target
    ``scheduler_kwargs.restart_policy`` directly):

    * ``"backoff"`` — a registry name with default parameters;
    * ``{"name": "backoff", "base": 16}`` — a registry name plus
      constructor keywords;
    * a ready :class:`RestartPolicy` instance (returned unchanged).

    Raises:
        KeyError: on an unknown policy name.
        TypeError: on keywords the policy does not accept, or an
            unsupported specification type.
    """
    return resolve_component(
        RESTART_POLICIES, policy, kind="restart policy", instance_of=RestartPolicy
    )
