"""Concurrency-control schedulers for object bases.

The package provides the algorithms the paper analyses — nested two-phase
locking (Moss) and nested timestamp ordering (Reed) at both conflict
granularities — plus the coarse single-active-object baseline of the
introduction, an optimistic certifier, and the modular intra-/inter-object
scheduler of Section 5.3.  :func:`make_scheduler` builds any of them by
name, which the benchmark harness uses for its parameter sweeps.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.registry import resolve_component
from .adaptive import DEFAULT_LADDER, AdaptiveModularScheduler
from .base import (
    Decision,
    ExecutionInfo,
    OPERATION_LEVEL,
    OperationRequest,
    STEP_LEVEL,
    Scheduler,
    SchedulerResponse,
)
from .certifier import OptimisticCertifier
from .deadlock import WaitsForGraph
from .locks import LockEntry, LockManager, LockRequestOutcome
from .modular import (
    BTreeKeyLocking,
    INTRA_STRATEGIES,
    InterObjectCoordinator,
    IntraObjectCertifier,
    IntraObjectLocking,
    IntraObjectSynchroniser,
    IntraObjectTimestampOrdering,
    ModularScheduler,
    disjoint_ancestors,
    make_intra_strategy,
)
from .n2pl import NestedTwoPhaseLocking, StepLevelNestedTwoPhaseLocking
from .nto import NestedTimestampOrdering, StepLevelNestedTimestampOrdering
from .recovery import ACA_MODE, CASCADE_MODE, CommitGate, GATE_MODES
from .restart import (
    IMMEDIATE_RESTART,
    ImmediateRestart,
    OrderedRestart,
    RESTART_POLICIES,
    RandomizedBackoff,
    RestartPolicy,
    make_restart_policy,
    restart_policy_names,
)
from .single_active import SingleActiveObjectScheduler
from .timestamps import HierarchicalTimestamp, TimestampAuthority

# Every factory declares its accepted keywords explicitly: a misspelt or
# unsupported keyword raises TypeError here instead of being silently
# ignored, and the sweep layer (repro.sweep) validates spec kwargs against
# these signatures eagerly — before any worker process is spawned.
#
# Two cross-cutting axes appear on (nearly) every factory since PR 4:
# ``restart_policy`` (immediate / backoff / ordered — how aborted
# transactions are resubmitted, see repro.scheduler.restart) on all of
# them, and ``gate_mode`` (cascade / aca — how the CommitGate resolves
# dirty reads) on the non-strict schedulers that run a CommitGate.
SCHEDULER_FACTORIES: dict[str, Callable[..., Scheduler]] = {
    "pass-through": lambda restart_policy=IMMEDIATE_RESTART: Scheduler(
        restart_policy=restart_policy
    ),
    "n2pl": lambda level=OPERATION_LEVEL, restart_policy=IMMEDIATE_RESTART: (
        NestedTwoPhaseLocking(level=level, restart_policy=restart_policy)
    ),
    "n2pl-step": lambda restart_policy=IMMEDIATE_RESTART: NestedTwoPhaseLocking(
        level=STEP_LEVEL, restart_policy=restart_policy
    ),
    "nto": lambda level=OPERATION_LEVEL, restart_policy=IMMEDIATE_RESTART,
    gate_mode=CASCADE_MODE: NestedTimestampOrdering(
        level=level, restart_policy=restart_policy, gate_mode=gate_mode
    ),
    "nto-step": lambda restart_policy=IMMEDIATE_RESTART, gate_mode=CASCADE_MODE: (
        NestedTimestampOrdering(
            level=STEP_LEVEL, restart_policy=restart_policy, gate_mode=gate_mode
        )
    ),
    "single-active": lambda restart_policy=IMMEDIATE_RESTART: SingleActiveObjectScheduler(
        restart_policy=restart_policy
    ),
    "certifier": lambda level=STEP_LEVEL, check=False, restart_policy=IMMEDIATE_RESTART,
    gate_mode=CASCADE_MODE: OptimisticCertifier(
        level=level, check=check, restart_policy=restart_policy, gate_mode=gate_mode
    ),
    "modular": lambda default_strategy="locking", per_object_strategy=None,
    inter_object_checks=True, level=STEP_LEVEL, restart_policy=IMMEDIATE_RESTART,
    gate_mode=CASCADE_MODE: ModularScheduler(
        default_strategy=default_strategy,
        per_object_strategy=per_object_strategy,
        inter_object_checks=inter_object_checks,
        level=level,
        restart_policy=restart_policy,
        gate_mode=gate_mode,
    ),
    "modular-intra-only": lambda default_strategy="locking", per_object_strategy=None,
    level=STEP_LEVEL, restart_policy=IMMEDIATE_RESTART: ModularScheduler(
        default_strategy=default_strategy,
        per_object_strategy=per_object_strategy,
        inter_object_checks=False,
        level=level,
        restart_policy=restart_policy,
    ),
    "adaptive": lambda ladder=DEFAULT_LADDER, window=128, promote_threshold=4,
    demote_threshold=0, hysteresis=2, drain_limit=4, drain_patience=8,
    per_object_strategy=None, inter_object_checks=True, level=STEP_LEVEL,
    restart_policy=IMMEDIATE_RESTART, gate_mode=CASCADE_MODE: (
        AdaptiveModularScheduler(
            ladder=ladder,
            window=window,
            promote_threshold=promote_threshold,
            demote_threshold=demote_threshold,
            hysteresis=hysteresis,
            drain_limit=drain_limit,
            drain_patience=drain_patience,
            per_object_strategy=per_object_strategy,
            inter_object_checks=inter_object_checks,
            level=level,
            restart_policy=restart_policy,
            gate_mode=gate_mode,
        )
    ),
}


def make_scheduler(name: "str | Any", **kwargs: Any) -> Scheduler:
    """Instantiate a scheduler from a name, a config mapping, or an instance.

    Accepted shapes (the uniform component-specification contract of
    :func:`repro.core.registry.resolve_component`):

    * ``"modular"`` — a :data:`SCHEDULER_FACTORIES` key, optionally with
      ``**kwargs`` as factory keywords;
    * ``{"name": "modular", "default_strategy": "timestamp"}`` — a
      factory name plus keywords (``**kwargs`` are merged in);
    * a ready :class:`Scheduler` instance (returned unchanged; keywords
      are rejected).

    Raises:
        KeyError: on an unknown name.
        TypeError: on keywords the chosen factory does not accept, or an
            unsupported specification type.
    """
    return resolve_component(
        SCHEDULER_FACTORIES, name, kind="scheduler", instance_of=Scheduler, **kwargs
    )


def scheduler_names() -> list[str]:
    """Names accepted by :func:`make_scheduler`."""
    return sorted(SCHEDULER_FACTORIES)


__all__ = [
    "ACA_MODE",
    "AdaptiveModularScheduler",
    "BTreeKeyLocking",
    "DEFAULT_LADDER",
    "INTRA_STRATEGIES",
    "CASCADE_MODE",
    "CommitGate",
    "Decision",
    "GATE_MODES",
    "IMMEDIATE_RESTART",
    "ImmediateRestart",
    "OrderedRestart",
    "RESTART_POLICIES",
    "RandomizedBackoff",
    "RestartPolicy",
    "ExecutionInfo",
    "HierarchicalTimestamp",
    "InterObjectCoordinator",
    "IntraObjectCertifier",
    "IntraObjectLocking",
    "IntraObjectSynchroniser",
    "IntraObjectTimestampOrdering",
    "LockEntry",
    "LockManager",
    "LockRequestOutcome",
    "ModularScheduler",
    "NestedTimestampOrdering",
    "NestedTwoPhaseLocking",
    "OPERATION_LEVEL",
    "OperationRequest",
    "OptimisticCertifier",
    "STEP_LEVEL",
    "SCHEDULER_FACTORIES",
    "Scheduler",
    "SchedulerResponse",
    "SingleActiveObjectScheduler",
    "StepLevelNestedTimestampOrdering",
    "StepLevelNestedTwoPhaseLocking",
    "TimestampAuthority",
    "WaitsForGraph",
    "disjoint_ancestors",
    "make_intra_strategy",
    "make_restart_policy",
    "make_scheduler",
    "restart_policy_names",
    "scheduler_names",
]
