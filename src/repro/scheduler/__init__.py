"""Concurrency-control schedulers for object bases.

The package provides the algorithms the paper analyses — nested two-phase
locking (Moss) and nested timestamp ordering (Reed) at both conflict
granularities — plus the coarse single-active-object baseline of the
introduction, an optimistic certifier, and the modular intra-/inter-object
scheduler of Section 5.3.  :func:`make_scheduler` builds any of them by
name, which the benchmark harness uses for its parameter sweeps.
"""

from __future__ import annotations

from typing import Any, Callable

from .base import (
    Decision,
    ExecutionInfo,
    OPERATION_LEVEL,
    OperationRequest,
    STEP_LEVEL,
    Scheduler,
    SchedulerResponse,
)
from .certifier import OptimisticCertifier
from .deadlock import WaitsForGraph
from .locks import LockEntry, LockManager, LockRequestOutcome
from .modular import (
    BTreeKeyLocking,
    InterObjectCoordinator,
    IntraObjectLocking,
    IntraObjectSynchroniser,
    IntraObjectTimestampOrdering,
    ModularScheduler,
    disjoint_ancestors,
)
from .n2pl import NestedTwoPhaseLocking, StepLevelNestedTwoPhaseLocking
from .nto import NestedTimestampOrdering, StepLevelNestedTimestampOrdering
from .recovery import CommitGate
from .single_active import SingleActiveObjectScheduler
from .timestamps import HierarchicalTimestamp, TimestampAuthority

# Every factory declares its accepted keywords explicitly: a misspelt or
# unsupported keyword raises TypeError here instead of being silently
# ignored, and the sweep layer (repro.sweep) validates spec kwargs against
# these signatures eagerly — before any worker process is spawned.
SCHEDULER_FACTORIES: dict[str, Callable[..., Scheduler]] = {
    "pass-through": lambda: Scheduler(),
    "n2pl": lambda level=OPERATION_LEVEL: NestedTwoPhaseLocking(level=level),
    "n2pl-step": lambda: NestedTwoPhaseLocking(level=STEP_LEVEL),
    "nto": lambda level=OPERATION_LEVEL: NestedTimestampOrdering(level=level),
    "nto-step": lambda: NestedTimestampOrdering(level=STEP_LEVEL),
    "single-active": lambda: SingleActiveObjectScheduler(),
    "certifier": lambda level=STEP_LEVEL, check=False: OptimisticCertifier(
        level=level, check=check
    ),
    "modular": lambda default_strategy="locking", per_object_strategy=None,
    inter_object_checks=True, level=STEP_LEVEL: ModularScheduler(
        default_strategy=default_strategy,
        per_object_strategy=per_object_strategy,
        inter_object_checks=inter_object_checks,
        level=level,
    ),
    "modular-intra-only": lambda default_strategy="locking", per_object_strategy=None,
    level=STEP_LEVEL: ModularScheduler(
        default_strategy=default_strategy,
        per_object_strategy=per_object_strategy,
        inter_object_checks=False,
        level=level,
    ),
}


def make_scheduler(name: str, **kwargs: Any) -> Scheduler:
    """Instantiate a scheduler by its registry name (see ``scheduler_names``).

    Args:
        name: a :data:`SCHEDULER_FACTORIES` key.
        **kwargs: factory keywords for the chosen scheduler.

    Raises:
        KeyError: on an unknown name.
        TypeError: on keywords the chosen factory does not accept.
    """
    try:
        factory = SCHEDULER_FACTORIES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {', '.join(sorted(SCHEDULER_FACTORIES))}"
        ) from exc
    return factory(**kwargs)


def scheduler_names() -> list[str]:
    """Names accepted by :func:`make_scheduler`."""
    return sorted(SCHEDULER_FACTORIES)


__all__ = [
    "BTreeKeyLocking",
    "CommitGate",
    "Decision",
    "ExecutionInfo",
    "HierarchicalTimestamp",
    "InterObjectCoordinator",
    "IntraObjectLocking",
    "IntraObjectSynchroniser",
    "IntraObjectTimestampOrdering",
    "LockEntry",
    "LockManager",
    "LockRequestOutcome",
    "ModularScheduler",
    "NestedTimestampOrdering",
    "NestedTwoPhaseLocking",
    "OPERATION_LEVEL",
    "OperationRequest",
    "OptimisticCertifier",
    "STEP_LEVEL",
    "SCHEDULER_FACTORIES",
    "Scheduler",
    "SchedulerResponse",
    "SingleActiveObjectScheduler",
    "StepLevelNestedTimestampOrdering",
    "StepLevelNestedTwoPhaseLocking",
    "TimestampAuthority",
    "WaitsForGraph",
    "disjoint_ancestors",
    "make_scheduler",
    "scheduler_names",
]
