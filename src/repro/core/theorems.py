"""Executable forms of the paper's theorems.

* **Theorem 1** (determinacy): the final state of each object in a legal
  history does not depend on which topological sort of its local steps is
  replayed.  :func:`check_determinacy` tests this directly by replaying
  several randomly tie-broken sorts.
* **Theorem 2** (the Serialisability Theorem): if ``SG(h)`` is acyclic then
  ``h`` is serialisable.  :func:`is_serialisable` applies the acyclicity
  test; :func:`serialise` goes further and *constructs* the equivalent
  serial history following the proof of the theorem (the ``=>`` relation,
  extended level by level, then the ``<_s`` order of Claims 2-6).
* **Theorem 5** (modular synchronisation): a history is serialisable
  provided each object's ``SG_local union SG_mesg`` is acyclic and each
  execution's message relation ``->_e`` is acyclic.
  :func:`theorem_5_conditions` evaluates both conditions and reports which
  objects or executions violate them.

A brute-force oracle (:func:`brute_force_serialisable`) is provided for
cross-checking the above on small histories in the test-suite.
"""

from __future__ import annotations

import itertools
import random
import re
from dataclasses import dataclass, field

import networkx as nx

from .errors import IllegalStepSequenceError, ModelError, VerificationError
from .graphs import (
    combined_object_graph,
    find_cycle,
    is_acyclic,
    message_relation,
    serialisation_graph,
    sg_local,
    sg_local_legacy,
    sg_mesg_legacy,
)
from .history import History
from .operations import LocalStep, MessageStep, Step
from .state import ObjectState


# ---------------------------------------------------------------------------
# Theorem 1 — determinacy of legal histories
# ---------------------------------------------------------------------------


def check_determinacy(history: History, attempts: int = 5, seed: int = 0) -> bool:
    """Replay each object under several topological sorts and compare states.

    Returns ``True`` when every replay is legal and all replays of an object
    agree on its final state — the guarantee of Theorem 1.  Raises
    :class:`IllegalStepSequenceError` if some sort is not legal on the
    initial state (which would mean the history itself is not legal).
    """
    rng = random.Random(seed)
    for object_name in sorted(history.object_names()):
        reference = history.replay(object_name)
        steps = history.local_steps(object_name)
        for _ in range(attempts):
            order = _random_topological_sort(history, steps, rng)
            state = history.replay(object_name, order)
            if state != reference:
                return False
    return True


def _random_topological_sort(
    history: History, steps: list[LocalStep], rng: random.Random
) -> list[LocalStep]:
    remaining = {step.step_id: step for step in steps}
    indegree = {step.step_id: 0 for step in steps}
    successors: dict[int, list[int]] = {step.step_id: [] for step in steps}
    for first, second in history.ordered_step_pairs(steps):
        successors[first.step_id].append(second.step_id)
        indegree[second.step_id] += 1
    ready = [step_id for step_id, degree in indegree.items() if degree == 0]
    ordered: list[LocalStep] = []
    while ready:
        index = rng.randrange(len(ready))
        current = ready.pop(index)
        ordered.append(remaining[current])
        for successor in successors[current]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)
    if len(ordered) != len(steps):
        raise ModelError("temporal order contains a cycle among local steps")
    return ordered


# ---------------------------------------------------------------------------
# Theorem 2 — the serialisability theorem
# ---------------------------------------------------------------------------


def is_serialisable(history: History, *, graph: nx.DiGraph | None = None) -> bool:
    """Sufficient condition of Theorem 2: ``SG(h)`` acyclic implies serialisable.

    ``graph`` lets callers that already built ``SG(h)`` (the certification
    pipeline) reuse it instead of rebuilding from scratch.
    """
    return is_acyclic(serialisation_graph(history) if graph is None else graph)


def serialisation_cycle(history: History) -> list[tuple[str, str]] | None:
    """A cycle of ``SG(h)`` if one exists (useful for diagnostics)."""
    return find_cycle(serialisation_graph(history))


def natural_execution_key(execution_id: str) -> tuple[tuple[int, int | str], ...]:
    """Sort key ordering execution ids by their numeric components.

    ``HistoryBuilder`` numbers top-level transactions ``T1, T2, ...``; a
    plain string sort puts ``T10`` before ``T2``, which would make the
    serial-order tie-break depend on how many transactions the run happens
    to contain (and would leave the streaming certifier unable to emit a
    rolling order: a transaction begun *later* could still sort before
    every pending one).  Splitting the id into digit runs compares the
    numbers numerically, so later-begun transactions always carry larger
    keys.

    Memoised: the streaming certifier's rolling emission re-keys the same
    pending ids at every commit/abort event, which made the regex split
    the hot loop's dominant cost on long streams.
    """
    cached = _KEY_CACHE.get(execution_id)
    if cached is None:
        if len(_KEY_CACHE) >= _KEY_CACHE_LIMIT:
            _KEY_CACHE.clear()
        cached = _KEY_CACHE[execution_id] = tuple(
            (1, int(part)) if part.isdigit() else (0, part)
            for part in re.split(r"(\d+)", execution_id)
        )
    return cached


#: Keys are tiny, but a run can mint hundreds of thousands of ids; the
#: cache resets rather than evicting (the working set — the pending ids —
#: is always recent, so it re-fills with live entries immediately).
_KEY_CACHE_LIMIT = 100_000
_KEY_CACHE: dict[str, tuple[tuple[int, int | str], ...]] = {}


def execution_serial_order(history: History, *, graph: nx.DiGraph | None = None) -> list[str]:
    """A total order of all executions compatible with ``SG(h)``.

    The order is produced exactly as in the proof of Theorem 2: siblings
    under each parent (and the top-level executions) are ordered by a
    topological sort of the serialisation graph restricted to them, and the
    ordering is inherited by descendants.  Raises :class:`ModelError` when
    ``SG(h)`` is cyclic.  ``graph`` reuses a prebuilt ``SG(h)``.
    """
    index = _serial_index(history, graph=graph)
    return sorted(index, key=lambda execution_id: index[execution_id])


def _serial_index(
    history: History, *, graph: nx.DiGraph | None = None
) -> dict[str, tuple[int, ...]]:
    if graph is None:
        graph = serialisation_graph(history)
    if not is_acyclic(graph):
        raise ModelError("serialisation graph has a cycle; history may not be serialisable")
    index: dict[str, tuple[int, ...]] = {}

    def assign(parent_id: str | None, prefix: tuple[int, ...]) -> None:
        if parent_id is None:
            siblings = history.top_level_executions()
        else:
            siblings = history.children_of(parent_id)
        if not siblings:
            return
        restricted = graph.subgraph(siblings).copy()
        ordered = list(nx.lexicographical_topological_sort(restricted, key=natural_execution_key))
        for position, execution_id in enumerate(ordered):
            index[execution_id] = prefix + (position,)
            assign(execution_id, prefix + (position,))

    assign(None, ())
    return index


def serialise(history: History, verify: bool = True) -> History:
    """Construct the serial history ``h_s`` equivalent to ``history``.

    This follows the proof of Theorem 2: an ordering ``=>`` of incomparable
    executions is derived from the (acyclic) serialisation graph by ordering
    siblings level by level and inheriting the order to descendants; the
    serial order ``<_s`` over steps is then generated by the rules
    ``<_s.1(a)-(c)`` for steps of comparable executions and ``<_s.2`` for
    steps of incomparable executions.  With ``verify=True`` the constructed
    history is checked to be legal, serial and equivalent to the input —
    i.e. the statement of Theorem 2 is validated on the instance.
    """
    index = _serial_index(history)

    def execution_before(first_id: str, second_id: str) -> bool:
        return index[first_id] < index[second_id]

    pairs: set[tuple[int, int]] = set()
    executions = history.executions

    # <_s.1 — steps of comparable method executions.
    for first_id, second_id in itertools.product(executions, repeat=2):
        first_execution = executions[first_id]
        second_execution = executions[second_id]
        first_is_ancestor = history.is_ancestor(first_id, second_id)
        second_is_ancestor = history.is_ancestor(second_id, first_id)
        if not (first_is_ancestor or second_is_ancestor):
            continue
        for first_step in first_execution.steps():
            for second_step in second_execution.steps():
                if first_step.step_id == second_step.step_id:
                    continue
                if _comparable_steps_ordered(
                    history, first_step, second_step, first_is_ancestor, second_is_ancestor
                ):
                    pairs.add((first_step.step_id, second_step.step_id))

    # <_s.2 — steps of incomparable method executions follow the => order.
    for first_id, second_id in itertools.permutations(executions, 2):
        if not history.are_incomparable(first_id, second_id):
            continue
        if not execution_before(first_id, second_id):
            continue
        for first_step in executions[first_id].steps():
            for second_step in executions[second_id].steps():
                pairs.add((first_step.step_id, second_step.step_id))

    serial_history = History(
        list(executions.values()),
        history.initial_states,
        conflicts=history.conflicts,
        order_pairs=pairs,
    )
    if verify:
        serial_history.check_legal()
        if not serial_history.is_serial():
            raise VerificationError("constructed history is not serial")
        if not serial_history.equivalent_to(history):
            raise VerificationError("constructed serial history is not equivalent to the input")
    return serial_history


def _comparable_steps_ordered(
    history: History,
    first_step: Step,
    second_step: Step,
    first_is_ancestor: bool,
    second_is_ancestor: bool,
) -> bool:
    """Evaluate rules ``<_s.1(a)-(c)`` for one ordered pair of steps."""
    # (a) conflicting steps keep their temporal order.
    if isinstance(first_step, LocalStep) and isinstance(second_step, LocalStep):
        if first_step.object_name == second_step.object_name and history.precedes(
            first_step, second_step
        ):
            spec = history.conflicts
            if spec.steps_conflict(first_step, second_step) or spec.steps_conflict(
                second_step, first_step
            ):
                return True
    # (b) the ancestor execution's programme order is respected.
    if first_is_ancestor:
        ancestor_execution = history.execution(first_step.execution_id)
        surrogate = _ancestor_step_in(history, second_step, ancestor_execution.execution_id)
        if surrogate is not None and ancestor_execution.program_precedes(first_step, surrogate):
            return True
    # (c) symmetric case: the other execution is the ancestor.
    if second_is_ancestor:
        ancestor_execution = history.execution(second_step.execution_id)
        surrogate = _ancestor_step_in(history, first_step, ancestor_execution.execution_id)
        if surrogate is not None and ancestor_execution.program_precedes(surrogate, second_step):
            return True
    return False


def _ancestor_step_in(history: History, step: Step, ancestor_execution_id: str) -> Step | None:
    """The ancestor of ``step`` among the steps of ``ancestor_execution_id``.

    If the step already belongs to that execution it is its own ancestor;
    otherwise the surrogate is the message step of the ancestor execution
    whose subtree contains the step.
    """
    if step.execution_id == ancestor_execution_id:
        return step
    current_id = step.execution_id
    while current_id is not None:
        execution = history.execution(current_id)
        if execution.parent_id == ancestor_execution_id:
            if execution.invoking_step_id is None:
                return None
            return history.step(execution.invoking_step_id)
        current_id = execution.parent_id
    return None


# ---------------------------------------------------------------------------
# Theorem 5 — separating intra- and inter-object synchronisation
# ---------------------------------------------------------------------------


@dataclass
class Theorem5Report:
    """Outcome of evaluating the two conditions of Theorem 5 on a history."""

    holds: bool
    cyclic_objects: list[str] = field(default_factory=list)
    cyclic_executions: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self.holds


def theorem_5_conditions(history: History, *, legacy: bool = False) -> Theorem5Report:
    """Evaluate conditions (a) and (b) of Theorem 5.

    (a) for every object ``o``, ``SG_local(h, o) union SG_mesg(h, o)`` is
        acyclic; (b) for every execution ``e`` the message relation ``->_e``
        is acyclic.  When both hold the history is serialisable.

    The default path builds every ``SG_local`` exactly once and shares the
    collection across all the per-object combined graphs (the legacy path
    rebuilt each local graph once per object — quadratic in the number of
    objects); ``legacy=True`` keeps the original from-scratch builders for
    benchmarking and oracle cross-checks.
    """
    cyclic_objects: list[str] = []
    object_names = {execution.object_name for execution in history.executions.values()}
    if legacy:
        for object_name in sorted(object_names):
            combined = _combined_object_graph_legacy(history, object_name)
            if not is_acyclic(combined):
                cyclic_objects.append(object_name)
    else:
        local_graphs = {object_name: sg_local(history, object_name) for object_name in object_names}
        for object_name in sorted(object_names):
            combined = combined_object_graph(history, object_name, local_graphs=local_graphs)
            if not is_acyclic(combined):
                cyclic_objects.append(object_name)

    cyclic_executions: list[str] = []
    for execution_id in sorted(history.execution_ids()):
        if not is_acyclic(message_relation(history, execution_id)):
            cyclic_executions.append(execution_id)

    holds = not cyclic_objects and not cyclic_executions
    return Theorem5Report(holds, cyclic_objects, cyclic_executions)


def _combined_object_graph_legacy(history: History, object_name: str) -> nx.DiGraph:
    """Theorem 5(a) graph built with the legacy from-scratch builders."""
    combined = nx.DiGraph()
    local_graph = sg_local_legacy(history, object_name)
    mesg_graph = sg_mesg_legacy(history, object_name)
    combined.add_nodes_from(local_graph.nodes)
    combined.add_nodes_from(mesg_graph.nodes)
    combined.add_edges_from(local_graph.edges)
    combined.add_edges_from(mesg_graph.edges)
    return combined


# ---------------------------------------------------------------------------
# Brute-force oracle (for testing Theorem 2 on small histories)
# ---------------------------------------------------------------------------


def brute_force_serialisable(history: History, candidate_limit: int = 20000) -> bool:
    """Search serial arrangements of the executions for an equivalent one.

    The oracle enumerates orderings of siblings at every level of the
    execution forest (up to ``candidate_limit`` arrangements), replays each
    object's local steps in the induced serial order and compares final
    states with the input history.  It considers serial histories in which
    every execution's steps and its children's subtrees appear as contiguous
    blocks; this covers all serial histories needed for the library's test
    cases, but is in principle an under-approximation, so a ``False`` result
    means "no block-serial equivalent found".
    """
    reference_states = history.final_states()

    sibling_groups: list[list[str]] = []
    sibling_groups.append(sorted(history.top_level_executions()))
    for execution_id in sorted(history.execution_ids()):
        children = sorted(history.children_of(execution_id))
        if children:
            sibling_groups.append(children)

    permutation_sets = [list(itertools.permutations(group)) for group in sibling_groups]
    total = 1
    for permutations in permutation_sets:
        total *= len(permutations)
    if total > candidate_limit:
        raise ModelError(
            f"brute-force search space of {total} arrangements exceeds the limit "
            f"of {candidate_limit}"
        )

    for assignment in itertools.product(*permutation_sets):
        ordering = {tuple(sorted(perm)): list(perm) for perm in assignment}
        if _serial_arrangement_matches(history, ordering, reference_states):
            return True
    return False


def _serial_arrangement_matches(
    history: History,
    ordering: dict[tuple[str, ...], list[str]],
    reference_states: dict[str, ObjectState],
) -> bool:
    per_object: dict[str, list[LocalStep]] = {name: [] for name in history.object_names()}

    def ordered_siblings(siblings: list[str]) -> list[str]:
        return ordering.get(tuple(sorted(siblings)), sorted(siblings))

    def emit(execution_id: str) -> None:
        execution = history.execution(execution_id)
        child_rank = {
            child: rank
            for rank, child in enumerate(ordered_siblings(history.children_of(execution_id)))
        }

        def preference(step: Step) -> tuple[int, int]:
            if isinstance(step, MessageStep):
                child_id = history.child_of_message(step)
                return (child_rank.get(child_id, 0), step.step_id)
            return (0, step.step_id)

        for step in _program_order_sort(execution, preference):
            if isinstance(step, LocalStep):
                per_object.setdefault(step.object_name, []).append(step)
            elif isinstance(step, MessageStep):
                child_id = history.child_of_message(step)
                if child_id is not None:
                    emit(child_id)

    for top_level in ordered_siblings(history.top_level_executions()):
        emit(top_level)

    for object_name, steps in per_object.items():
        state = history.initial_state(object_name)
        for step in steps:
            value, state = step.operation.apply(state)
            if value != step.return_value and not step.is_abort():
                return False
        if state != reference_states.get(object_name, ObjectState()):
            return False
    return True


def _program_order_sort(execution, preference=None) -> list[Step]:
    steps = execution.steps()
    graph = nx.DiGraph()
    graph.add_nodes_from(step.step_id for step in steps)
    graph.add_edges_from(execution.program_order_pairs())
    by_id = {step.step_id: step for step in steps}
    if preference is None:
        key = int
    else:
        def key(step_id: int):
            return preference(by_id[step_id])
    ordered_ids = list(nx.lexicographical_topological_sort(graph, key=key))
    return [by_id[step_id] for step_id in ordered_ids]
