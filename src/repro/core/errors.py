"""Exception hierarchy for the object-base reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the library."""


class ModelError(ReproError):
    """Base class for errors in the formal model layer (:mod:`repro.core`)."""


class IllegalHistoryError(ModelError):
    """A history violates one of the legality conditions of Definition 6.

    The offending condition is recorded in :attr:`condition` (a short string
    such as ``"2b"``) and a human readable explanation is carried in the
    exception message.
    """

    def __init__(self, message: str, condition: str | None = None):
        super().__init__(message)
        self.condition = condition


class IllegalStepSequenceError(ModelError):
    """A sequence of local steps is not legal on the given initial state.

    Raised when a recorded return value disagrees with the value the
    operation actually produces when replayed (Definition 2 / Definition 6,
    condition 3).
    """


class UnknownObjectError(ModelError):
    """An object name was referenced that does not exist in the object base."""


class UnknownMethodError(ModelError):
    """A method name was invoked on an object that does not define it."""


class UnknownExecutionError(ModelError):
    """A method-execution identifier was referenced that is not in the history."""


class InvalidOperationError(ModelError):
    """A local operation was applied to a state it cannot handle."""


class SchedulerError(ReproError):
    """Base class for errors raised by concurrency-control schedulers."""


class TransactionAborted(SchedulerError):
    """Raised inside a transaction programme when the scheduler aborts it."""

    def __init__(self, execution_id: str, reason: str = ""):
        super().__init__(f"execution {execution_id} aborted: {reason}")
        self.execution_id = execution_id
        self.reason = reason


class DeadlockDetected(SchedulerError):
    """A cycle was found in the waits-for graph of a locking scheduler."""

    def __init__(self, cycle):
        super().__init__(f"deadlock among executions: {list(cycle)}")
        self.cycle = list(cycle)


class LockProtocolViolation(SchedulerError):
    """A method execution violated one of the N2PL rules (rules 1-5)."""


class TimestampViolation(SchedulerError):
    """A method execution violated one of the NTO rules (rules 1-2)."""


class SimulationError(ReproError):
    """Base class for errors raised by the simulation engine."""


class WorkloadError(SimulationError):
    """A workload generator was configured with inconsistent parameters."""


class SweepSpecError(SimulationError):
    """A scenario/sweep specification (:mod:`repro.sweep`) is invalid.

    Raised at specification construction time — unknown workload or
    scheduler names, parameters that do not exist on the referenced
    workload, non-JSON-serialisable values, or malformed grid axes — so
    that misconfigured sweeps fail before any worker process is spawned.
    """


class VerificationError(ReproError):
    """Post-hoc certification of a run found a correctness violation."""
