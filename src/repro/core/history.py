"""Histories: concurrent executions in an object base.

Definition 5: a history is a quadruple ``h = (E, <, B, S)`` where ``E`` is a
set of method executions, ``<`` is a partial order on the steps of ``h``
("t < t'" meaning step ``t`` completed before ``t'`` was initiated), ``B``
maps each message step to the method execution it caused, and ``S`` gives an
initial state for every object.

:class:`History` realises this quadruple together with the legality
conditions of Definition 6, replay of local steps to compute final states
(Theorem 1 guarantees the result is independent of the topological sort
chosen), history equivalence (Definition 7), serial histories (Definition 8)
and the abort semantics of the "Transaction Failures" subsection.

:class:`HistoryBuilder` offers a convenient, state-tracking way to construct
legal histories — it is used throughout the tests and by the simulation
engine, which records the history of every run it executes.

A history is effectively frozen at construction (``_steps`` is snapshotted
in ``__init__``), so :class:`History` also builds *persistent indexes* the
certification machinery relies on: per-object local-step lists, a
parent→children map, cached ancestor chains/sets, cached descendant
tuples, and — for interval-backed histories — per-step-set sorted-interval
sweeps that turn ``order_pairs`` and ordered-pair enumeration into
``O(n log n + k)`` binary-search scans instead of ``O(n^2)`` permutations.
The original permutation/uncached implementations are retained as
``order_pairs_legacy``/``precedes_legacy`` and serve as oracles for the
``check=True`` cross-checks in :mod:`repro.core.graphs` and the property
tests.
"""

from __future__ import annotations

import itertools
import sys
from bisect import bisect_right
from collections.abc import Iterable, Mapping
from typing import Any

from .conflicts import PerObjectConflicts
from .errors import (
    IllegalHistoryError,
    IllegalStepSequenceError,
    ModelError,
    UnknownExecutionError,
    UnknownObjectError,
)
from .executions import ENVIRONMENT_OBJECT, MethodExecution
from .operations import AbortOperation, LocalOperation, LocalStep, MessageStep, Step
from .state import ObjectState

AUTO = object()
"""Sentinel: let the :class:`HistoryBuilder` compute a step's return value."""


def _interval_sweep_pairs(items: list[tuple[int, tuple[int, int]]]) -> set[tuple[int, int]]:
    """All ordered pairs among ``(step_id, (start, end))`` items.

    ``t < t'`` iff ``end(t) < start(t')``: sort by start instant, then for
    each item every item whose start lies strictly after its end follows it
    — a binary search per item, ``O(n log n + k)`` overall.
    """
    ordered = sorted(items, key=lambda item: item[1][0])
    starts = [interval[0] for _, interval in ordered]
    pairs: set[tuple[int, int]] = set()
    for step_id, (_, end) in ordered:
        for other_id, _ in ordered[bisect_right(starts, end):]:
            pairs.add((step_id, other_id))
    return pairs


class History:
    """A (possibly illegal) history over a set of method executions.

    Parameters
    ----------
    executions:
        The method executions ``E`` of the history.
    initial_states:
        ``S``: one initial :class:`ObjectState` per object.  Objects that
        are touched by local steps but missing from the mapping default to
        the empty state.
    conflicts:
        Per-object conflict specifications used to evaluate Definition 3
        when checking legality and building serialisation graphs.
    order_pairs:
        Generating pairs ``(t, t')`` of the temporal order ``<`` (the
        relation used is their transitive closure).  Mutually exclusive
        with ``intervals``.
    intervals:
        Alternative representation of ``<``: a mapping from step id to a
        ``(start, end)`` pair of logical instants; then ``t < t'`` iff
        ``end(t) < start(t')``.  This is the representation produced by the
        simulation engine and by :class:`HistoryBuilder`.
    """

    def __init__(
        self,
        executions: Iterable[MethodExecution] | Mapping[str, MethodExecution],
        initial_states: Mapping[str, ObjectState],
        conflicts: PerObjectConflicts | None = None,
        order_pairs: Iterable[tuple[int, int]] | None = None,
        intervals: Mapping[int, tuple[int, int]] | None = None,
    ):
        if isinstance(executions, Mapping):
            self._executions: dict[str, MethodExecution] = dict(executions)
        else:
            self._executions = {execution.execution_id: execution for execution in executions}
        self._initial_states: dict[str, ObjectState] = {
            name: state if isinstance(state, ObjectState) else ObjectState(state)
            for name, state in initial_states.items()
        }
        self.conflicts = conflicts if conflicts is not None else PerObjectConflicts()

        if order_pairs is not None and intervals is not None:
            raise ModelError("provide either order_pairs or intervals, not both")
        self._intervals: dict[int, tuple[int, int]] | None = (
            dict(intervals) if intervals is not None else None
        )
        self._order_pairs: set[tuple[int, int]] = set(order_pairs or [])

        # Index steps and the B mapping.
        self._steps: dict[int, Step] = {}
        for execution in self._executions.values():
            for step in execution.steps():
                if step.step_id in self._steps:
                    raise ModelError(f"step id {step.step_id} appears in two executions")
                self._steps[step.step_id] = step
        self._children_by_step: dict[int, str] = {}
        for execution in self._executions.values():
            if execution.invoking_step_id is not None:
                self._children_by_step.setdefault(execution.invoking_step_id, execution.execution_id)

        # Persistent indexes (histories are frozen at construction).
        self._local_steps_by_object: dict[str, list[LocalStep]] = {}
        for step in self._steps.values():
            if isinstance(step, LocalStep):
                self._local_steps_by_object.setdefault(step.object_name, []).append(step)
        self._children_index: dict[str, list[str]] = {}
        self._executions_by_object: dict[str, list[str]] = {}
        for execution in self._executions.values():
            if execution.parent_id is not None:
                self._children_index.setdefault(execution.parent_id, []).append(
                    execution.execution_id
                )
            self._executions_by_object.setdefault(execution.object_name, []).append(
                execution.execution_id
            )

        self._ancestor_chain_cache: dict[str, tuple[str, ...]] = {}
        self._ancestor_set_cache: dict[str, frozenset[str]] = {}
        self._descendant_cache: dict[str, tuple[str, ...]] = {}
        self._successors_cache: dict[int, set[int]] | None = None
        self._reachability_cache: dict[int, set[int]] = {}
        self._final_states_cache: dict[str, ObjectState] | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def executions(self) -> dict[str, MethodExecution]:
        return dict(self._executions)

    @property
    def initial_states(self) -> dict[str, ObjectState]:
        return dict(self._initial_states)

    def execution(self, execution_id: str) -> MethodExecution:
        try:
            return self._executions[execution_id]
        except KeyError as exc:
            raise UnknownExecutionError(f"unknown execution {execution_id!r}") from exc

    def execution_ids(self) -> list[str]:
        return list(self._executions)

    def steps(self) -> list[Step]:
        return list(self._steps.values())

    def step(self, step_id: int) -> Step:
        return self._steps[step_id]

    def local_steps(self, object_name: str | None = None) -> list[LocalStep]:
        if object_name is not None:
            return list(self._local_steps_by_object.get(object_name, ()))
        return [step for step in self._steps.values() if isinstance(step, LocalStep)]

    def message_steps(self) -> list[MessageStep]:
        return [step for step in self._steps.values() if isinstance(step, MessageStep)]

    def object_names(self) -> set[str]:
        names = set(self._initial_states)
        names.update(step.object_name for step in self.local_steps())
        return names

    def initial_state(self, object_name: str) -> ObjectState:
        return self._initial_states.get(object_name, ObjectState())

    def intervals(self) -> dict[int, tuple[int, int]] | None:
        """The interval representation of ``<`` if one was supplied."""
        return dict(self._intervals) if self._intervals is not None else None

    # ------------------------------------------------------------------
    # the B mapping and the ancestry forest
    # ------------------------------------------------------------------

    def child_of_message(self, message_step: MessageStep | int) -> str | None:
        """``B(t)``: the execution caused by the given message step, if any."""
        step_id = message_step.step_id if isinstance(message_step, Step) else int(message_step)
        return self._children_by_step.get(step_id)

    def parent_of(self, execution_id: str) -> str | None:
        return self.execution(execution_id).parent_id

    def children_of(self, execution_id: str) -> list[str]:
        return list(self._children_index.get(execution_id, ()))

    def executions_of_object(self, object_name: str) -> list[str]:
        """Ids of the method executions belonging to the given object."""
        return list(self._executions_by_object.get(object_name, ()))

    def ancestors(self, execution_id: str, include_self: bool = False) -> list[str]:
        """Ancestors of the execution, nearest first (chains are memoised)."""
        chain = self._ancestor_chain_cache.get(execution_id)
        if chain is None:
            collected: list[str] = []
            seen = {execution_id}
            current = self.execution(execution_id).parent_id
            while current is not None:
                if current in seen:
                    break  # cyclic ancestry; reported by check_legal
                collected.append(current)
                seen.add(current)
                current = (
                    self._executions[current].parent_id if current in self._executions else None
                )
            chain = tuple(collected)
            self._ancestor_chain_cache[execution_id] = chain
        if include_self:
            return [execution_id, *chain]
        return list(chain)

    def _ancestor_set(self, execution_id: str) -> frozenset[str]:
        cached = self._ancestor_set_cache.get(execution_id)
        if cached is None:
            cached = frozenset(self.ancestors(execution_id))
            self._ancestor_set_cache[execution_id] = cached
        return cached

    def descendants(self, execution_id: str, include_self: bool = True) -> list[str]:
        cached = self._descendant_cache.get(execution_id)
        if cached is None:
            result: list[str] = [execution_id]
            visited = {execution_id}
            frontier = [execution_id]
            while frontier:
                current = frontier.pop()
                for child in self._children_index.get(current, ()):
                    if child in visited:
                        continue  # cyclic ancestry; reported by check_legal
                    visited.add(child)
                    result.append(child)
                    frontier.append(child)
            cached = tuple(result)
            self._descendant_cache[execution_id] = cached
        return list(cached) if include_self else list(cached[1:])

    def is_ancestor(self, ancestor_id: str, descendant_id: str, proper: bool = False) -> bool:
        if ancestor_id == descendant_id:
            return not proper
        return ancestor_id in self._ancestor_set(descendant_id)

    def are_comparable(self, first_id: str, second_id: str) -> bool:
        """True when one execution is a descendant of the other."""
        return self.is_ancestor(first_id, second_id) or self.is_ancestor(second_id, first_id)

    def are_incomparable(self, first_id: str, second_id: str) -> bool:
        return not self.are_comparable(first_id, second_id)

    def top_level_executions(self) -> list[str]:
        return [
            execution.execution_id
            for execution in self._executions.values()
            if execution.is_top_level
        ]

    def least_common_ancestor(self, execution_ids: Iterable[str]) -> str | None:
        """``lca``: the closest execution that is an ancestor of all the given ones."""
        ids = list(execution_ids)
        if not ids:
            return None
        common: set[str] | None = None
        for execution_id in ids:
            chain = set(self.ancestors(execution_id, include_self=True))
            common = chain if common is None else common & chain
        if not common:
            return None
        # The lca is the common ancestor with the greatest depth.
        return max(common, key=lambda eid: len(self.ancestors(eid)))

    def level(self, execution_id: str) -> int:
        """Number of proper ancestors (top-level executions are level 0)."""
        return len(self.ancestors(execution_id))

    # ------------------------------------------------------------------
    # the temporal order <
    # ------------------------------------------------------------------

    def order_pairs(self) -> set[tuple[int, int]]:
        """Generating pairs of ``<`` (derived from intervals when present).

        For interval-backed histories the pairs are enumerated with a
        sorted-interval sweep — ``O(n log n + k)`` for ``k`` ordered pairs —
        instead of the quadratic permutation scan, which is retained as
        :meth:`order_pairs_legacy` for cross-checking.
        """
        if self._intervals is None:
            return set(self._order_pairs)
        return _interval_sweep_pairs(list(self._intervals.items()))

    def order_pairs_legacy(self) -> set[tuple[int, int]]:
        """The original ``O(n^2)`` permutation enumeration (oracle only)."""
        if self._intervals is None:
            return set(self._order_pairs)
        pairs: set[tuple[int, int]] = set()
        items = list(self._intervals.items())
        for (first_id, (_, first_end)), (second_id, (second_start, _)) in itertools.permutations(items, 2):
            if first_end < second_start:
                pairs.add((first_id, second_id))
        return pairs

    def precedes(self, first: Step | int, second: Step | int) -> bool:
        """``t < t'``: ``first`` completed before ``second`` was initiated."""
        first_id = first.step_id if isinstance(first, Step) else int(first)
        second_id = second.step_id if isinstance(second, Step) else int(second)
        if first_id == second_id:
            return False
        if self._intervals is not None:
            first_interval = self._intervals.get(first_id)
            second_interval = self._intervals.get(second_id)
            if first_interval is None or second_interval is None:
                return False
            return first_interval[1] < second_interval[0]
        return second_id in self._reachable_from(first_id)

    def precedes_legacy(self, first: Step | int, second: Step | int) -> bool:
        """Uncached reference implementation of ``precedes`` (oracle only)."""
        first_id = first.step_id if isinstance(first, Step) else int(first)
        second_id = second.step_id if isinstance(second, Step) else int(second)
        if first_id == second_id:
            return False
        if self._intervals is not None:
            first_interval = self._intervals.get(first_id)
            second_interval = self._intervals.get(second_id)
            if first_interval is None or second_interval is None:
                return False
            return first_interval[1] < second_interval[0]
        successors: dict[int, set[int]] = {}
        for before, after in self._order_pairs:
            successors.setdefault(before, set()).add(after)
        reached: set[int] = set()
        frontier = list(successors.get(first_id, ()))
        while frontier:
            current = frontier.pop()
            if current in reached:
                continue
            reached.add(current)
            frontier.extend(successors.get(current, ()))
        return second_id in reached

    def _successors(self) -> dict[int, set[int]]:
        """Successor adjacency of the generating pairs (built once, cached)."""
        if self._successors_cache is None:
            successors: dict[int, set[int]] = {}
            for before, after in self._order_pairs:
                successors.setdefault(before, set()).add(after)
            self._successors_cache = successors
        return self._successors_cache

    def _reachable_from(self, step_id: int) -> set[int]:
        if step_id in self._reachability_cache:
            return self._reachability_cache[step_id]
        successors = self._successors()
        reached: set[int] = set()
        frontier = list(successors.get(step_id, ()))
        while frontier:
            current = frontier.pop()
            if current in reached:
                continue
            reached.add(current)
            frontier.extend(successors.get(current, ()))
        self._reachability_cache[step_id] = reached
        return reached

    def ordered(self, first: Step | int, second: Step | int) -> bool:
        """True when the two steps are related by ``<`` in either direction."""
        return self.precedes(first, second) or self.precedes(second, first)

    def ordered_step_pairs(self, steps: list[Step]) -> Iterable[tuple[Step, Step]]:
        """All pairs ``(t, t')`` among ``steps`` with ``t < t'``.

        Interval-backed histories use the sorted-interval sweep (binary
        search over start instants); order-pair histories fall back to the
        pairwise reachability test.  Each ordered pair is yielded exactly
        once.
        """
        if self._intervals is None:
            for first, second in itertools.permutations(steps, 2):
                if self.precedes(first, second):
                    yield first, second
            return
        entries = sorted(
            (
                (self._intervals[step.step_id][0], step)
                for step in steps
                if step.step_id in self._intervals
            ),
            key=lambda entry: entry[0],
        )
        starts = [start for start, _ in entries]
        by_start = [step for _, step in entries]
        for _, step in entries:
            end = self._intervals[step.step_id][1]
            # start <= end for every interval, so the suffix never contains
            # the step itself.
            for later in by_start[bisect_right(starts, end):]:
                yield step, later

    def ordered_conflicting_pairs(
        self, object_name: str
    ) -> Iterable[tuple[LocalStep, LocalStep]]:
        """Ordered pairs ``t < t'`` of the object's local steps with ``t`` conflicting with ``t'``."""
        for first, second in self.ordered_step_pairs(self.local_steps(object_name)):
            if self.conflicts.steps_conflict(first, second):
                yield first, second

    def projected_order_pairs(self, step_ids: Iterable[int]) -> set[tuple[int, int]]:
        """The transitive order ``<`` restricted to the given step ids.

        Used by committed projections of order-pair histories: simply
        filtering the generating pairs would lose orderings that pass
        *through* a dropped step, so the restriction is taken on the
        transitive closure instead.
        """
        keep = set(step_ids)
        if self._intervals is not None:
            return _interval_sweep_pairs(
                [(sid, interval) for sid, interval in self._intervals.items() if sid in keep]
            )
        pairs: set[tuple[int, int]] = set()
        for first in keep:
            for second in self._reachable_from(first):
                if second in keep:
                    pairs.add((first, second))
        return pairs

    def step_descendant_steps(self, step: Step | int) -> set[int]:
        """All step ids that are descendants of the given step (inclusive).

        A local step is its own only descendant; a message step's
        descendants are itself plus every step of every execution in the
        subtree rooted at ``B(step)``.
        """
        step_obj = self._steps[step.step_id if isinstance(step, Step) else int(step)]
        result = {step_obj.step_id}
        if isinstance(step_obj, MessageStep):
            child_id = self.child_of_message(step_obj)
            if child_id is not None:
                for execution_id in self.descendants(child_id):
                    if execution_id in self._executions:
                        result.update(self._executions[execution_id].step_ids())
        return result

    # ------------------------------------------------------------------
    # replay and final states (Definition 6 condition 3, Theorem 1)
    # ------------------------------------------------------------------

    def topological_local_order(self, object_name: str) -> list[LocalStep]:
        """A topological sort of the object's local steps consistent with ``<``."""
        steps = self.local_steps(object_name)
        return self._topological_sort(steps)

    def _topological_sort(self, steps: list[LocalStep]) -> list[LocalStep]:
        by_id = {step.step_id: step for step in steps}
        indegree = {step_id: 0 for step_id in by_id}
        successors: dict[int, list[int]] = {step_id: [] for step_id in by_id}
        for first, second in self.ordered_step_pairs(steps):
            successors[first.step_id].append(second.step_id)
            indegree[second.step_id] += 1
        # Kahn's algorithm with deterministic tie-breaking on step id.
        ready = sorted(step_id for step_id, degree in indegree.items() if degree == 0)
        ordered: list[LocalStep] = []
        while ready:
            current = ready.pop(0)
            ordered.append(by_id[current])
            for successor in successors[current]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
            ready.sort()
        if len(ordered) != len(steps):
            raise IllegalHistoryError(
                "the temporal order < contains a cycle among local steps", condition="2"
            )
        return ordered

    def replay(
        self,
        object_name: str,
        order: list[LocalStep] | None = None,
        *,
        ignore_aborted: bool = False,
        strict: bool = True,
    ) -> ObjectState:
        """Replay the object's local steps and return the resulting state.

        With ``strict`` (the default) a recorded return value that differs
        from the value produced by the replay raises
        :class:`IllegalStepSequenceError` — i.e. the sequence is not legal
        on the initial state.  ``ignore_aborted`` drops local steps that
        belong to aborted method executions before replaying (used by the
        abort-semantics checks and by the simulation engine's undo).
        """
        if order is None:
            order = self.topological_local_order(object_name)
        state = self.initial_state(object_name)
        for step in order:
            if ignore_aborted and self._belongs_to_aborted(step):
                continue
            value, state = step.operation.apply(state)
            if strict and value != step.return_value and not step.is_abort():
                raise IllegalStepSequenceError(
                    f"step {step.step_id} of object {object_name!r} recorded return value "
                    f"{step.return_value!r} but replay produced {value!r}"
                )
        return state

    def _belongs_to_aborted(self, step: LocalStep) -> bool:
        execution_id = step.execution_id
        for ancestor in self.ancestors(execution_id, include_self=True):
            if ancestor in self._executions and self._executions[ancestor].is_aborted():
                return True
        return False

    def final_states(self) -> dict[str, ObjectState]:
        """The final state of every object after the history (Theorem 1)."""
        if self._final_states_cache is None:
            self._final_states_cache = {
                object_name: self.replay(object_name) for object_name in sorted(self.object_names())
            }
        return dict(self._final_states_cache)

    def final_state(self, object_name: str) -> ObjectState:
        if object_name not in self.object_names():
            raise UnknownObjectError(f"object {object_name!r} does not appear in the history")
        return self.final_states()[object_name]

    # ------------------------------------------------------------------
    # legality (Definition 6)
    # ------------------------------------------------------------------

    def check_legal(self) -> None:
        """Raise :class:`IllegalHistoryError` unless the history is legal."""
        self._check_condition_one()
        self._check_condition_two()
        self._check_condition_three()

    def is_legal(self) -> bool:
        try:
            self.check_legal()
        except IllegalHistoryError:
            return False
        return True

    def _check_condition_one(self) -> None:
        # B is a function defined on every message step, and is 1-1.
        seen_children: set[str] = set()
        for message in self.message_steps():
            child_id = self.child_of_message(message)
            if child_id is None:
                raise IllegalHistoryError(
                    f"message step {message.step_id} has no resulting method execution",
                    condition="1",
                )
            if child_id in seen_children:
                raise IllegalHistoryError(
                    f"execution {child_id!r} is the image of two message steps (B not 1-1)",
                    condition="1",
                )
            seen_children.add(child_id)
            child = self.execution(child_id)
            if child.parent_id != message.execution_id:
                raise IllegalHistoryError(
                    f"execution {child_id!r} records parent {child.parent_id!r} but its "
                    f"invoking message step belongs to {message.execution_id!r}",
                    condition="1",
                )
        # Executions that claim an invoking step must contain a matching message step.
        for execution in self._executions.values():
            if execution.invoking_step_id is None:
                if execution.parent_id is not None:
                    raise IllegalHistoryError(
                        f"execution {execution.execution_id!r} has a parent but no invoking "
                        "message step",
                        condition="1",
                    )
                continue
            if execution.invoking_step_id not in self._steps or not isinstance(
                self._steps[execution.invoking_step_id], MessageStep
            ):
                raise IllegalHistoryError(
                    f"execution {execution.execution_id!r} claims invoking step "
                    f"{execution.invoking_step_id} which is not a message step of the history",
                    condition="1",
                )
        # No execution is a proper ancestor of itself.
        for execution_id in self._executions:
            visited = {execution_id}
            current = self._executions[execution_id].parent_id
            while current is not None:
                if current == execution_id:
                    raise IllegalHistoryError(
                        f"execution {execution_id!r} is a proper ancestor of itself",
                        condition="1",
                    )
                if current in visited:
                    break
                visited.add(current)
                current = (
                    self._executions[current].parent_id if current in self._executions else None
                )
        # Top-level executions belong to the environment.
        for execution_id in self.top_level_executions():
            execution = self._executions[execution_id]
            if execution.object_name != ENVIRONMENT_OBJECT:
                raise IllegalHistoryError(
                    f"top-level execution {execution_id!r} belongs to object "
                    f"{execution.object_name!r}, not the environment",
                    condition="1",
                )

    def _check_condition_two(self) -> None:
        # 2a: the temporal order extends every execution's programme order.
        for execution in self._executions.values():
            for before_id, after_id in execution.program_order_pairs():
                if not self.precedes(before_id, after_id):
                    raise IllegalHistoryError(
                        f"programme order {before_id} prec {after_id} of execution "
                        f"{execution.execution_id!r} is not respected by <",
                        condition="2a",
                    )
        # 2b: conflicting local steps are ordered.
        for object_name in self.object_names():
            steps = self.local_steps(object_name)
            for first, second in itertools.combinations(steps, 2):
                conflict = self.conflicts.steps_conflict(first, second) or self.conflicts.steps_conflict(
                    second, first
                )
                if conflict and not self.ordered(first, second):
                    raise IllegalHistoryError(
                        f"conflicting steps {first.step_id} and {second.step_id} of object "
                        f"{object_name!r} are unordered",
                        condition="2b",
                    )
        # 2c: orderings propagate to descendants.
        all_steps = list(self._steps.values())
        descendant_cache = {step.step_id: self.step_descendant_steps(step) for step in all_steps}
        for first, second in self.ordered_step_pairs(all_steps):
            for first_descendant in descendant_cache[first.step_id]:
                for second_descendant in descendant_cache[second.step_id]:
                    if first_descendant == first.step_id and second_descendant == second.step_id:
                        continue
                    if not self.precedes(first_descendant, second_descendant):
                        raise IllegalHistoryError(
                            f"{first.step_id} < {second.step_id} but descendants "
                            f"{first_descendant} and {second_descendant} are not ordered accordingly",
                            condition="2c",
                        )

    def _check_condition_three(self) -> None:
        for object_name in sorted(self.object_names()):
            try:
                self.replay(object_name)
            except IllegalStepSequenceError as exc:
                raise IllegalHistoryError(str(exc), condition="3") from exc

    # ------------------------------------------------------------------
    # serial histories and equivalence (Definitions 7 and 8)
    # ------------------------------------------------------------------

    def is_serial(self) -> bool:
        """True when incomparable executions never interleave (Definition 8)."""
        execution_ids = list(self._executions)
        for first_id, second_id in itertools.combinations(execution_ids, 2):
            if not self.are_incomparable(first_id, second_id):
                continue
            first_steps = self._subtree_step_ids(first_id)
            second_steps = self._subtree_step_ids(second_id)
            if not first_steps or not second_steps:
                continue
            first_before = all(
                self.precedes(s1, s2) for s1 in first_steps for s2 in second_steps
            )
            second_before = all(
                self.precedes(s2, s1) for s1 in first_steps for s2 in second_steps
            )
            if not (first_before or second_before):
                return False
        return True

    def _subtree_step_ids(self, execution_id: str) -> list[int]:
        step_ids: list[int] = []
        for descendant_id in self.descendants(execution_id):
            if descendant_id in self._executions:
                step_ids.extend(self._executions[descendant_id].step_ids())
        return step_ids

    def equivalent_to(self, other: "History") -> bool:
        """Definition 7: same executions, same B, same S, same final states."""
        if set(self._executions) != set(other._executions):
            return False
        for execution_id, execution in self._executions.items():
            other_execution = other._executions[execution_id]
            if set(execution.step_ids()) != set(other_execution.step_ids()):
                return False
            if execution.parent_id != other_execution.parent_id:
                return False
            if execution.invoking_step_id != other_execution.invoking_step_id:
                return False
        if self._initial_states != other._initial_states:
            return False
        mine = self.final_states()
        theirs = other.final_states()
        objects = set(mine) | set(theirs)
        return all(mine.get(name, ObjectState()) == theirs.get(name, ObjectState()) for name in objects)

    # ------------------------------------------------------------------
    # aborts (Section 3, "Transaction Failures")
    # ------------------------------------------------------------------

    def aborted_executions(self) -> set[str]:
        """Executions that contain an ``Abort`` step."""
        return {
            execution.execution_id
            for execution in self._executions.values()
            if execution.is_aborted()
        }

    def check_abort_semantics(self) -> None:
        """Check conditions (a) and (b) of the paper's abort semantics.

        (a) For every object, the subsequence of local steps belonging to
            non-aborted executions is legal on the initial state and yields
            the same final state as the full sequence.
        (b) If an execution aborts then so do all the executions its message
            steps created.
        """
        for object_name in sorted(self.object_names()):
            full_order = self.topological_local_order(object_name)
            full_state = self.replay(object_name, full_order, strict=False)
            survivors = [step for step in full_order if not self._belongs_to_aborted(step)]
            surviving_state = self.initial_state(object_name)
            for step in survivors:
                value, surviving_state = step.operation.apply(surviving_state)
                if value != step.return_value:
                    raise IllegalHistoryError(
                        f"abort semantics (a): surviving steps of {object_name!r} are not "
                        f"legal on the initial state (step {step.step_id})",
                        condition="abort-a",
                    )
            if surviving_state != full_state:
                raise IllegalHistoryError(
                    f"abort semantics (a): aborted steps changed the final state of "
                    f"{object_name!r}",
                    condition="abort-a",
                )
        for execution in self._executions.values():
            if not execution.is_aborted():
                continue
            for message in execution.message_steps():
                child_id = self.child_of_message(message)
                if child_id is None:
                    continue
                if not self.execution(child_id).is_aborted():
                    raise IllegalHistoryError(
                        f"abort semantics (b): execution {execution.execution_id!r} aborted "
                        f"but its child {child_id!r} did not",
                        condition="abort-b",
                    )

    def __repr__(self) -> str:
        return (
            f"History({len(self._executions)} executions, {len(self._steps)} steps, "
            f"{len(self.object_names())} objects)"
        )


class HistoryBuilder:
    """Incrementally construct a legal history while tracking object states.

    The builder maintains a logical clock and the current state of every
    object.  Each local step is stamped with the clock instant at which it
    executed; message steps span the interval from invocation to the
    completion of the child execution, which makes condition 2c of
    Definition 6 hold by construction.  When a local step's return value is
    left as :data:`AUTO` the builder computes it by applying the operation
    to the object's current state, so condition 3 also holds by
    construction.
    """

    def __init__(
        self,
        initial_states: Mapping[str, ObjectState | Mapping[str, Any]] | None = None,
        conflicts: PerObjectConflicts | None = None,
    ):
        self._initial_states: dict[str, ObjectState] = {
            name: state if isinstance(state, ObjectState) else ObjectState(state)
            for name, state in (initial_states or {}).items()
        }
        self._conflicts = conflicts if conflicts is not None else PerObjectConflicts()
        self._current_states: dict[str, ObjectState] = dict(self._initial_states)
        self._executions: dict[str, MethodExecution] = {}
        self._intervals: dict[int, tuple[int, int]] = {}
        self._open_messages: dict[str, int] = {}  # execution id -> its invoking message step id
        # Step-id index over every step this builder recorded, so closing a
        # message on finish() is a lookup instead of a scan over all
        # executions (which made long runs quadratic in their step count).
        self._steps_by_id: dict[int, Step] = {}
        self._clock = 0
        self._top_level_counter = itertools.count(1)
        self._child_counters: dict[str, itertools.count] = {}

    # -- clock ---------------------------------------------------------------

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    @property
    def clock(self) -> int:
        return self._clock

    # -- states --------------------------------------------------------------

    def current_state(self, object_name: str) -> ObjectState:
        """The object's state after every local step recorded so far."""
        return self._current_states.get(object_name, ObjectState())

    def set_initial_state(self, object_name: str, state: ObjectState | Mapping[str, Any]) -> None:
        if any(execution.local_steps() for execution in self._executions.values()):
            for execution in self._executions.values():
                for step in execution.local_steps():
                    if step.object_name == object_name:
                        raise ModelError(
                            f"cannot change initial state of {object_name!r} after recording "
                            "local steps on it"
                        )
        resolved = state if isinstance(state, ObjectState) else ObjectState(state)
        self._initial_states[object_name] = resolved
        self._current_states[object_name] = resolved

    # -- executions ----------------------------------------------------------

    def begin_top_level(
        self, method_name: str = "transaction", execution_id: str | None = None
    ) -> MethodExecution:
        """Start a new top-level transaction (a method of the environment)."""
        if execution_id is None:
            # Interned: these ids are compared and hashed throughout the
            # engine's hot paths (frame table, park index, subtree sets).
            execution_id = sys.intern(f"T{next(self._top_level_counter)}")
        if execution_id in self._executions:
            raise ModelError(f"duplicate execution id {execution_id!r}")
        execution = MethodExecution(execution_id, ENVIRONMENT_OBJECT, method_name)
        self._executions[execution_id] = execution
        return execution

    def invoke(
        self,
        parent: MethodExecution | str,
        target_object: str,
        target_method: str,
        arguments: tuple[Any, ...] = (),
        after: Iterable[Step | int] | None = None,
        execution_id: str | None = None,
    ) -> MethodExecution:
        """Record a message step in ``parent`` and create the child execution."""
        parent_execution = self._resolve(parent)
        if execution_id is None:
            counter = self._child_counters.setdefault(
                parent_execution.execution_id, itertools.count(1)
            )
            execution_id = sys.intern(f"{parent_execution.execution_id}.{next(counter)}")
        if execution_id in self._executions:
            raise ModelError(f"duplicate execution id {execution_id!r}")

        message = MessageStep(
            parent_execution.execution_id, target_object, target_method, arguments
        )
        parent_execution.add_step(message, after=after)
        self._steps_by_id[message.step_id] = message
        start = self._tick()
        self._intervals[message.step_id] = (start, start)  # end fixed on finish()

        child = MethodExecution(
            execution_id,
            target_object,
            target_method,
            parent_id=parent_execution.execution_id,
            invoking_step_id=message.step_id,
        )
        self._executions[execution_id] = child
        self._open_messages[execution_id] = message.step_id
        return child

    def local(
        self,
        execution: MethodExecution | str,
        operation: LocalOperation,
        return_value: Any = AUTO,
        after: Iterable[Step | int] | None = None,
    ) -> LocalStep:
        """Record a local step of ``execution`` on its own object."""
        resolved = self._resolve(execution)
        object_name = resolved.object_name
        state = self._current_states.get(object_name, ObjectState())
        produced_value, new_state = operation.apply(state)
        value = produced_value if return_value is AUTO else return_value
        step = LocalStep(resolved.execution_id, object_name, operation, value)
        resolved.add_step(step, after=after)
        self._steps_by_id[step.step_id] = step
        instant = self._tick()
        self._intervals[step.step_id] = (instant, instant)
        self._current_states[object_name] = new_state
        self._initial_states.setdefault(object_name, ObjectState())
        return step

    def record_local(
        self, execution: MethodExecution, operation: LocalOperation, return_value: Any
    ) -> LocalStep:
        """The simulation engine's fast path for :meth:`local`.

        The engine has already applied the operation (its own state table
        is authoritative — it also *undoes* aborted effects, which the
        builder's convenience state mirror never does), so this records
        the step without re-applying the operation or touching the mirror.
        Standalone history construction should keep using :meth:`local`.
        """
        object_name = execution.object_name
        step = LocalStep(execution.execution_id, object_name, operation, return_value)
        execution.add_step(step)
        self._steps_by_id[step.step_id] = step
        instant = self._tick()
        self._intervals[step.step_id] = (instant, instant)
        if object_name not in self._initial_states:
            self._initial_states[object_name] = ObjectState()
        return step

    def abort(self, execution: MethodExecution | str, reason: str = "") -> LocalStep:
        """Record an ``Abort`` step as the execution's last operation."""
        return self.local(execution, AbortOperation(reason))

    def finish(self, execution: MethodExecution | str, return_value: Any = None) -> None:
        """Mark the execution complete, closing its invoking message step."""
        resolved = self._resolve(execution)
        message_id = self._open_messages.pop(resolved.execution_id, None)
        end = self._tick()
        if message_id is not None:
            start, _ = self._intervals[message_id]
            self._intervals[message_id] = (start, end)
            message = self._find_step(message_id)
            message.return_value = return_value

    def _find_step(self, step_id: int) -> Step:
        step = self._steps_by_id.get(step_id)
        if step is not None:
            return step
        # Steps attached to an execution behind the builder's back are not
        # in the index; fall back to the (slow) scan before giving up.
        for execution in self._executions.values():
            if execution.has_step(step_id):
                return execution.step(step_id)
        raise ModelError(f"unknown step id {step_id}")

    def _resolve(self, execution: MethodExecution | str) -> MethodExecution:
        if isinstance(execution, MethodExecution):
            return execution
        try:
            return self._executions[execution]
        except KeyError as exc:
            raise UnknownExecutionError(f"unknown execution {execution!r}") from exc

    # -- committed-subtree snapshots ------------------------------------------

    def execution_record(self, execution_id: str) -> MethodExecution:
        """The live :class:`MethodExecution` recorded under ``execution_id``.

        Exposed for the streaming certifier, which snapshots a committed
        transaction's subtree at commit time (when the subtree's steps and
        message intervals are final) instead of waiting for :meth:`build`.
        """
        return self._resolve(execution_id)

    def intervals_for(self, executions: Iterable[MethodExecution]) -> dict[int, tuple[int, int]]:
        """The interval slice covering every step of the given executions.

        Message steps of an unfinished execution are absent from the slice
        only if the child never ran; for a committed subtree every message
        has been closed by :meth:`finish`, so the slice is complete and
        immutable.
        """
        slice_: dict[int, tuple[int, int]] = {}
        intervals = self._intervals
        for execution in executions:
            # Iterate the id index directly: this runs once per commit on
            # the streaming path, and materialising the step lists just to
            # read their ids was a measurable slice of the feed cost.
            for step_id in execution.step_ids_iter():
                interval = intervals.get(step_id)
                if interval is not None:
                    slice_[step_id] = interval
        return slice_

    # -- building ------------------------------------------------------------

    def build(self, check: bool = False) -> History:
        """Produce the :class:`History`; optionally verify legality."""
        # Close any message steps whose executions were never finished.
        for execution_id, message_id in list(self._open_messages.items()):
            start, _ = self._intervals[message_id]
            self._intervals[message_id] = (start, self._tick())
            self._open_messages.pop(execution_id, None)
        history = History(
            list(self._executions.values()),
            self._initial_states,
            conflicts=self._conflicts,
            intervals=self._intervals,
        )
        if check:
            history.check_legal()
        return history

    @property
    def conflicts(self) -> PerObjectConflicts:
        return self._conflicts
