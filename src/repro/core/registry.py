"""Uniform component resolution for every pluggable registry.

The library grew four pluggable component families — restart policies,
arrival processes, workloads and schedulers — and, before this module,
four slightly different resolution functions: one accepted only a
registry name, one a name or a mapping, two a name, a mapping or a ready
instance, each with its own error wording.  :func:`resolve_component`
is the single shape behind all of them.  A *component specification* is
uniformly one of

* a registry **name** — ``"backoff"``;
* a JSON-friendly **mapping** — ``{"name": "backoff", "base": 16}`` —
  the ``name`` entry selects the factory, every other entry is passed
  as a constructor keyword;
* a ready **instance** of the component's base type, returned unchanged
  (extra keywords are rejected: an already-built component cannot be
  reconfigured).

The mapping shape is what lets declarative sweep axes
(:mod:`repro.sweep`) target any component knob without code: the spec
stays JSON-serialisable all the way into the worker processes.  The
adaptive scheduler's policy ladder and the modular scheduler's
``per_object_strategy`` accept the same shapes for their intra-object
strategies (:data:`repro.scheduler.modular.INTRA_STRATEGIES`).

Errors are uniform and actionable: unknown names raise :class:`KeyError`
naming the registry's available entries, malformed specifications raise
:class:`TypeError` describing the accepted shapes.  The historical entry
points (``make_restart_policy``, ``make_arrival_process``,
``make_workload``, ``make_scheduler``) remain as thin wrappers.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

__all__ = ["component_names", "resolve_component"]


def component_names(registry: Mapping[str, Any]) -> list[str]:
    """The sorted registry names a specification may reference."""
    return sorted(registry)


def resolve_component(
    registry: Mapping[str, Callable[..., Any]],
    spec: Any,
    *,
    kind: str = "component",
    instance_of: type | tuple[type, ...] | None = None,
    construction_args: tuple = (),
    **kwargs: Any,
):
    """Build a component from a ``name | {"name", ...kwargs} | instance`` spec.

    Args:
        registry: mapping of names to factories (classes or callables).
        spec: the component specification — a registry name, a mapping
            with a ``"name"`` entry plus constructor keywords, or (when
            ``instance_of`` is given) a ready instance.
        kind: human-readable component family name used in error
            messages (``"restart policy"``, ``"workload"``, ...).
        instance_of: base type(s) of ready instances; ``None`` means the
            instance shape is not accepted for this family.
        construction_args: positional arguments prepended to the factory
            call when the component is built from a name or mapping
            (ready instances are returned as-is and never see them).
        **kwargs: extra constructor keywords, merged over the mapping's
            entries.  Rejected when ``spec`` is already an instance.

    Raises:
        KeyError: on a name absent from ``registry`` (the message lists
            the available names).
        TypeError: on a mapping without a ``"name"`` entry, a
            specification of an unsupported type, keywords applied to a
            ready instance, or keywords the factory does not accept.
    """
    if instance_of is not None and isinstance(spec, instance_of):
        if kwargs:
            raise TypeError(
                f"cannot apply keyword arguments to a ready "
                f"{type(spec).__name__} instance"
            )
        return spec
    if isinstance(spec, str):
        name, merged = spec, dict(kwargs)
    elif isinstance(spec, Mapping):
        merged = {key: value for key, value in spec.items() if key != "name"}
        merged.update(kwargs)
        name = spec.get("name")
        if not isinstance(name, str):
            raise TypeError(
                f"{kind} mapping needs a 'name' entry, got {dict(spec)!r}"
            )
    else:
        raise TypeError(
            f"{kind} must be a name, a mapping or {_instance_phrase(instance_of)}, "
            f"got {spec!r}"
        )
    try:
        factory = registry[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown {kind} {name!r}; "
            f"available: {', '.join(component_names(registry))}"
        ) from exc
    return factory(*construction_args, **merged)


def _instance_phrase(instance_of: type | tuple[type, ...] | None) -> str:
    if instance_of is None:
        return "an instance"
    types = instance_of if isinstance(instance_of, tuple) else (instance_of,)
    return " or ".join(f"a {cls.__name__}" for cls in types)
