"""Serialisation graphs (Definitions 9 and 10).

The *serialisation graph* ``SG(h)`` of a history has one node per method
execution and an edge ``e -> e'`` between incomparable executions whenever
an equivalent serial history would have to run ``e`` before ``e'``:

* **type (a)** edges record conflicts: some descendant of ``e`` issued a
  step that precedes and conflicts with a step issued by a descendant of
  ``e'``;
* **type (b)** edges record programme structure: the least common ancestor
  of ``e`` and ``e'`` ordered the messages that created them.

Theorem 2 states that acyclicity of ``SG(h)`` implies serialisability of
``h``; Section 5.3 refines the graph into per-object graphs ``SG_local`` and
``SG_mesg`` plus a per-execution message relation, which Theorem 5 uses to
separate intra-object from inter-object synchronisation.

All graphs are returned as :class:`networkx.DiGraph` instances whose edges
carry a ``reasons`` attribute listing the step pairs that induced them, so
failures can be explained to the user.
"""

from __future__ import annotations

import itertools
from typing import Iterable

import networkx as nx

from .history import History
from .operations import LocalStep, MessageStep


def _add_edge(graph: nx.DiGraph, source: str, target: str, reason: tuple) -> None:
    if graph.has_edge(source, target):
        graph[source][target]["reasons"].append(reason)
    else:
        graph.add_edge(source, target, reasons=[reason])


def _conflicting_ordered_pairs(history: History) -> Iterable[tuple[LocalStep, LocalStep]]:
    """Yield ordered pairs ``(t, t')`` with ``t < t'`` and ``t`` conflicting with ``t'``."""
    for object_name in history.object_names():
        steps = history.local_steps(object_name)
        for first, second in itertools.permutations(steps, 2):
            if not history.precedes(first, second):
                continue
            if history.conflicts.steps_conflict(first, second):
                yield first, second


def serialisation_graph(history: History) -> nx.DiGraph:
    """Build ``SG(h)`` exactly as in Definition 9.

    Nodes are execution ids.  For a type (a) witness ``t < t'`` with ``t``
    conflicting with ``t'``, edges are added between *every* pair of
    incomparable ancestors of the two issuing executions (this realises the
    Observation following Definition 9).  For a type (b) witness ``m prec
    m'`` among the message steps of an execution, edges are added between
    every pair of executions descending from ``B(m)`` and ``B(m')``.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(history.execution_ids())

    # Type (a): conflict-induced edges.
    for first, second in _conflicting_ordered_pairs(history):
        first_ancestors = history.ancestors(first.execution_id, include_self=True)
        second_ancestors = history.ancestors(second.execution_id, include_self=True)
        for source in first_ancestors:
            for target in second_ancestors:
                if source == target:
                    continue
                if history.are_incomparable(source, target):
                    _add_edge(graph, source, target, ("conflict", first.step_id, second.step_id))

    # Type (b): programme-structure edges.
    for execution in history.executions.values():
        messages = execution.message_steps()
        for first_message, second_message in itertools.permutations(messages, 2):
            if not execution.program_precedes(first_message, second_message):
                continue
            first_child = history.child_of_message(first_message)
            second_child = history.child_of_message(second_message)
            if first_child is None or second_child is None:
                continue
            for source in history.descendants(first_child):
                for target in history.descendants(second_child):
                    _add_edge(
                        graph,
                        source,
                        target,
                        ("structure", first_message.step_id, second_message.step_id),
                    )
    return graph


def sg_local(history: History, object_name: str) -> nx.DiGraph:
    """``SG_local(h, o)``: conflict ordering among the object's own executions.

    Nodes are the method executions *of object* ``object_name``; there is an
    edge ``e -> e'`` when the executions are incomparable and some step of
    ``e`` itself precedes and conflicts with some step of ``e'`` itself
    (Definition 10).
    """
    graph = nx.DiGraph()
    executions = [
        execution
        for execution in history.executions.values()
        if execution.object_name == object_name
    ]
    graph.add_nodes_from(execution.execution_id for execution in executions)
    for first_execution, second_execution in itertools.permutations(executions, 2):
        if not history.are_incomparable(first_execution.execution_id, second_execution.execution_id):
            continue
        for first_step in first_execution.local_steps():
            for second_step in second_execution.local_steps():
                if not history.precedes(first_step, second_step):
                    continue
                if history.conflicts.steps_conflict(first_step, second_step):
                    _add_edge(
                        graph,
                        first_execution.execution_id,
                        second_execution.execution_id,
                        ("local-conflict", first_step.step_id, second_step.step_id),
                    )
    return graph


def sg_mesg(history: History, object_name: str) -> nx.DiGraph:
    """``SG_mesg(h, o)``: orderings the object's executions inherit from below.

    Same nodes as :func:`sg_local`; an edge ``e -> e'`` appears when the two
    executions are incomparable and some *proper descendants* ``f`` of ``e``
    and ``f'`` of ``e'`` are joined by an edge of ``SG_local(h, o')`` for
    some object ``o'`` (Definition 10).
    """
    graph = nx.DiGraph()
    executions = [
        execution
        for execution in history.executions.values()
        if execution.object_name == object_name
    ]
    graph.add_nodes_from(execution.execution_id for execution in executions)

    local_graphs = {
        other_object: sg_local(history, other_object) for other_object in _objects_with_executions(history)
    }

    for first_execution, second_execution in itertools.permutations(executions, 2):
        first_id = first_execution.execution_id
        second_id = second_execution.execution_id
        if not history.are_incomparable(first_id, second_id):
            continue
        first_descendants = set(history.descendants(first_id, include_self=False))
        second_descendants = set(history.descendants(second_id, include_self=False))
        for local_graph in local_graphs.values():
            for source, target in local_graph.edges:
                if source in first_descendants and target in second_descendants:
                    _add_edge(graph, first_id, second_id, ("mesg", source, target))
    return graph


def _objects_with_executions(history: History) -> set[str]:
    return {execution.object_name for execution in history.executions.values()}


def combined_object_graph(history: History, object_name: str) -> nx.DiGraph:
    """``SG_local(h, o) union SG_mesg(h, o)`` — the graph of Theorem 5(a)."""
    combined = nx.DiGraph()
    local_graph = sg_local(history, object_name)
    mesg_graph = sg_mesg(history, object_name)
    combined.add_nodes_from(local_graph.nodes)
    combined.add_nodes_from(mesg_graph.nodes)
    for source, target, data in local_graph.edges(data=True):
        _add_edge(combined, source, target, ("local", data["reasons"]))
    for source, target, data in mesg_graph.edges(data=True):
        _add_edge(combined, source, target, ("mesg", data["reasons"]))
    return combined


def message_relation(history: History, execution_id: str) -> nx.DiGraph:
    """The relation ``->_e`` of Theorem 5(b) among the execution's messages.

    ``u ->_e u'`` holds between two distinct message steps of the execution
    when either the programme order of the execution places ``u`` before
    ``u'`` or some descendant step of ``u`` precedes and conflicts with a
    descendant step of ``u'``.
    """
    execution = history.execution(execution_id)
    graph = nx.DiGraph()
    messages = execution.message_steps()
    graph.add_nodes_from(message.step_id for message in messages)
    for first_message, second_message in itertools.permutations(messages, 2):
        if execution.program_precedes(first_message, second_message):
            _add_edge(graph, first_message.step_id, second_message.step_id, ("structure",))
            continue
        first_steps = _descendant_local_steps(history, first_message)
        second_steps = _descendant_local_steps(history, second_message)
        for first_step in first_steps:
            for second_step in second_steps:
                if first_step.object_name != second_step.object_name:
                    continue
                if not history.precedes(first_step, second_step):
                    continue
                conflict = history.conflicts.steps_conflict(
                    first_step, second_step
                ) or history.conflicts.steps_conflict(second_step, first_step)
                if conflict:
                    _add_edge(
                        graph,
                        first_message.step_id,
                        second_message.step_id,
                        ("conflict", first_step.step_id, second_step.step_id),
                    )
    return graph


def _descendant_local_steps(history: History, message: MessageStep) -> list[LocalStep]:
    steps: list[LocalStep] = []
    child_id = history.child_of_message(message)
    if child_id is None:
        return steps
    for execution_id in history.descendants(child_id):
        steps.extend(history.execution(execution_id).local_steps())
    return steps


def is_acyclic(graph: nx.DiGraph) -> bool:
    """True when the directed graph has no cycles."""
    return nx.is_directed_acyclic_graph(graph)


def find_cycle(graph: nx.DiGraph) -> list[tuple[str, str]] | None:
    """Return one cycle as a list of edges, or ``None`` if the graph is acyclic."""
    try:
        return [(source, target) for source, target in nx.find_cycle(graph)]
    except nx.NetworkXNoCycle:
        return None
