"""Serialisation graphs (Definitions 9 and 10).

The *serialisation graph* ``SG(h)`` of a history has one node per method
execution and an edge ``e -> e'`` between incomparable executions whenever
an equivalent serial history would have to run ``e`` before ``e'``:

* **type (a)** edges record conflicts: some descendant of ``e`` issued a
  step that precedes and conflicts with a step issued by a descendant of
  ``e'``;
* **type (b)** edges record programme structure: the least common ancestor
  of ``e`` and ``e'`` ordered the messages that created them.

Theorem 2 states that acyclicity of ``SG(h)`` implies serialisability of
``h``; Section 5.3 refines the graph into per-object graphs ``SG_local`` and
``SG_mesg`` plus a per-execution message relation, which Theorem 5 uses to
separate intra-object from inter-object synchronisation.

All graphs are returned as :class:`networkx.DiGraph` instances whose edges
carry a ``reasons`` attribute listing the step pairs that induced them, so
failures can be explained to the user.

Two construction strategies coexist:

* the **indexed** builders (the default) enumerate only actually-ordered
  conflicting step pairs per object via the history's sorted-interval
  sweep — ``O(n log n + k)`` pair enumeration instead of ``O(n^2)``
  permutations — and share per-object ``SG_local`` graphs when assembling
  ``SG_mesg``;
* the **legacy** builders (``*_legacy``) are the original from-scratch
  permutation scans.  They are retained as oracles: every indexed builder
  takes a ``check=True`` flag that rebuilds the graph the legacy way and
  raises :class:`~repro.core.errors.VerificationError` on any divergence
  (mirroring the ``check_undo`` convention of the simulation engine).

:class:`IncrementalSG` additionally maintains ``SG(h)`` *online*: local
steps are fed in temporal order and each is classified against the
per-object steps already seen, while a DFS-based incremental cycle check
flags the first edge that closes a cycle — this is the post-run analogue of
the optimistic certifier's commit-time validation.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping

import networkx as nx

from .errors import VerificationError
from .history import History
from .operations import LocalStep, MessageStep


def _add_edge(graph: nx.DiGraph, source: str, target: str, reason: tuple) -> None:
    if graph.has_edge(source, target):
        graph[source][target]["reasons"].append(reason)
    else:
        graph.add_edge(source, target, reasons=[reason])


def has_path(graph: nx.DiGraph, source, target) -> bool:
    """Iterative DFS reachability (used by the incremental cycle checks)."""
    if source not in graph or target not in graph:
        return False
    if source == target:
        return True
    seen = {source}
    frontier = [source]
    while frontier:
        current = frontier.pop()
        for successor in graph.successors(current):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return False


def _conflicting_ordered_pairs(history: History) -> Iterable[tuple[LocalStep, LocalStep]]:
    """Yield ordered pairs ``(t, t')`` with ``t < t'`` and ``t`` conflicting with ``t'``.

    Uses the history's sorted-interval sweep, so only actually-ordered pairs
    are examined per object.
    """
    for object_name in sorted(history.object_names()):
        yield from history.ordered_conflicting_pairs(object_name)


def _conflicting_ordered_pairs_legacy(history: History) -> Iterable[tuple[LocalStep, LocalStep]]:
    """The original permutation enumeration (oracle only)."""
    for object_name in history.object_names():
        steps = history.local_steps(object_name)
        for first, second in itertools.permutations(steps, 2):
            if not history.precedes_legacy(first, second):
                continue
            if history.conflicts.steps_conflict(first, second):
                yield first, second


def _reason_multisets(graph: nx.DiGraph) -> dict[tuple, dict[tuple, int]]:
    rendered: dict[tuple, dict[tuple, int]] = {}
    for source, target, data in graph.edges(data=True):
        counts: dict[tuple, int] = {}
        for reason in data["reasons"]:
            key = tuple(reason)
            counts[key] = counts.get(key, 0) + 1
        rendered[(source, target)] = counts
    return rendered


def _assert_graphs_match(candidate: nx.DiGraph, oracle: nx.DiGraph, label: str) -> None:
    """Cross-check an indexed graph against its legacy oracle."""
    if set(candidate.nodes) != set(oracle.nodes):
        raise VerificationError(
            f"{label}: node sets diverge (indexed {sorted(candidate.nodes)!r} "
            f"vs legacy {sorted(oracle.nodes)!r})"
        )
    candidate_reasons = _reason_multisets(candidate)
    oracle_reasons = _reason_multisets(oracle)
    if candidate_reasons != oracle_reasons:
        missing = set(oracle_reasons) - set(candidate_reasons)
        extra = set(candidate_reasons) - set(oracle_reasons)
        raise VerificationError(
            f"{label}: edge/reason sets diverge (missing {sorted(missing)!r}, "
            f"extra {sorted(extra)!r}, or reason multiplicities differ)"
        )


# ---------------------------------------------------------------------------
# SG(h) — Definition 9
# ---------------------------------------------------------------------------


def _add_type_a_edges(
    graph: nx.DiGraph,
    history: History,
    pairs: Iterable[tuple[LocalStep, LocalStep]],
) -> None:
    for first, second in pairs:
        first_ancestors = history.ancestors(first.execution_id, include_self=True)
        second_ancestors = history.ancestors(second.execution_id, include_self=True)
        for source in first_ancestors:
            for target in second_ancestors:
                if source == target:
                    continue
                if history.are_incomparable(source, target):
                    _add_edge(graph, source, target, ("conflict", first.step_id, second.step_id))


def _add_type_b_edges(history: History, add_edge) -> None:
    """Install Definition 9's structure edges through ``add_edge(source, target, reason)``."""
    for execution in history.executions.values():
        messages = execution.message_steps()
        for first_message, second_message in itertools.permutations(messages, 2):
            if not execution.program_precedes(first_message, second_message):
                continue
            first_child = history.child_of_message(first_message)
            second_child = history.child_of_message(second_message)
            if first_child is None or second_child is None:
                continue
            for source in history.descendants(first_child):
                for target in history.descendants(second_child):
                    add_edge(
                        source,
                        target,
                        ("structure", first_message.step_id, second_message.step_id),
                    )


def serialisation_graph(history: History, *, check: bool = False) -> nx.DiGraph:
    """Build ``SG(h)`` exactly as in Definition 9.

    Nodes are execution ids.  For a type (a) witness ``t < t'`` with ``t``
    conflicting with ``t'``, edges are added between *every* pair of
    incomparable ancestors of the two issuing executions (this realises the
    Observation following Definition 9).  For a type (b) witness ``m prec
    m'`` among the message steps of an execution, edges are added between
    every pair of executions descending from ``B(m)`` and ``B(m')``.

    Conflict witnesses are enumerated with the history's sorted-interval
    sweep; ``check=True`` rebuilds the graph with the legacy permutation
    scan and raises on any divergence.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(history.execution_ids())
    _add_type_a_edges(graph, history, _conflicting_ordered_pairs(history))
    _add_type_b_edges(history, lambda source, target, reason: _add_edge(graph, source, target, reason))
    if check:
        _assert_graphs_match(graph, serialisation_graph_legacy(history), "serialisation_graph")
    return graph


def serialisation_graph_legacy(history: History) -> nx.DiGraph:
    """The original from-scratch ``SG(h)`` builder (oracle for ``check=True``)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(history.execution_ids())
    _add_type_a_edges(graph, history, _conflicting_ordered_pairs_legacy(history))
    _add_type_b_edges(history, lambda source, target, reason: _add_edge(graph, source, target, reason))
    return graph


# ---------------------------------------------------------------------------
# SG_local and SG_mesg — Definition 10
# ---------------------------------------------------------------------------


def sg_local(history: History, object_name: str, *, check: bool = False) -> nx.DiGraph:
    """``SG_local(h, o)``: conflict ordering among the object's own executions.

    Nodes are the method executions *of object* ``object_name``; there is an
    edge ``e -> e'`` when the executions are incomparable and some step of
    ``e`` itself precedes and conflicts with some step of ``e'`` itself
    (Definition 10).  Local steps of an object always belong to that
    object's executions, so the edge witnesses are exactly the ordered
    conflicting pairs of the object's local steps.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(history.executions_of_object(object_name))
    for first, second in history.ordered_conflicting_pairs(object_name):
        source = first.execution_id
        target = second.execution_id
        if source == target:
            continue
        if history.are_incomparable(source, target):
            _add_edge(graph, source, target, ("local-conflict", first.step_id, second.step_id))
    if check:
        _assert_graphs_match(graph, sg_local_legacy(history, object_name), f"sg_local({object_name!r})")
    return graph


def sg_local_legacy(history: History, object_name: str) -> nx.DiGraph:
    """The original per-execution-pair ``SG_local`` builder (oracle)."""
    graph = nx.DiGraph()
    executions = [
        history.execution(execution_id)
        for execution_id in history.executions_of_object(object_name)
    ]
    graph.add_nodes_from(execution.execution_id for execution in executions)
    for first_execution, second_execution in itertools.permutations(executions, 2):
        if not history.are_incomparable(first_execution.execution_id, second_execution.execution_id):
            continue
        for first_step in first_execution.local_steps():
            for second_step in second_execution.local_steps():
                if not history.precedes_legacy(first_step, second_step):
                    continue
                if history.conflicts.steps_conflict(first_step, second_step):
                    _add_edge(
                        graph,
                        first_execution.execution_id,
                        second_execution.execution_id,
                        ("local-conflict", first_step.step_id, second_step.step_id),
                    )
    return graph


def sg_mesg(
    history: History,
    object_name: str,
    *,
    local_graphs: Mapping[str, nx.DiGraph] | None = None,
    check: bool = False,
) -> nx.DiGraph:
    """``SG_mesg(h, o)``: orderings the object's executions inherit from below.

    Same nodes as :func:`sg_local`; an edge ``e -> e'`` appears when the two
    executions are incomparable and some *proper descendants* ``f`` of ``e``
    and ``f'`` of ``e'`` are joined by an edge of ``SG_local(h, o')`` for
    some object ``o'`` (Definition 10).

    Instead of scanning every pair of the object's executions against every
    local edge, each local edge ``f -> f'`` is mapped *up*: the candidate
    endpoints are the proper ancestors of ``f`` and ``f'`` that belong to
    ``object_name`` (cached chains), so the cost is proportional to the
    number of local edges times the nesting depth.  ``local_graphs`` lets
    callers (``combined_object_graph``, ``theorem_5_conditions``) share the
    per-object local graphs instead of rebuilding them per call.
    """
    graph = nx.DiGraph()
    object_executions = history.executions_of_object(object_name)
    graph.add_nodes_from(object_executions)
    members = set(object_executions)
    if local_graphs is None:
        local_graphs = {
            other_object: sg_local(history, other_object)
            for other_object in _objects_with_executions(history)
        }
    for local_graph in local_graphs.values():
        for first_id, second_id in local_graph.edges:
            sources = [eid for eid in history.ancestors(first_id) if eid in members]
            if not sources:
                continue
            targets = [eid for eid in history.ancestors(second_id) if eid in members]
            for source in sources:
                for target in targets:
                    if source == target:
                        continue
                    if history.are_incomparable(source, target):
                        _add_edge(graph, source, target, ("mesg", first_id, second_id))
    if check:
        _assert_graphs_match(graph, sg_mesg_legacy(history, object_name), f"sg_mesg({object_name!r})")
    return graph


def sg_mesg_legacy(history: History, object_name: str) -> nx.DiGraph:
    """The original execution-pair scan over all local graphs (oracle)."""
    graph = nx.DiGraph()
    executions = [
        history.execution(execution_id)
        for execution_id in history.executions_of_object(object_name)
    ]
    graph.add_nodes_from(execution.execution_id for execution in executions)

    local_graphs = {
        other_object: sg_local_legacy(history, other_object)
        for other_object in _objects_with_executions(history)
    }

    for first_execution, second_execution in itertools.permutations(executions, 2):
        first_id = first_execution.execution_id
        second_id = second_execution.execution_id
        if not history.are_incomparable(first_id, second_id):
            continue
        first_descendants = set(history.descendants(first_id, include_self=False))
        second_descendants = set(history.descendants(second_id, include_self=False))
        for local_graph in local_graphs.values():
            for source, target in local_graph.edges:
                if source in first_descendants and target in second_descendants:
                    _add_edge(graph, first_id, second_id, ("mesg", source, target))
    return graph


def _objects_with_executions(history: History) -> set[str]:
    return {execution.object_name for execution in history.executions.values()}


def combined_object_graph(
    history: History,
    object_name: str,
    *,
    local_graphs: Mapping[str, nx.DiGraph] | None = None,
) -> nx.DiGraph:
    """``SG_local(h, o) union SG_mesg(h, o)`` — the graph of Theorem 5(a)."""
    combined = nx.DiGraph()
    if local_graphs is not None and object_name in local_graphs:
        local_graph = local_graphs[object_name]
    else:
        local_graph = sg_local(history, object_name)
    mesg_graph = sg_mesg(history, object_name, local_graphs=local_graphs)
    combined.add_nodes_from(local_graph.nodes)
    combined.add_nodes_from(mesg_graph.nodes)
    for source, target, data in local_graph.edges(data=True):
        _add_edge(combined, source, target, ("local", data["reasons"]))
    for source, target, data in mesg_graph.edges(data=True):
        _add_edge(combined, source, target, ("mesg", data["reasons"]))
    return combined


def message_relation(history: History, execution_id: str) -> nx.DiGraph:
    """The relation ``->_e`` of Theorem 5(b) among the execution's messages.

    ``u ->_e u'`` holds between two distinct message steps of the execution
    when either the programme order of the execution places ``u`` before
    ``u'`` or some descendant step of ``u`` precedes and conflicts with a
    descendant step of ``u'``.
    """
    execution = history.execution(execution_id)
    graph = nx.DiGraph()
    messages = execution.message_steps()
    graph.add_nodes_from(message.step_id for message in messages)
    # Descendant steps are gathered once per message (bucketed by object) —
    # the pair loop below reuses them instead of re-walking the subtree.
    steps_by_message: dict[int, dict[str, list[LocalStep]]] = {}
    for message in messages:
        buckets: dict[str, list[LocalStep]] = {}
        for step in _descendant_local_steps(history, message):
            buckets.setdefault(step.object_name, []).append(step)
        steps_by_message[message.step_id] = buckets
    for first_message, second_message in itertools.permutations(messages, 2):
        if execution.program_precedes(first_message, second_message):
            _add_edge(graph, first_message.step_id, second_message.step_id, ("structure",))
            continue
        first_buckets = steps_by_message[first_message.step_id]
        second_buckets = steps_by_message[second_message.step_id]
        for object_name, first_steps in first_buckets.items():
            second_steps = second_buckets.get(object_name)
            if not second_steps:
                continue
            for first_step in first_steps:
                for second_step in second_steps:
                    if not history.precedes(first_step, second_step):
                        continue
                    conflict = history.conflicts.steps_conflict(
                        first_step, second_step
                    ) or history.conflicts.steps_conflict(second_step, first_step)
                    if conflict:
                        _add_edge(
                            graph,
                            first_message.step_id,
                            second_message.step_id,
                            ("conflict", first_step.step_id, second_step.step_id),
                        )
    return graph


def _descendant_local_steps(history: History, message: MessageStep) -> list[LocalStep]:
    steps: list[LocalStep] = []
    child_id = history.child_of_message(message)
    if child_id is None:
        return steps
    for execution_id in history.descendants(child_id):
        steps.extend(history.execution(execution_id).local_steps())
    return steps


# ---------------------------------------------------------------------------
# Incremental SG construction
# ---------------------------------------------------------------------------


class IncrementalSG:
    """``SG(h)`` maintained online as local steps arrive in temporal order.

    The node set and the type (b) structure edges depend only on the
    execution forest and programme orders, so they are installed up front;
    type (a) conflict edges are discovered by classifying each new local
    step against the per-object steps already added — ``O(predecessors on
    the object)`` per step instead of re-enumerating every pair on every
    query.  Steps must be fed in an order consistent with ``<`` (any linear
    extension); :func:`incremental_serialisation_graph` does this from a
    recorded history.

    Cycle detection is incremental: before a *new* edge ``(u, v)`` is
    inserted, a DFS checks whether ``v`` already reaches ``u`` — every cycle
    contains a last-inserted edge, so the first such hit is recorded in
    :attr:`cycle_edge` and :attr:`is_acyclic` turns false.  networkx is used
    only as a cross-check under ``check=True``.
    """

    def __init__(self, history: History, *, check: bool = False):
        self._history = history
        self._check = check
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(history.execution_ids())
        self._steps_by_object: dict[str, list[LocalStep]] = {}
        self.cycle_edge: tuple[str, str] | None = None
        _add_type_b_edges(history, self._add_edge)

    @property
    def is_acyclic(self) -> bool:
        return self.cycle_edge is None

    def add_step(self, step: LocalStep) -> bool:
        """Classify and add one local step; returns ``is_acyclic`` after it.

        The step is compared against every step previously added on its
        object: pairs that are ordered by ``<`` and conflict induce edges
        between all incomparable ancestor pairs, exactly as in the
        from-scratch builder.
        """
        history = self._history
        earlier_steps = self._steps_by_object.setdefault(step.object_name, [])
        conflicts = history.conflicts
        for earlier in earlier_steps:
            # Insertion order should be a linear extension of <, in which
            # case only ``earlier < step`` can hold; the reverse direction is
            # still checked so that degenerate (cyclic-<) histories — where
            # no true linear extension exists — classify every ordered pair
            # exactly as the from-scratch builder does.  Concurrent
            # (unordered) steps induce no edges.
            if history.precedes(earlier, step) and conflicts.steps_conflict(earlier, step):
                self._add_conflict_edges(earlier, step)
            if history.precedes(step, earlier) and conflicts.steps_conflict(step, earlier):
                self._add_conflict_edges(step, earlier)
        earlier_steps.append(step)
        if self._check:
            materialised = nx.DiGraph(self.graph)
            if self.is_acyclic != nx.is_directed_acyclic_graph(materialised):
                raise VerificationError(
                    "IncrementalSG cycle verdict diverges from networkx on the "
                    f"materialised graph after step {step.step_id}"
                )
        return self.is_acyclic

    def _add_conflict_edges(self, first: LocalStep, second: LocalStep) -> None:
        history = self._history
        for source in history.ancestors(first.execution_id, include_self=True):
            for target in history.ancestors(second.execution_id, include_self=True):
                if source == target:
                    continue
                if history.are_incomparable(source, target):
                    self._add_edge(source, target, ("conflict", first.step_id, second.step_id))

    def _add_edge(self, source: str, target: str, reason: tuple) -> None:
        if self.graph.has_edge(source, target):
            self.graph[source][target]["reasons"].append(reason)
            return
        if self.cycle_edge is None and has_path(self.graph, target, source):
            self.cycle_edge = (source, target)
        self.graph.add_edge(source, target, reasons=[reason])


def local_steps_in_temporal_order(history: History) -> list[LocalStep]:
    """A linear extension of ``<`` over the history's local steps.

    Interval-backed histories sort by start instant (ties broken by step
    id); order-pair histories fall back to a Kahn sort over the ordered
    pairs.
    """
    steps = history.local_steps()
    intervals = history.intervals()
    if intervals is not None:
        return sorted(
            steps,
            key=lambda step: (intervals.get(step.step_id, (step.step_id,))[0], step.step_id),
        )
    by_id = {step.step_id: step for step in steps}
    indegree = {step_id: 0 for step_id in by_id}
    successors: dict[int, list[int]] = {step_id: [] for step_id in by_id}
    for first, second in history.ordered_step_pairs(steps):
        successors[first.step_id].append(second.step_id)
        indegree[second.step_id] += 1
    ready = sorted(step_id for step_id, degree in indegree.items() if degree == 0)
    ordered: list[LocalStep] = []
    while ready:
        current = ready.pop(0)
        ordered.append(by_id[current])
        for successor in successors[current]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)
        ready.sort()
    if len(ordered) != len(steps):
        # < is cyclic among the local steps; feed the remainder in id order
        # so the incremental builder still sees every step.
        emitted = {step.step_id for step in ordered}
        ordered.extend(step for step_id, step in sorted(by_id.items()) if step_id not in emitted)
    return ordered


def incremental_serialisation_graph(history: History, *, check: bool = False) -> IncrementalSG:
    """Feed a recorded history through :class:`IncrementalSG`.

    With ``check=True`` the resulting graph is cross-checked against the
    legacy from-scratch builder and the cycle verdict against networkx.
    """
    incremental = IncrementalSG(history, check=check)
    for step in local_steps_in_temporal_order(history):
        incremental.add_step(step)
    if check:
        _assert_graphs_match(
            incremental.graph, serialisation_graph_legacy(history), "IncrementalSG"
        )
    return incremental


def is_acyclic(graph: nx.DiGraph) -> bool:
    """True when the directed graph has no cycles."""
    return nx.is_directed_acyclic_graph(graph)


def find_cycle(graph: nx.DiGraph) -> list[tuple[str, str]] | None:
    """Return one cycle as a list of edges, or ``None`` if the graph is acyclic."""
    try:
        return [(source, target) for source, target in nx.find_cycle(graph)]
    except nx.NetworkXNoCycle:
        return None
