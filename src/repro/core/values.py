"""Helpers for the value domain of object variables.

Object states map variable names to values.  The formal model does not
restrict what a value may be; in practice we need values to be comparable
(for equality of states, Definition 7) and often hashable (so states can be
used as dictionary keys by the commutativity explorer).  :func:`freeze`
converts arbitrary nested containers into an immutable, hashable form, and
:func:`values_equal` compares values structurally.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence, Set
from typing import Any, Hashable


def freeze(value: Any) -> Hashable:
    """Return an immutable, hashable representation of ``value``.

    Lists and tuples become tuples, sets become frozensets, mappings become
    sorted tuples of ``(key, frozen_value)`` pairs.  Scalars are returned
    unchanged.  The transformation is structural, so two values that compare
    equal produce identical frozen forms.
    """
    if isinstance(value, Mapping):
        return tuple(sorted((k, freeze(v)) for k, v in value.items()))
    if isinstance(value, (set, frozenset)) or (
        isinstance(value, Set) and not isinstance(value, (str, bytes))
    ):
        return frozenset(freeze(v) for v in value)
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        return tuple(freeze(v) for v in value)
    return value


def values_equal(left: Any, right: Any) -> bool:
    """Structural equality between two variable values.

    Sequences of different concrete types (list vs. tuple) are considered
    equal when their elements are; this keeps replayed states comparable to
    hand-written expected states in tests.
    """
    return freeze(left) == freeze(right)
