"""Immutable object states and per-transaction undo segments.

A *state* of an object is "a mapping associating values to the variables of
an object" (Definition 1).  :class:`ObjectState` is an immutable mapping:
mutating operations return a new state, which makes it cheap for the
simulation engine and the history replayer to keep snapshots around and to
compare final states for history equivalence (Definition 7).

Immutability is also what makes :class:`UndoLog` cheap: recording the state
of an object *before* a step applies is just keeping a reference, so the
simulation engine can abort a transaction by rolling the affected objects
back to the snapshot taken before the transaction's first step on them and
re-applying only the surviving steps issued since — instead of replaying
the entire run from the initial states.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from typing import Any

from .values import freeze, values_equal


class ObjectState(Mapping[str, Any]):
    """An immutable mapping from variable names to values.

    Instances support the full read-only :class:`~collections.abc.Mapping`
    protocol plus functional update methods (:meth:`set`, :meth:`update`,
    :meth:`remove`) that return new states.
    """

    __slots__ = ("_variables", "_frozen")

    def __init__(self, variables: Mapping[str, Any] | None = None):
        self._variables: dict[str, Any] = dict(variables or {})
        self._frozen = None

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, variable: str) -> Any:
        return self._variables[variable]

    def __iter__(self) -> Iterator[str]:
        return iter(self._variables)

    def __len__(self) -> int:
        return len(self._variables)

    def __contains__(self, variable: object) -> bool:
        return variable in self._variables

    # -- functional updates -------------------------------------------------

    def set(self, variable: str, value: Any) -> "ObjectState":
        """Return a new state with ``variable`` bound to ``value``."""
        updated = dict(self._variables)
        updated[variable] = value
        return ObjectState(updated)

    def update(self, changes: Mapping[str, Any]) -> "ObjectState":
        """Return a new state with every binding in ``changes`` applied."""
        updated = dict(self._variables)
        updated.update(changes)
        return ObjectState(updated)

    def remove(self, variable: str) -> "ObjectState":
        """Return a new state without ``variable`` (missing names are ignored)."""
        updated = dict(self._variables)
        updated.pop(variable, None)
        return ObjectState(updated)

    def get(self, variable: str, default: Any = None) -> Any:
        return self._variables.get(variable, default)

    # -- comparison and hashing ----------------------------------------------

    def _frozen_form(self):
        if self._frozen is None:
            self._frozen = freeze(self._variables)
        return self._frozen

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectState):
            return self._frozen_form() == other._frozen_form()
        if isinstance(other, Mapping):
            return values_equal(self._variables, dict(other))
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self._frozen_form())

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}" for name, value in sorted(self._variables.items()))
        return f"ObjectState({inner})"

    def as_dict(self) -> dict[str, Any]:
        """Return a plain mutable copy of the variable bindings."""
        return dict(self._variables)


EMPTY_STATE = ObjectState()
"""A shared empty state, convenient as a default initial state."""


@dataclass(slots=True)
class AppliedStep:
    """One local step applied to an object, with the pre-application state.

    ``pre_state`` is a snapshot (a reference — states are immutable) of the
    object's state immediately before ``operation`` was applied, which is
    exactly what incremental undo needs to roll the object back to the
    point just before an aborted transaction first touched it.
    """

    execution_id: str
    top_level_id: str
    object_name: str
    operation: Any  # a LocalOperation; typed loosely to avoid an import cycle
    pre_state: ObjectState


class UndoLog:
    """Per-object applied-step segments supporting incremental undo.

    The log keeps, for every object, the ordered list of steps currently
    contributing to its state (steps of aborted attempts are removed as
    they abort), plus an index of which objects each top-level transaction
    has touched.  Aborting a transaction therefore costs time proportional
    to the log suffixes of the objects it touched — the steps applied since
    the transaction's first write there — not to the whole run.
    """

    def __init__(self) -> None:
        self._by_object: dict[str, list[AppliedStep]] = {}
        self._touched_by_transaction: dict[str, set[str]] = {}

    # -- recording -----------------------------------------------------------

    def record(
        self,
        object_name: str,
        execution_id: str,
        top_level_id: str,
        operation: Any,
        pre_state: ObjectState,
    ) -> None:
        """Append one applied step to the object's segment."""
        self._by_object.setdefault(object_name, []).append(
            AppliedStep(execution_id, top_level_id, object_name, operation, pre_state)
        )
        self._touched_by_transaction.setdefault(top_level_id, set()).add(object_name)

    # -- queries -------------------------------------------------------------

    def steps_on(self, object_name: str) -> list[AppliedStep]:
        return list(self._by_object.get(object_name, ()))

    def objects_touched(self, top_level_id: str) -> set[str]:
        return set(self._touched_by_transaction.get(top_level_id, ()))

    def total_steps(self) -> int:
        return sum(len(entries) for entries in self._by_object.values())

    # -- life cycle ----------------------------------------------------------

    def forget_transaction(self, top_level_id: str) -> None:
        """Drop the touched-object index of a finished (committed) transaction.

        Its entries stay in the per-object segments — they are part of the
        surviving prefix any later undo re-applies — but the transaction can
        no longer be the subject of an undo, so its index is released.
        """
        self._touched_by_transaction.pop(top_level_id, None)

    def collect(self) -> int:
        """Drop each object's committed prefix; returns the removed count.

        An undo suffix always starts at the aborting transaction's first
        entry on the object, and only transactions still in the
        touched-object index (the live ones) can abort — so the leading
        entries owned exclusively by forgotten (committed) transactions
        can never be read again, neither as a rollback snapshot (the
        suffix's own first ``pre_state`` covers them) nor as re-applied
        survivors.  Pruning them is what keeps undo segments O(in-flight)
        on long streaming runs; a live straggler pins at most the entries
        behind its own first step.
        """
        removed = 0
        for object_name in list(self._by_object):
            log = self._by_object[object_name]
            first_live = next(
                (
                    index
                    for index, entry in enumerate(log)
                    if entry.top_level_id in self._touched_by_transaction
                ),
                len(log),
            )
            if first_live:
                removed += first_live
                if first_live == len(log):
                    del self._by_object[object_name]
                else:
                    del log[:first_live]
        return removed

    def undo(
        self,
        top_level_id: str,
        subtree_ids: Iterable[str],
        states: dict[str, ObjectState],
    ) -> int:
        """Undo every step of ``subtree_ids``, repairing ``states`` in place.

        For each object the aborted transaction touched, the object is
        rolled back to the snapshot taken before the subtree's first step
        on it, and the surviving steps applied since are re-applied in
        order (refreshing their snapshots).  Returns the number of removed
        (wasted) steps.  Objects untouched by the subtree keep their states.
        """
        subtree = frozenset(subtree_ids)
        removed = 0
        for object_name in sorted(self._touched_by_transaction.pop(top_level_id, ())):
            log = self._by_object.get(object_name)
            if not log:
                continue
            first = next(
                (index for index, entry in enumerate(log) if entry.execution_id in subtree),
                None,
            )
            if first is None:
                continue
            suffix = log[first:]
            del log[first:]
            state = suffix[0].pre_state
            for entry in suffix:
                if entry.execution_id in subtree:
                    removed += 1
                    continue
                entry.pre_state = state
                _, state = entry.operation.apply(state)
                log.append(entry)
            states[object_name] = state
        return removed

    def prune(self, top_level_id: str, subtree_ids: Iterable[str]) -> int:
        """Remove the subtree's entries without recomputing states.

        Used by the legacy full-replay abort path, which recomputes every
        object state from scratch anyway; the remaining entries' snapshots
        are left stale, so a log that has been pruned must not be used for
        incremental undo afterwards.
        """
        subtree = frozenset(subtree_ids)
        removed = 0
        for object_name in self._touched_by_transaction.pop(top_level_id, ()):
            log = self._by_object.get(object_name)
            if not log:
                continue
            kept = [entry for entry in log if entry.execution_id not in subtree]
            removed += len(log) - len(kept)
            self._by_object[object_name] = kept
        return removed
