"""Immutable object states.

A *state* of an object is "a mapping associating values to the variables of
an object" (Definition 1).  :class:`ObjectState` is an immutable mapping:
mutating operations return a new state, which makes it cheap for the
simulation engine and the history replayer to keep snapshots around and to
compare final states for history equivalence (Definition 7).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any

from .values import freeze, values_equal


class ObjectState(Mapping[str, Any]):
    """An immutable mapping from variable names to values.

    Instances support the full read-only :class:`~collections.abc.Mapping`
    protocol plus functional update methods (:meth:`set`, :meth:`update`,
    :meth:`remove`) that return new states.
    """

    __slots__ = ("_variables", "_frozen")

    def __init__(self, variables: Mapping[str, Any] | None = None):
        self._variables: dict[str, Any] = dict(variables or {})
        self._frozen = None

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, variable: str) -> Any:
        return self._variables[variable]

    def __iter__(self) -> Iterator[str]:
        return iter(self._variables)

    def __len__(self) -> int:
        return len(self._variables)

    def __contains__(self, variable: object) -> bool:
        return variable in self._variables

    # -- functional updates -------------------------------------------------

    def set(self, variable: str, value: Any) -> "ObjectState":
        """Return a new state with ``variable`` bound to ``value``."""
        updated = dict(self._variables)
        updated[variable] = value
        return ObjectState(updated)

    def update(self, changes: Mapping[str, Any]) -> "ObjectState":
        """Return a new state with every binding in ``changes`` applied."""
        updated = dict(self._variables)
        updated.update(changes)
        return ObjectState(updated)

    def remove(self, variable: str) -> "ObjectState":
        """Return a new state without ``variable`` (missing names are ignored)."""
        updated = dict(self._variables)
        updated.pop(variable, None)
        return ObjectState(updated)

    def get(self, variable: str, default: Any = None) -> Any:
        return self._variables.get(variable, default)

    # -- comparison and hashing ----------------------------------------------

    def _frozen_form(self):
        if self._frozen is None:
            self._frozen = freeze(self._variables)
        return self._frozen

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObjectState):
            return self._frozen_form() == other._frozen_form()
        if isinstance(other, Mapping):
            return values_equal(self._variables, dict(other))
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self._frozen_form())

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}" for name, value in sorted(self._variables.items()))
        return f"ObjectState({inner})"

    def as_dict(self) -> dict[str, Any]:
        """Return a plain mutable copy of the variable bindings."""
        return dict(self._variables)


EMPTY_STATE = ObjectState()
"""A shared empty state, convenient as a default initial state."""
