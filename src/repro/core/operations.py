"""Local operations, local steps and message steps.

Definition 2 of the paper: a *local operation* ``a`` of an object is a pair
``(rho_a, sigma_a)`` where ``rho_a`` maps states to return values and
``sigma_a`` maps states to states.  A *local step* is a pair ``(a, v)``
pairing the operation with the value it actually returned; a *message step*
is the invocation of a method of some object together with the value that
invocation returned.

The classes below realise these notions.  :class:`LocalOperation` combines
``rho`` and ``sigma`` into a single :meth:`LocalOperation.apply` that maps a
state to ``(return value, new state)`` — this is equivalent to the paper's
pair of functions and far more convenient to implement.  Concrete operations
are provided for plain variables (read / write / increment) and an
:class:`AbortOperation` models the distinguished ``Abort`` operation used by
the paper's treatment of transaction failures.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable

from .errors import InvalidOperationError
from .state import ObjectState

ABORT_OPERATION_NAME = "Abort"
ABORTED = "aborted"


class LocalOperation:
    """An atomic operation on the variables of a single object.

    Subclasses implement :meth:`apply`, which plays the role of both
    ``rho_a`` (through the returned value) and ``sigma_a`` (through the
    returned state).  Operations should be deterministic functions of the
    state: the formal model has no other source of non-determinism.

    Attributes
    ----------
    name:
        The operation's type name (e.g. ``"Read"``, ``"Enqueue"``).  Conflict
        tables are keyed by this name.
    args:
        The operation's arguments, as a tuple.  Two operations with the same
        name but different arguments may conflict differently (e.g. writes to
        different variables commute).
    """

    name: str = "LocalOperation"

    def __init__(self, *args: Any):
        self.args: tuple[Any, ...] = args

    # -- semantics ----------------------------------------------------------

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        """Execute the operation on ``state``.

        Returns ``(value, new_state)`` where ``value`` is ``rho_a(state)``
        and ``new_state`` is ``sigma_a(state)``.
        """
        raise NotImplementedError

    def return_value(self, state: ObjectState) -> Any:
        """The paper's ``rho_a``: the value returned when applied to ``state``."""
        value, _ = self.apply(state)
        return value

    def transition(self, state: ObjectState) -> ObjectState:
        """The paper's ``sigma_a``: the state produced when applied to ``state``."""
        _, new_state = self.apply(state)
        return new_state

    # -- optional static classification --------------------------------------

    def read_set(self) -> frozenset[str] | None:
        """Variables this operation may read, or ``None`` if unknown."""
        return None

    def write_set(self) -> frozenset[str] | None:
        """Variables this operation may write, or ``None`` if unknown."""
        return None

    def is_read_only(self) -> bool:
        """True when the operation is known never to modify the state."""
        write_set = self.write_set()
        return write_set is not None and not write_set

    # -- identity -----------------------------------------------------------

    def signature(self) -> tuple:
        """A hashable identity used by conflict tables and lock managers."""
        return (self.name, self.args)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LocalOperation):
            return self.signature() == other.signature()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        rendered_args = ", ".join(repr(argument) for argument in self.args)
        return f"{self.name}({rendered_args})"


class FunctionalOperation(LocalOperation):
    """A local operation defined by a plain Python function.

    The supplied ``body`` receives the current :class:`ObjectState` followed
    by the operation arguments and must return ``(value, new_state)``.  This
    is the quickest way for abstract data types and tests to define bespoke
    operations without subclassing.
    """

    def __init__(
        self,
        name: str,
        body: Callable[..., tuple[Any, ObjectState]],
        *args: Any,
        reads: Iterable[str] | None = None,
        writes: Iterable[str] | None = None,
    ):
        super().__init__(*args)
        self.name = name
        self._body = body
        self._reads = frozenset(reads) if reads is not None else None
        self._writes = frozenset(writes) if writes is not None else None

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return self._body(state, *self.args)

    def read_set(self) -> frozenset[str] | None:
        return self._reads

    def write_set(self) -> frozenset[str] | None:
        return self._writes


class ReadVariable(LocalOperation):
    """Read a single variable and return its value."""

    name = "Read"

    def __init__(self, variable: str, default: Any = None):
        super().__init__(variable)
        self.variable = variable
        self.default = default

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return state.get(self.variable, self.default), state

    def read_set(self) -> frozenset[str]:
        return frozenset({self.variable})

    def write_set(self) -> frozenset[str]:
        return frozenset()


class WriteVariable(LocalOperation):
    """Write a value into a variable; returns the value written."""

    name = "Write"

    def __init__(self, variable: str, value: Any):
        super().__init__(variable, value)
        self.variable = variable
        self.value = value

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return self.value, state.set(self.variable, self.value)

    def read_set(self) -> frozenset[str]:
        return frozenset()

    def write_set(self) -> frozenset[str]:
        return frozenset({self.variable})


class IncrementVariable(LocalOperation):
    """Add ``amount`` to a numeric variable and return the new value.

    Increments of the same variable commute with one another (the final
    state does not depend on their order) but their *return values* do, so
    at the step level two increments conflict while at the state level they
    do not.  The operation is useful for exercising that distinction.
    """

    name = "Increment"

    def __init__(self, variable: str, amount: float = 1):
        super().__init__(variable, amount)
        self.variable = variable
        self.amount = amount

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        current = state.get(self.variable, 0)
        try:
            new_value = current + self.amount
        except TypeError as exc:
            raise InvalidOperationError(
                f"cannot increment non-numeric variable {self.variable!r}={current!r}"
            ) from exc
        return new_value, state.set(self.variable, new_value)

    def read_set(self) -> frozenset[str]:
        return frozenset({self.variable})

    def write_set(self) -> frozenset[str]:
        return frozenset({self.variable})


class AbortOperation(LocalOperation):
    """The distinguished ``Abort`` operation (Section 3, Transaction Failures).

    Aborting has no effect on the object's state; the fact that the issuing
    method execution aborted is reflected in the operation's return value,
    which the parent observes through the enclosing message step.
    """

    name = ABORT_OPERATION_NAME

    def __init__(self, reason: str = ""):
        super().__init__(reason)
        self.reason = reason

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return ABORTED, state

    def read_set(self) -> frozenset[str]:
        return frozenset()

    def write_set(self) -> frozenset[str]:
        return frozenset()


class Step:
    """Base class of history steps (Definition 2).

    Steps have library-assigned integer identities so that the partial
    orders of a history can be represented as relations over step ids.
    Identity (not structure) determines equality: the same operation issued
    twice yields two distinct steps.
    """

    _id_counter = itertools.count(1)

    __slots__ = ("step_id", "execution_id")

    def __init__(self, execution_id: str, step_id: int | None = None):
        self.step_id = step_id if step_id is not None else next(Step._id_counter)
        self.execution_id = execution_id

    def is_local(self) -> bool:
        return isinstance(self, LocalStep)

    def is_message(self) -> bool:
        return isinstance(self, MessageStep)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Step):
            return self.step_id == other.step_id
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.step_id)


class LocalStep(Step):
    """A local step ``(a, v)``: an operation together with its return value."""

    __slots__ = ("object_name", "operation", "return_value")

    def __init__(
        self,
        execution_id: str,
        object_name: str,
        operation: LocalOperation,
        return_value: Any,
        step_id: int | None = None,
    ):
        super().__init__(execution_id, step_id)
        self.object_name = object_name
        self.operation = operation
        self.return_value = return_value

    def is_abort(self) -> bool:
        """True when this step is an execution of the ``Abort`` operation."""
        return self.operation.name == ABORT_OPERATION_NAME

    def __repr__(self) -> str:
        return (
            f"LocalStep(id={self.step_id}, exec={self.execution_id!r}, "
            f"object={self.object_name!r}, op={self.operation!r}, "
            f"ret={self.return_value!r})"
        )


class MessageStep(Step):
    """A message step ``(m, v)``: a method invocation and its return value."""

    __slots__ = ("target_object", "target_method", "arguments", "return_value")

    def __init__(
        self,
        execution_id: str,
        target_object: str,
        target_method: str,
        arguments: tuple[Any, ...] = (),
        return_value: Any = None,
        step_id: int | None = None,
    ):
        super().__init__(execution_id, step_id)
        self.target_object = target_object
        self.target_method = target_method
        self.arguments = tuple(arguments)
        self.return_value = return_value

    def __repr__(self) -> str:
        return (
            f"MessageStep(id={self.step_id}, exec={self.execution_id!r}, "
            f"target={self.target_object!r}.{self.target_method}, "
            f"args={self.arguments!r}, ret={self.return_value!r})"
        )
