"""Method executions (nested transactions).

Definition 4: a *method execution* (equivalently, a *transaction*) of object
``o`` is a partial order ``(T, prec)`` where ``T`` is a set of local and
message steps — all local steps being steps of ``o`` — and ``prec`` orders
every pair of conflicting steps.  The partial order reflects the
algorithmic structure of the method's implementation (its "programme
order"), so any history containing the execution must respect it
(Definition 6, condition 2a).

Top-level method executions belong to the distinguished *environment*
object (Definition 1): they are the transactions users submit.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from .errors import ModelError
from .operations import LocalStep, MessageStep, Step

ENVIRONMENT_OBJECT = "environment"
"""Name of the fictitious object whose methods are the users' transactions."""


class MethodExecution:
    """One execution of a method of one object.

    Attributes
    ----------
    execution_id:
        Unique identifier of this execution within a history.
    object_name:
        The object whose method this is.  Local steps of the execution act
        on this object's variables.
    method_name:
        The name of the method being executed (informational).
    parent_id:
        Identifier of the parent execution, or ``None`` for top-level
        executions (methods of the environment).
    invoking_step_id:
        Identifier of the message step (in the parent execution) whose
        ``B`` image this execution is, or ``None`` for top-level executions.
    """

    __slots__ = (
        "execution_id",
        "object_name",
        "method_name",
        "parent_id",
        "invoking_step_id",
        "_steps",
        "_step_sequence",
        "_program_order",
        "_po_successors",
        "_po_reachable",
    )

    def __init__(
        self,
        execution_id: str,
        object_name: str,
        method_name: str,
        parent_id: str | None = None,
        invoking_step_id: int | None = None,
    ):
        self.execution_id = execution_id
        self.object_name = object_name
        self.method_name = method_name
        self.parent_id = parent_id
        self.invoking_step_id = invoking_step_id
        self._steps: dict[int, Step] = {}
        self._step_sequence: list[int] = []
        self._program_order: set[tuple[int, int]] = set()
        # Memoised programme-order reachability; invalidated on mutation.
        self._po_successors: dict[int, set[int]] | None = None
        self._po_reachable: dict[int, set[int]] = {}

    # -- construction --------------------------------------------------------

    def add_step(self, step: Step, after: Iterable[Step | int] | None = None) -> Step:
        """Add ``step`` to the execution.

        ``after`` lists the steps of this execution that must precede the
        new step in the programme order ``prec``.  Passing ``None`` (the
        default) means the step follows *every* step added so far — i.e.
        purely sequential method code.  Passing an explicit (possibly
        empty) iterable models internal parallelism: the step is ordered
        only after the steps named.
        """
        if step.execution_id != self.execution_id:
            raise ModelError(
                f"step {step.step_id} belongs to execution {step.execution_id!r}, "
                f"not {self.execution_id!r}"
            )
        if isinstance(step, LocalStep) and step.object_name != self.object_name:
            raise ModelError(
                f"local step {step.step_id} acts on object {step.object_name!r} but "
                f"execution {self.execution_id!r} belongs to object {self.object_name!r}"
            )
        if step.step_id in self._steps:
            raise ModelError(f"duplicate step id {step.step_id} in execution {self.execution_id!r}")

        if after is None:
            predecessor_ids = list(self._step_sequence)
        else:
            predecessor_ids = [item.step_id if isinstance(item, Step) else int(item) for item in after]
            unknown = [pid for pid in predecessor_ids if pid not in self._steps]
            if unknown:
                raise ModelError(
                    f"programme-order predecessors {unknown} are not steps of "
                    f"execution {self.execution_id!r}"
                )

        self._steps[step.step_id] = step
        self._step_sequence.append(step.step_id)
        for predecessor_id in predecessor_ids:
            self._program_order.add((predecessor_id, step.step_id))
        self._invalidate_program_order_caches()
        return step

    def order_steps(self, first: Step | int, second: Step | int) -> None:
        """Add an explicit programme-order constraint ``first prec second``."""
        first_id = first.step_id if isinstance(first, Step) else int(first)
        second_id = second.step_id if isinstance(second, Step) else int(second)
        for step_id in (first_id, second_id):
            if step_id not in self._steps:
                raise ModelError(
                    f"step {step_id} is not part of execution {self.execution_id!r}"
                )
        self._program_order.add((first_id, second_id))
        self._invalidate_program_order_caches()

    def _invalidate_program_order_caches(self) -> None:
        self._po_successors = None
        self._po_reachable.clear()

    # -- inspection -----------------------------------------------------------

    @property
    def is_top_level(self) -> bool:
        """True for executions with no parent (methods of the environment)."""
        return self.parent_id is None

    def steps(self) -> list[Step]:
        """All steps, in the order they were added."""
        return [self._steps[step_id] for step_id in self._step_sequence]

    def step(self, step_id: int) -> Step:
        return self._steps[step_id]

    def has_step(self, step_id: int) -> bool:
        return step_id in self._steps

    def step_ids(self) -> list[int]:
        return list(self._step_sequence)

    def step_ids_iter(self) -> Iterable[int]:
        """Step ids in insertion order, without copying the sequence."""
        return iter(self._step_sequence)

    def local_steps(self) -> list[LocalStep]:
        return [step for step in self.steps() if isinstance(step, LocalStep)]

    def message_steps(self) -> list[MessageStep]:
        return [step for step in self.steps() if isinstance(step, MessageStep)]

    def program_order_pairs(self) -> frozenset[tuple[int, int]]:
        """The generating pairs of the programme order ``prec`` (not closed)."""
        return frozenset(self._program_order)

    def program_precedes(self, first: Step | int, second: Step | int) -> bool:
        """True when ``first prec second`` holds in the transitive closure.

        Reachability is memoised per source step (and the successor
        adjacency built once), so repeated queries — the serialisation-graph
        builders ask about every message pair — cost ``O(1)`` after the
        first one.
        """
        first_id = first.step_id if isinstance(first, Step) else int(first)
        second_id = second.step_id if isinstance(second, Step) else int(second)
        if first_id == second_id:
            return False
        reachable = self._po_reachable.get(first_id)
        if reachable is None:
            if self._po_successors is None:
                successors: dict[int, set[int]] = {}
                for before, after in self._program_order:
                    successors.setdefault(before, set()).add(after)
                self._po_successors = successors
            reachable = set()
            frontier = list(self._po_successors.get(first_id, ()))
            while frontier:
                current = frontier.pop()
                if current in reachable:
                    continue
                reachable.add(current)
                frontier.extend(self._po_successors.get(current, ()))
            self._po_reachable[first_id] = reachable
        return second_id in reachable

    def is_aborted(self) -> bool:
        """True when the execution contains an ``Abort`` local step."""
        return any(step.is_abort() for step in self.local_steps())

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps())

    def __len__(self) -> int:
        return len(self._steps)

    def __repr__(self) -> str:
        flavour = "top-level" if self.is_top_level else f"child of {self.parent_id!r}"
        return (
            f"MethodExecution({self.execution_id!r}, {self.object_name!r}."
            f"{self.method_name}, {flavour}, {len(self._steps)} steps)"
        )


def execution_return_value(execution: MethodExecution) -> Any:
    """Best-effort return value of an execution: its last local step's value."""
    local_steps = execution.local_steps()
    if not local_steps:
        return None
    return local_steps[-1].return_value
