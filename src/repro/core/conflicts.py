"""Commutativity and conflict of local operations and steps.

Definition 3 of the paper: step ``t1`` *commutes with* ``t2`` iff for every
state on which ``t1, t2`` is legal, ``t2, t1`` is also legal and leaves the
object in the same final state; ``t1`` *conflicts with* ``t2`` otherwise.
Note that the relation is not necessarily symmetric.

Concurrency-control algorithms rarely decide conflicts from first principles
at run time; instead each object type declares a *conflict specification*.
The paper's Section 5 distinguishes two granularities:

* **operation-level** conflicts (conservative): whether two operations may
  ever produce conflicting steps, irrespective of return values.  This is
  what Moss' locking and the conservative variant of NTO use.
* **step-level** conflicts (return-value aware): whether two concrete steps
  — operations *with* their return values — conflict.  This is Weihl's
  observation that return values can be exploited to enhance concurrency
  (e.g. an ``Enqueue`` only conflicts with a ``Dequeue`` that returns the
  enqueued item).

:class:`ConflictSpec` captures both granularities.  The module also provides
state-exploration utilities that *derive* conflicts from operation semantics
by testing Definition 3 on a set of sample states; these power the
property-based tests and :class:`ExploredConflictSpec`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from .operations import LocalOperation, LocalStep
from .state import ObjectState


class ConflictSpec:
    """Declares which operations / steps of one object type conflict.

    Subclasses override :meth:`operations_conflict` and, when they can
    exploit return values, :meth:`steps_conflict`.  The default step-level
    rule simply falls back to the operation-level rule, which is always a
    sound (conservative) choice.
    """

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        """True when ``first`` may fail to commute with ``second``."""
        raise NotImplementedError

    def steps_conflict(self, first: LocalStep, second: LocalStep) -> bool:
        """True when the concrete step ``first`` conflicts with ``second``.

        The default implementation ignores return values and delegates to
        the operation-level relation.
        """
        return self.operations_conflict(first.operation, second.operation)

    def conflicting(self, first, second) -> bool:
        """Convenience dispatcher accepting either steps or operations."""
        if isinstance(first, LocalStep) and isinstance(second, LocalStep):
            return self.steps_conflict(first, second)
        return self.operations_conflict(first, second)


class ConservativeConflictSpec(ConflictSpec):
    """Every pair of operations on the object conflicts.

    This is the safest possible specification — it corresponds to executing
    the object's methods in mutual exclusion — and serves as the default for
    objects that do not declare anything better.
    """

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        return True


class ReadWriteConflictSpec(ConflictSpec):
    """Variable-granularity read/write conflicts.

    Two operations conflict iff they touch a common variable and at least
    one of them writes it.  Operations that do not declare their read/write
    sets (``read_set()``/``write_set()`` returning ``None``) are treated
    conservatively: they conflict with everything.

    This specification reduces the object-base model to the classical
    read/write model when every local operation is a read or a write of a
    single variable, which is exactly the setting of Moss' original
    algorithm (footnote 7 of the paper).
    """

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        first_reads, first_writes = first.read_set(), first.write_set()
        second_reads, second_writes = second.read_set(), second.write_set()
        if None in (first_reads, first_writes, second_reads, second_writes):
            return True
        return bool(
            (first_writes & (second_reads | second_writes))
            | (second_writes & (first_reads | first_writes))
        )


class ConflictTable(ConflictSpec):
    """An explicit operation-level conflict table keyed by operation names.

    Parameters
    ----------
    conflicting_pairs:
        Iterable of ``(name, name)`` pairs.  The pair ``(a, b)`` declares
        that operation ``a`` conflicts with operation ``b``.
    symmetric:
        When true (the default) each declared pair is mirrored, giving a
        symmetric conflict relation; commutativity in the paper is allowed
        to be asymmetric, so asymmetric tables are supported by passing
        ``symmetric=False``.
    default:
        The verdict for pairs of operation names not mentioned in the table.
    """

    def __init__(
        self,
        conflicting_pairs: Iterable[tuple[str, str]],
        *,
        symmetric: bool = True,
        default: bool = False,
    ):
        self._pairs: set[tuple[str, str]] = set()
        for first_name, second_name in conflicting_pairs:
            self._pairs.add((first_name, second_name))
            if symmetric:
                self._pairs.add((second_name, first_name))
        self._default = default
        self._known_names = {name for pair in self._pairs for name in pair}

    @classmethod
    def mutual_exclusion(cls, names: Iterable[str]) -> "ConflictTable":
        """A table in which every pair of the given operations conflicts."""
        names = list(names)
        return cls([(a, b) for a in names for b in names], symmetric=False)

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        pair = (first.name, second.name)
        if pair in self._pairs:
            return True
        if first.name in self._known_names and second.name in self._known_names:
            return False
        return self._default

    def declared_pairs(self) -> frozenset[tuple[str, str]]:
        """The set of (ordered) conflicting operation-name pairs."""
        return frozenset(self._pairs)


class PerObjectConflicts(Mapping[str, ConflictSpec]):
    """Registry mapping object names to their conflict specifications.

    Histories and schedulers consult this registry to evaluate conflicts
    between steps of a particular object.  Objects without an explicit entry
    fall back to ``default`` (conservative mutual exclusion unless told
    otherwise).
    """

    def __init__(
        self,
        specs: Mapping[str, ConflictSpec] | None = None,
        default: ConflictSpec | None = None,
    ):
        self._specs: dict[str, ConflictSpec] = dict(specs or {})
        self._default = default if default is not None else ConservativeConflictSpec()

    def __getitem__(self, object_name: str) -> ConflictSpec:
        return self._specs.get(object_name, self._default)

    def __iter__(self):
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def register(self, object_name: str, spec: ConflictSpec) -> None:
        """Associate ``spec`` with ``object_name`` (replacing any prior spec)."""
        self._specs[object_name] = spec

    def steps_conflict(self, first: LocalStep, second: LocalStep) -> bool:
        """Conflict between two local steps, which must be of the same object."""
        if first.object_name != second.object_name:
            return False
        return self[first.object_name].steps_conflict(first, second)

    def copy(self) -> "PerObjectConflicts":
        return PerObjectConflicts(dict(self._specs), self._default)


# ---------------------------------------------------------------------------
# Semantics-based commutativity checking (Definition 3, executable form)
# ---------------------------------------------------------------------------


def steps_commute_on_state(
    first: LocalStep, second: LocalStep, state: ObjectState
) -> bool:
    """Check Definition 3 for the two steps on one particular state.

    ``first, second`` being *legal* on ``state`` means the recorded return
    values match what the operations produce when replayed in that order.
    When the pair is not legal on ``state`` the definition is vacuously
    satisfied for that state.
    """
    value_one, mid_state = first.operation.apply(state)
    if value_one != first.return_value:
        return True
    value_two, end_state = second.operation.apply(mid_state)
    if value_two != second.return_value:
        return True
    # The pair is legal on this state: the transposed pair must also be
    # legal and reach the same final state.
    swapped_two, swapped_mid = second.operation.apply(state)
    if swapped_two != second.return_value:
        return False
    swapped_one, swapped_end = first.operation.apply(swapped_mid)
    if swapped_one != first.return_value:
        return False
    return swapped_end == end_state


def steps_commute_on_states(
    first: LocalStep, second: LocalStep, states: Iterable[ObjectState]
) -> bool:
    """True when the steps commute on every state in ``states``."""
    return all(steps_commute_on_state(first, second, state) for state in states)


def operations_commute_on_state(
    first: LocalOperation, second: LocalOperation, state: ObjectState
) -> bool:
    """Operation-level commutativity on a single state.

    The two operations commute on ``state`` when applying them in either
    order yields the same pair of return values and the same final state.
    """
    value_one, mid_state = first.apply(state)
    value_two, end_state = second.apply(mid_state)
    swapped_two, swapped_mid = second.apply(state)
    swapped_one, swapped_end = first.apply(swapped_mid)
    return (
        value_one == swapped_one
        and value_two == swapped_two
        and end_state == swapped_end
    )


def operations_commute_on_states(
    first: LocalOperation, second: LocalOperation, states: Iterable[ObjectState]
) -> bool:
    """True when the operations commute on every state in ``states``."""
    return all(operations_commute_on_state(first, second, state) for state in states)


class ExploredConflictSpec(ConflictSpec):
    """Derive conflicts by exploring operation semantics over sample states.

    Given a finite collection of representative states of the object, two
    operations are declared conflicting when they fail to commute on at
    least one sample state, and two steps are declared conflicting when they
    fail Definition 3 on at least one sample state.  With a sufficiently
    rich set of sample states this matches the paper's semantic notion of
    conflict exactly; with a sparse set it may under-approximate conflicts,
    so it is intended for testing and for small, finite-state objects.
    """

    def __init__(self, sample_states: Iterable[ObjectState]):
        self._states: list[ObjectState] = list(sample_states)
        self._operation_cache: dict[tuple[Any, Any], bool] = {}

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        key = (first.signature(), second.signature())
        if key not in self._operation_cache:
            self._operation_cache[key] = not operations_commute_on_states(
                first, second, self._states
            )
        return self._operation_cache[key]

    def steps_conflict(self, first: LocalStep, second: LocalStep) -> bool:
        return not steps_commute_on_states(first, second, self._states)

    @property
    def sample_states(self) -> list[ObjectState]:
        return list(self._states)
