"""The object base: objects, their methods, and the environment.

Definition 1: an object base is a set of objects; an object is a pair
``(V, M)`` of variables and methods; there is a distinguished object called
the *environment* whose methods are the users' transactions.

This module provides the runtime description of an object base that the
simulation engine executes:

* :class:`MethodDefinition` — a method is a programme.  Here it is a Python
  generator function that receives a *method context* plus its arguments
  and ``yield``-s requests (local operations, message sends, parallel
  message sends) to the engine, receiving each request's return value as
  the result of the ``yield`` expression.
* :class:`ObjectDefinition` — one object: name, initial state, methods,
  and conflict specifications at both granularities (operation-level and
  step-level), plus an optional preferred intra-object synchroniser used by
  the modular scheduler of Section 5.3.
* :class:`ObjectBase` — the collection of object definitions, with helpers
  to derive the per-object conflict registry and initial states that the
  core model and the schedulers need.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.conflicts import ConflictSpec, ConservativeConflictSpec, PerObjectConflicts
from ..core.errors import ModelError, UnknownMethodError, UnknownObjectError
from ..core.executions import ENVIRONMENT_OBJECT
from ..core.state import ObjectState

MethodBody = Callable[..., Any]
"""A generator function ``body(ctx, *args)`` implementing a method."""


@dataclass
class MethodDefinition:
    """A method of an object.

    Attributes
    ----------
    name:
        Method name, used as the target of message steps.
    body:
        Generator function implementing the method.  It is called as
        ``body(ctx, *args)`` where ``ctx`` is the engine-provided method
        context; it must ``yield`` request objects created through the
        context (``ctx.local``, ``ctx.invoke``, ``ctx.parallel``) and may
        ``return`` a value, which becomes the return value of the message
        step that invoked it.
    read_only:
        Declarative hint that the method never modifies any object; used by
        the coarse-grained single-active-object scheduler to grant shared
        access.
    """

    name: str
    body: MethodBody
    read_only: bool = False


@dataclass
class ObjectDefinition:
    """One object of the object base: variables, methods and conflict data."""

    name: str
    initial_state: ObjectState = field(default_factory=ObjectState)
    methods: dict[str, MethodDefinition] = field(default_factory=dict)
    operation_conflicts: ConflictSpec = field(default_factory=ConservativeConflictSpec)
    step_conflicts: ConflictSpec | None = None
    intra_object_synchroniser: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.initial_state, ObjectState):
            self.initial_state = ObjectState(self.initial_state)

    def conflicts(self, level: str = "operation") -> ConflictSpec:
        """The conflict specification at the requested granularity."""
        if level == "operation":
            return self.operation_conflicts
        if level == "step":
            return self.step_conflicts if self.step_conflicts is not None else self.operation_conflicts
        raise ModelError(f"unknown conflict granularity {level!r}")

    def add_method(self, definition: MethodDefinition) -> None:
        if definition.name in self.methods:
            raise ModelError(
                f"object {self.name!r} already defines method {definition.name!r}"
            )
        self.methods[definition.name] = definition

    def method(self, method_name: str) -> MethodDefinition:
        try:
            return self.methods[method_name]
        except KeyError as exc:
            raise UnknownMethodError(
                f"object {self.name!r} has no method {method_name!r}"
            ) from exc


class ObjectBase:
    """A collection of object definitions plus the distinguished environment.

    The environment object always exists; its methods are registered through
    :meth:`register_transaction` (or by workloads) and constitute the
    top-level transactions users may submit.
    """

    def __init__(self) -> None:
        self._objects: dict[str, ObjectDefinition] = {}
        self._objects[ENVIRONMENT_OBJECT] = ObjectDefinition(
            ENVIRONMENT_OBJECT,
            ObjectState(),
            {},
            ConservativeConflictSpec(),
        )

    # -- registration ---------------------------------------------------------

    def register(self, definition: ObjectDefinition) -> ObjectDefinition:
        """Add an object definition to the base (names must be unique)."""
        if definition.name in self._objects and definition.name != ENVIRONMENT_OBJECT:
            raise ModelError(f"object {definition.name!r} already registered")
        self._objects[definition.name] = definition
        return definition

    def register_transaction(self, definition: MethodDefinition) -> MethodDefinition:
        """Register a top-level transaction type (a method of the environment)."""
        self.environment.methods[definition.name] = definition
        return definition

    # -- lookups ---------------------------------------------------------------

    @property
    def environment(self) -> ObjectDefinition:
        return self._objects[ENVIRONMENT_OBJECT]

    def definition(self, object_name: str) -> ObjectDefinition:
        try:
            return self._objects[object_name]
        except KeyError as exc:
            raise UnknownObjectError(f"unknown object {object_name!r}") from exc

    def method(self, object_name: str, method_name: str) -> MethodDefinition:
        return self.definition(object_name).method(method_name)

    def object_names(self, include_environment: bool = False) -> list[str]:
        names = [name for name in self._objects if name != ENVIRONMENT_OBJECT]
        if include_environment:
            names.append(ENVIRONMENT_OBJECT)
        return sorted(names)

    def __contains__(self, object_name: str) -> bool:
        return object_name in self._objects

    def __len__(self) -> int:
        return len(self._objects) - 1  # the environment is not counted

    # -- derived structures -----------------------------------------------------

    def initial_states(self) -> dict[str, ObjectState]:
        """Initial state of every object (including the environment)."""
        return {name: definition.initial_state for name, definition in self._objects.items()}

    def conflicts(self, level: str = "operation") -> PerObjectConflicts:
        """Per-object conflict registry at the requested granularity."""
        registry = PerObjectConflicts()
        for name, definition in self._objects.items():
            registry.register(name, definition.conflicts(level))
        return registry

    def describe(self) -> dict[str, dict[str, Any]]:
        """A plain-data summary of the base (used by examples and reports)."""
        summary: dict[str, dict[str, Any]] = {}
        for name, definition in self._objects.items():
            if name == ENVIRONMENT_OBJECT:
                continue
            summary[name] = {
                "variables": sorted(definition.initial_state),
                "methods": sorted(definition.methods),
                "intra_object_synchroniser": definition.intra_object_synchroniser,
            }
        return summary


def single_operation_method(
    name: str,
    operation_factory: Callable[..., Any],
    read_only: bool = False,
) -> MethodDefinition:
    """Build a method whose body issues exactly one local operation.

    Abstract data types expose most of their functionality this way: the
    method ``enqueue(item)`` of a queue object simply performs the local
    operation ``Enqueue(item)`` on the object's own variables and returns
    its value.
    """

    def body(ctx, *args):
        result = yield ctx.local(operation_factory(*args))
        return result

    return MethodDefinition(name=name, body=body, read_only=read_only)


def build_object_base(definitions: Mapping[str, ObjectDefinition] | list[ObjectDefinition]) -> ObjectBase:
    """Convenience constructor from a list or mapping of object definitions."""
    base = ObjectBase()
    iterable = definitions.values() if isinstance(definitions, Mapping) else definitions
    for definition in iterable:
        base.register(definition)
    return base
