"""Set abstract data type.

A mathematical set of members with element-granularity conflicts:
operations on distinct elements always commute, and at the step level a
redundant insertion (the element was already present) or redundant removal
(it was absent) commutes with observers of the same element.
"""

from __future__ import annotations

from typing import Any, Hashable

from ...core.conflicts import ConflictSpec
from ...core.operations import LocalOperation, LocalStep
from ...core.state import ObjectState
from ..base import ObjectDefinition, single_operation_method

MEMBERS_VARIABLE = "members"


def _members(state: ObjectState) -> frozenset:
    return frozenset(state.get(MEMBERS_VARIABLE, frozenset()))


class AddMember(LocalOperation):
    """Add ``element``; returns ``True`` when the set changed."""

    name = "AddMember"

    def __init__(self, element: Hashable):
        super().__init__(element)
        self.element = element

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        members = _members(state)
        if self.element in members:
            return False, state
        return True, state.set(MEMBERS_VARIABLE, members | {self.element})


class RemoveMember(LocalOperation):
    """Remove ``element``; returns ``True`` when the set changed."""

    name = "RemoveMember"

    def __init__(self, element: Hashable):
        super().__init__(element)
        self.element = element

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        members = _members(state)
        if self.element not in members:
            return False, state
        return True, state.set(MEMBERS_VARIABLE, members - {self.element})


class Contains(LocalOperation):
    """Return ``True`` when ``element`` is a member."""

    name = "Contains"

    def __init__(self, element: Hashable):
        super().__init__(element)
        self.element = element

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return self.element in _members(state), state


class SetSize(LocalOperation):
    """Return the cardinality of the set."""

    name = "SetSize"

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return len(_members(state)), state


_ELEMENT_OPS = {"AddMember", "RemoveMember", "Contains"}
_MUTATORS = {"AddMember", "RemoveMember"}


class SetConflicts(ConflictSpec):
    """Element-granularity conflicts."""

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        if first.name == "SetSize" or second.name == "SetSize":
            other = second if first.name == "SetSize" else first
            return other.name in _MUTATORS
        if first.name in _ELEMENT_OPS and second.name in _ELEMENT_OPS:
            if first.element != second.element:
                return False
            if first.name == "Contains" and second.name == "Contains":
                return False
            return True
        return True


class SetStepConflicts(SetConflicts):
    """Step-level refinement: redundant mutations commute.

    An ``AddMember`` that returned ``False`` (already present) or a
    ``RemoveMember`` that returned ``False`` (already absent) left the state
    unchanged and therefore commutes with a ``Contains`` of the same element
    and with the size observer.
    """

    def steps_conflict(self, first: LocalStep, second: LocalStep) -> bool:
        first_redundant = first.operation.name in _MUTATORS and first.return_value is False
        second_redundant = second.operation.name in _MUTATORS and second.return_value is False
        observers = {"Contains", "SetSize"}
        if first_redundant and second.operation.name in observers:
            return False
        if second_redundant and first.operation.name in observers:
            return False
        if first_redundant and second_redundant:
            if first.operation.name == second.operation.name:
                return False
        return self.operations_conflict(first.operation, second.operation)


def set_definition(name: str, initial_members: frozenset | set = frozenset()) -> ObjectDefinition:
    """Create a set object with add/remove/contains/size methods."""
    definition = ObjectDefinition(
        name=name,
        initial_state=ObjectState({MEMBERS_VARIABLE: frozenset(initial_members)}),
        operation_conflicts=SetConflicts(),
        step_conflicts=SetStepConflicts(),
    )
    definition.add_method(single_operation_method("add", AddMember))
    definition.add_method(single_operation_method("remove", RemoveMember))
    definition.add_method(single_operation_method("contains", Contains, read_only=True))
    definition.add_method(single_operation_method("size", lambda: SetSize(), read_only=True))
    return definition
