"""Append-only log abstract data type.

A log of entries supporting ``Append`` (returns the index assigned to the
entry), positional reads and a length observer.  Because appends return the
assigned index, two appends conflict; reads of already-written positions
commute with appends, which the step-level specification exploits.
"""

from __future__ import annotations

from typing import Any

from ...core.conflicts import ConflictSpec
from ...core.operations import LocalOperation, LocalStep
from ...core.state import ObjectState
from ..base import ObjectDefinition, single_operation_method

ENTRIES_VARIABLE = "entries"
OUT_OF_RANGE = None


class Append(LocalOperation):
    """Append ``entry`` to the log; returns the index it was stored at."""

    name = "Append"

    def __init__(self, entry: Any):
        super().__init__(entry)
        self.entry = entry

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        entries = tuple(state.get(ENTRIES_VARIABLE, ()))
        return len(entries), state.set(ENTRIES_VARIABLE, entries + (self.entry,))


class ReadAt(LocalOperation):
    """Return the entry at ``index`` (``OUT_OF_RANGE`` when not yet written)."""

    name = "ReadAt"

    def __init__(self, index: int):
        super().__init__(index)
        self.index = index

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        entries = tuple(state.get(ENTRIES_VARIABLE, ()))
        if 0 <= self.index < len(entries):
            return entries[self.index], state
        return OUT_OF_RANGE, state


class LogLength(LocalOperation):
    """Return the number of entries appended so far."""

    name = "LogLength"

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return len(state.get(ENTRIES_VARIABLE, ())), state


class AppendLogConflicts(ConflictSpec):
    """Operation-level conflicts for the log."""

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        names = {first.name, second.name}
        if names == {"ReadAt"} or names == {"LogLength"} or names == {"ReadAt", "LogLength"}:
            return False
        return True


class AppendLogStepConflicts(AppendLogConflicts):
    """Step-level refinement.

    A ``ReadAt`` that successfully read position ``i`` commutes with an
    ``Append`` that was assigned a different (later) index — the appended
    entry cannot affect an already-written position.  Reads of unwritten
    positions conflict with appends (the append may fill the position).
    """

    def steps_conflict(self, first: LocalStep, second: LocalStep) -> bool:
        names = (first.operation.name, second.operation.name)
        if set(names) == {"Append", "ReadAt"}:
            append, read = (first, second) if names[0] == "Append" else (second, first)
            if read.return_value is OUT_OF_RANGE:
                return True
            return read.operation.index == append.return_value
        return self.operations_conflict(first.operation, second.operation)


def append_log_definition(name: str, initial_entries: tuple = ()) -> ObjectDefinition:
    """Create an append-only log object with append/read/length methods."""
    definition = ObjectDefinition(
        name=name,
        initial_state=ObjectState({ENTRIES_VARIABLE: tuple(initial_entries)}),
        operation_conflicts=AppendLogConflicts(),
        step_conflicts=AppendLogStepConflicts(),
    )
    definition.add_method(single_operation_method("append", Append))
    definition.add_method(single_operation_method("read", ReadAt, read_only=True))
    definition.add_method(single_operation_method("length", lambda: LogLength(), read_only=True))
    return definition
