"""Key-value store abstract data type.

A dictionary object (the paper's "dictionary data type" with Lookup,
Insert and Delete) whose conflict specification works at *key*
granularity: operations on distinct keys always commute.  The plainer
sibling of the :mod:`~repro.objectbase.adts.btree` index, which implements
the same interface on top of a real B-tree representation.
"""

from __future__ import annotations

from typing import Any, Hashable

from ...core.conflicts import ConflictSpec
from ...core.operations import LocalOperation, LocalStep
from ...core.state import ObjectState
from ..base import ObjectDefinition, single_operation_method

ENTRIES_VARIABLE = "entries"
MISSING = None
"""Return value of a lookup or delete applied to an absent key."""


def _entries(state: ObjectState) -> dict:
    return dict(state.get(ENTRIES_VARIABLE, {}))


class Lookup(LocalOperation):
    """Return the value bound to ``key`` (``MISSING`` when absent)."""

    name = "Lookup"

    def __init__(self, key: Hashable):
        super().__init__(key)
        self.key = key

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return _entries(state).get(self.key, MISSING), state


class Insert(LocalOperation):
    """Bind ``key`` to ``value``; returns the previous value (or ``MISSING``)."""

    name = "Insert"

    def __init__(self, key: Hashable, value: Any):
        super().__init__(key, value)
        self.key = key
        self.value = value

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        entries = _entries(state)
        previous = entries.get(self.key, MISSING)
        entries[self.key] = self.value
        return previous, state.set(ENTRIES_VARIABLE, entries)


class Delete(LocalOperation):
    """Remove ``key``; returns the removed value (or ``MISSING``)."""

    name = "Delete"

    def __init__(self, key: Hashable):
        super().__init__(key)
        self.key = key

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        entries = _entries(state)
        previous = entries.pop(self.key, MISSING)
        return previous, state.set(ENTRIES_VARIABLE, entries)


class CountEntries(LocalOperation):
    """Return the number of keys currently bound."""

    name = "CountEntries"

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return len(_entries(state)), state


_MUTATORS = {"Insert", "Delete"}
_KEYED = {"Lookup", "Insert", "Delete"}


class KVStoreConflicts(ConflictSpec):
    """Key-granularity conflicts: only same-key operations may conflict."""

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        if first.name == "CountEntries" or second.name == "CountEntries":
            # The size observer conflicts with any mutator.
            other = second if first.name == "CountEntries" else first
            return other.name in _MUTATORS
        if first.name in _KEYED and second.name in _KEYED:
            if getattr(first, "key", None) != getattr(second, "key", None):
                return False
            if first.name == "Lookup" and second.name == "Lookup":
                return False
            return True
        return True


class KVStoreStepConflicts(KVStoreConflicts):
    """Step-level refinement: redundant mutations commute with observers.

    A ``Delete`` that returned ``MISSING`` (the key was absent) did not
    change the state, so it commutes with a ``Lookup`` of the same key that
    also returned ``MISSING`` and with another ``Delete`` that returned
    ``MISSING``.
    """

    def steps_conflict(self, first: LocalStep, second: LocalStep) -> bool:
        names = (first.operation.name, second.operation.name)
        if set(names) <= {"Lookup", "Delete"} and "Delete" in names:
            if getattr(first.operation, "key", None) != getattr(second.operation, "key", None):
                return False
            if first.return_value is MISSING and second.return_value is MISSING:
                return False
        return self.operations_conflict(first.operation, second.operation)


def kv_store_definition(name: str, initial_entries: dict | None = None) -> ObjectDefinition:
    """Create a key-value store object with lookup/insert/delete/size methods."""
    definition = ObjectDefinition(
        name=name,
        initial_state=ObjectState({ENTRIES_VARIABLE: dict(initial_entries or {})}),
        operation_conflicts=KVStoreConflicts(),
        step_conflicts=KVStoreStepConflicts(),
    )
    definition.add_method(single_operation_method("lookup", Lookup, read_only=True))
    definition.add_method(single_operation_method("insert", Insert))
    definition.add_method(single_operation_method("delete", Delete))
    definition.add_method(single_operation_method("size", lambda: CountEntries(), read_only=True))
    return definition
