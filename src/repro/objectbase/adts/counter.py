"""Counter abstract data type.

A counter supports blind additions (``Add``) that return nothing and a
``GetCount`` observer.  Because additions carry no return value they
commute with one another — a textbook example of an operation pair that a
read/write model would declare conflicting (both "write" the counter) but
the object-base model does not, which is precisely the extra concurrency
the paper's richer conflict notion buys.
"""

from __future__ import annotations

from typing import Any

from ...core.conflicts import ConflictSpec
from ...core.operations import LocalOperation
from ...core.state import ObjectState
from ..base import ObjectDefinition, single_operation_method

COUNT_VARIABLE = "count"


class AddToCounter(LocalOperation):
    """Add ``amount`` (possibly negative) to the counter; returns ``None``."""

    name = "AddToCounter"

    def __init__(self, amount: float = 1):
        super().__init__(amount)
        self.amount = amount

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        new_value = state.get(COUNT_VARIABLE, 0) + self.amount
        return None, state.set(COUNT_VARIABLE, new_value)

    def read_set(self) -> frozenset[str]:
        return frozenset({COUNT_VARIABLE})

    def write_set(self) -> frozenset[str]:
        return frozenset({COUNT_VARIABLE})


class GetCount(LocalOperation):
    """Return the counter's current value."""

    name = "GetCount"

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return state.get(COUNT_VARIABLE, 0), state

    def read_set(self) -> frozenset[str]:
        return frozenset({COUNT_VARIABLE})

    def write_set(self) -> frozenset[str]:
        return frozenset()


class CounterConflicts(ConflictSpec):
    """Additions commute with additions; observers conflict with additions."""

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        if first.name == "AddToCounter" and second.name == "AddToCounter":
            return False
        if first.name == "GetCount" and second.name == "GetCount":
            return False
        return True


def counter_definition(name: str, initial_count: float = 0) -> ObjectDefinition:
    """Create a counter object with ``add``, ``subtract`` and ``get`` methods."""
    definition = ObjectDefinition(
        name=name,
        initial_state=ObjectState({COUNT_VARIABLE: initial_count}),
        operation_conflicts=CounterConflicts(),
        step_conflicts=CounterConflicts(),
    )
    definition.add_method(single_operation_method("add", AddToCounter))
    definition.add_method(
        single_operation_method("subtract", lambda amount=1: AddToCounter(-amount))
    )
    definition.add_method(single_operation_method("get", GetCount, read_only=True))
    return definition
