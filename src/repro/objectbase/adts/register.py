"""Register abstract data type: a single read/write cell.

The register is the object-base rendering of a classical database data
item: its local operations are ``Read`` and ``Write`` of the single
variable ``value``.  With every object a register, the model collapses to
the classical read/write model of Eswaran et al., which is the baseline
the paper generalises from.
"""

from __future__ import annotations

from typing import Any

from ...core.conflicts import ConflictSpec
from ...core.operations import LocalOperation, LocalStep
from ...core.state import ObjectState
from ..base import ObjectDefinition, single_operation_method

VALUE_VARIABLE = "value"


class ReadRegister(LocalOperation):
    """Return the register's current value; leaves the state unchanged."""

    name = "ReadRegister"

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return state.get(VALUE_VARIABLE), state

    def read_set(self) -> frozenset[str]:
        return frozenset({VALUE_VARIABLE})

    def write_set(self) -> frozenset[str]:
        return frozenset()


class WriteRegister(LocalOperation):
    """Overwrite the register's value; returns the value written."""

    name = "WriteRegister"

    def __init__(self, value: Any):
        super().__init__(value)
        self.value = value

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return self.value, state.set(VALUE_VARIABLE, self.value)

    def read_set(self) -> frozenset[str]:
        return frozenset()

    def write_set(self) -> frozenset[str]:
        return frozenset({VALUE_VARIABLE})


class RegisterConflicts(ConflictSpec):
    """Classical read/write conflict matrix for a single cell."""

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        names = {first.name, second.name}
        if names == {"ReadRegister"}:
            return False
        return "WriteRegister" in names


class RegisterStepConflicts(RegisterConflicts):
    """Step-level refinement: writes of an identical value still conflict.

    For a plain register the return values add nothing exploitable (the
    paper's step-level gains come from richer types such as queues), so the
    step relation equals the operation relation.  The class exists so that
    experiments sweeping "operation vs step granularity" treat every object
    uniformly.
    """

    def steps_conflict(self, first: LocalStep, second: LocalStep) -> bool:
        return self.operations_conflict(first.operation, second.operation)


def register_definition(name: str, initial_value: Any = 0) -> ObjectDefinition:
    """Create a register object definition with ``read``/``write`` methods."""
    definition = ObjectDefinition(
        name=name,
        initial_state=ObjectState({VALUE_VARIABLE: initial_value}),
        operation_conflicts=RegisterConflicts(),
        step_conflicts=RegisterStepConflicts(),
    )
    definition.add_method(single_operation_method("read", ReadRegister, read_only=True))
    definition.add_method(single_operation_method("write", WriteRegister))
    return definition
