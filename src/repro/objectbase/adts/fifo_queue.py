"""FIFO queue abstract data type.

The queue is the paper's running example for return-value-aware conflicts
(Section 5.1): "in many reasonable representations of queues, an Enqueue
conflicts with a Dequeue only if the latter returns the item placed into
the queue by the former".  The step-level specification below implements
exactly that rule; the operation-level specification has to assume every
``Enqueue``/``Dequeue`` pair conflicts.
"""

from __future__ import annotations

from typing import Any

from ...core.conflicts import ConflictSpec
from ...core.operations import LocalOperation, LocalStep
from ...core.state import ObjectState
from ..base import ObjectDefinition, single_operation_method

ITEMS_VARIABLE = "items"
EMPTY = None
"""Return value of a ``Dequeue`` applied to an empty queue."""


class Enqueue(LocalOperation):
    """Append ``item`` at the tail of the queue; returns ``None``."""

    name = "Enqueue"

    def __init__(self, item: Any):
        super().__init__(item)
        self.item = item

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        items = tuple(state.get(ITEMS_VARIABLE, ()))
        return None, state.set(ITEMS_VARIABLE, items + (self.item,))

    def read_set(self) -> frozenset[str]:
        return frozenset({ITEMS_VARIABLE})

    def write_set(self) -> frozenset[str]:
        return frozenset({ITEMS_VARIABLE})


class Dequeue(LocalOperation):
    """Remove and return the head of the queue; returns ``EMPTY`` when empty."""

    name = "Dequeue"

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        items = tuple(state.get(ITEMS_VARIABLE, ()))
        if not items:
            return EMPTY, state
        return items[0], state.set(ITEMS_VARIABLE, items[1:])

    def read_set(self) -> frozenset[str]:
        return frozenset({ITEMS_VARIABLE})

    def write_set(self) -> frozenset[str]:
        return frozenset({ITEMS_VARIABLE})


class QueueLength(LocalOperation):
    """Return the number of queued items."""

    name = "QueueLength"

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return len(state.get(ITEMS_VARIABLE, ())), state

    def read_set(self) -> frozenset[str]:
        return frozenset({ITEMS_VARIABLE})

    def write_set(self) -> frozenset[str]:
        return frozenset()


class FifoQueueConflicts(ConflictSpec):
    """Operation-level conflicts: any two state-changing operations conflict."""

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        if first.name == "QueueLength" and second.name == "QueueLength":
            return False
        return True


class FifoQueueStepConflicts(FifoQueueConflicts):
    """Step-level conflicts exploiting ``Dequeue`` return values.

    ``steps_conflict(first, second)`` follows the paper's (asymmetric)
    convention: ``first`` is the step executed first, and the pair conflicts
    when transposing them would change a return value or the final state.

    * ``Enqueue`` before ``Dequeue``: conflict only when the dequeue removed
      the very item the enqueue appended (which can only happen when the
      queue was otherwise empty).
    * ``Dequeue`` before ``Enqueue``: conflict only when the dequeue found
      the queue empty (enqueueing first would have given it an item).
    * ``Dequeue``/``Dequeue``: conflict unless both found the queue empty.
    * ``Enqueue``/``Enqueue``: always conflict (their order decides the
      order of the items in the queue).
    * ``QueueLength`` commutes with a ``Dequeue`` that returned ``EMPTY``
      and conflicts with everything else that changes the length.
    """

    def steps_conflict(self, first: LocalStep, second: LocalStep) -> bool:
        names = (first.operation.name, second.operation.name)
        if names == ("QueueLength", "QueueLength"):
            return False
        if names == ("Enqueue", "Dequeue"):
            return second.return_value == first.operation.item
        if names == ("Dequeue", "Enqueue"):
            return first.return_value is EMPTY
        if names == ("Dequeue", "Dequeue"):
            return not (first.return_value is EMPTY and second.return_value is EMPTY)
        if set(names) == {"QueueLength", "Dequeue"}:
            dequeue = first if names[0] == "Dequeue" else second
            return dequeue.return_value is not EMPTY
        return self.operations_conflict(first.operation, second.operation)


def fifo_queue_definition(name: str, initial_items: tuple = ()) -> ObjectDefinition:
    """Create a FIFO queue object with enqueue/dequeue/length methods."""
    definition = ObjectDefinition(
        name=name,
        initial_state=ObjectState({ITEMS_VARIABLE: tuple(initial_items)}),
        operation_conflicts=FifoQueueConflicts(),
        step_conflicts=FifoQueueStepConflicts(),
    )
    definition.add_method(single_operation_method("enqueue", Enqueue))
    definition.add_method(single_operation_method("dequeue", lambda: Dequeue()))
    definition.add_method(single_operation_method("length", lambda: QueueLength(), read_only=True))
    return definition
