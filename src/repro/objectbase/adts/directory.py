"""Directory (hierarchical name space) abstract data type.

A simple file-system-like directory tree stored as a mapping from path
tuples to entry kinds.  Conflicts are path-granular: operations on
unrelated paths commute, while creating, removing or listing entries that
share a prefix relationship may conflict.
"""

from __future__ import annotations

from typing import Any

from ...core.conflicts import ConflictSpec
from ...core.operations import LocalOperation
from ...core.state import ObjectState
from ..base import ObjectDefinition, single_operation_method

TREE_VARIABLE = "tree"
ROOT: tuple[str, ...] = ()


def _normalise(path) -> tuple[str, ...]:
    if isinstance(path, str):
        parts = [part for part in path.split("/") if part]
        return tuple(parts)
    return tuple(path)


def _tree(state: ObjectState) -> dict[tuple[str, ...], str]:
    return dict(state.get(TREE_VARIABLE, {ROOT: "dir"}))


class MakeDirectory(LocalOperation):
    """Create a directory at ``path``; returns ``True`` when created."""

    name = "MakeDirectory"

    def __init__(self, path):
        normalised = _normalise(path)
        super().__init__(normalised)
        self.path = normalised

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        tree = _tree(state)
        parent = self.path[:-1]
        if self.path in tree or tree.get(parent) != "dir":
            return False, state
        tree[self.path] = "dir"
        return True, state.set(TREE_VARIABLE, tree)


class CreateFile(LocalOperation):
    """Create a file at ``path``; returns ``True`` when created."""

    name = "CreateFile"

    def __init__(self, path):
        normalised = _normalise(path)
        super().__init__(normalised)
        self.path = normalised

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        tree = _tree(state)
        parent = self.path[:-1]
        if self.path in tree or tree.get(parent) != "dir":
            return False, state
        tree[self.path] = "file"
        return True, state.set(TREE_VARIABLE, tree)


class RemoveEntry(LocalOperation):
    """Remove the entry at ``path`` (and any children); returns ``True`` on change."""

    name = "RemoveEntry"

    def __init__(self, path):
        normalised = _normalise(path)
        super().__init__(normalised)
        self.path = normalised

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        tree = _tree(state)
        if self.path not in tree or self.path == ROOT:
            return False, state
        removed = {
            existing
            for existing in tree
            if existing[: len(self.path)] == self.path
        }
        for existing in removed:
            tree.pop(existing)
        return True, state.set(TREE_VARIABLE, tree)


class ListDirectory(LocalOperation):
    """Return the sorted names of the direct children of ``path``."""

    name = "ListDirectory"

    def __init__(self, path=ROOT):
        normalised = _normalise(path)
        super().__init__(normalised)
        self.path = normalised

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        tree = _tree(state)
        depth = len(self.path)
        children = sorted(
            entry[depth]
            for entry in tree
            if len(entry) == depth + 1 and entry[:depth] == self.path
        )
        return tuple(children), state


class PathExists(LocalOperation):
    """Return ``True`` when an entry exists at ``path``."""

    name = "PathExists"

    def __init__(self, path):
        normalised = _normalise(path)
        super().__init__(normalised)
        self.path = normalised

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return self.path in _tree(state), state


_MUTATORS = {"MakeDirectory", "CreateFile", "RemoveEntry"}
_OBSERVERS = {"ListDirectory", "PathExists"}


def _related(first_path: tuple, second_path: tuple) -> bool:
    """True when one path is a prefix of (or equal to) the other."""
    shorter, longer = sorted((first_path, second_path), key=len)
    return longer[: len(shorter)] == shorter


class DirectoryConflicts(ConflictSpec):
    """Path-granularity conflicts for the directory tree."""

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        first_path = getattr(first, "path", None)
        second_path = getattr(second, "path", None)
        if first_path is None or second_path is None:
            return True
        if first.name in _OBSERVERS and second.name in _OBSERVERS:
            return False
        if first.name in _MUTATORS and second.name in _MUTATORS:
            # Mutations of unrelated paths commute; related paths conflict.
            return _related(first_path, second_path) or first_path[:-1] == second_path[:-1]
        # Observer vs mutator: a listing of the parent directory or of the
        # mutated path itself is affected.
        observer, mutator = (
            (first, second) if first.name in _OBSERVERS else (second, first)
        )
        if observer.name == "ListDirectory":
            return mutator.path[:-1] == observer.path or _related(observer.path, mutator.path)
        return _related(observer.path, mutator.path)


def directory_definition(name: str) -> ObjectDefinition:
    """Create a directory object with mkdir/create/remove/list/exists methods."""
    definition = ObjectDefinition(
        name=name,
        initial_state=ObjectState({TREE_VARIABLE: {ROOT: "dir"}}),
        operation_conflicts=DirectoryConflicts(),
        step_conflicts=DirectoryConflicts(),
    )
    definition.add_method(single_operation_method("mkdir", MakeDirectory))
    definition.add_method(single_operation_method("create", CreateFile))
    definition.add_method(single_operation_method("remove", RemoveEntry))
    definition.add_method(single_operation_method("list", ListDirectory, read_only=True))
    definition.add_method(single_operation_method("exists", PathExists, read_only=True))
    return definition
