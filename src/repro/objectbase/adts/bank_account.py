"""Bank account abstract data type.

The account exposes ``Deposit`` (blind, returns ``None``), ``Withdraw``
(conditional on sufficient funds, returns a success flag) and
``GetBalance``.  The type is the workhorse of the banking workloads and is
a good illustration of the paper's step-level (return-value aware) conflict
refinement:

* two deposits always commute;
* a *successful* withdrawal followed by a deposit commutes (depositing
  afterwards cannot invalidate the success), and so does a deposit followed
  by a *failed* withdrawal (if it failed even with the extra money it would
  have failed without it);
* the opposite orders conflict: a deposit followed by a successful
  withdrawal may owe its success to the deposit, and a failed withdrawal
  followed by a deposit might have succeeded had the deposit come first;
* two successful (or two failed) withdrawals commute; mixed outcomes only
  commute when the failure came first.

Note the asymmetry — Definition 3's commutativity relation is directional,
and the step-level table below follows the convention that
``steps_conflict(first, second)`` refers to ``first`` having executed
before ``second``.  The operation-level specification must assume the worst
case and therefore declares ``Deposit``/``Withdraw`` and
``Withdraw``/``Withdraw`` conflicting outright.
"""

from __future__ import annotations

from typing import Any

from ...core.conflicts import ConflictSpec
from ...core.operations import LocalOperation, LocalStep
from ...core.state import ObjectState
from ..base import ObjectDefinition, single_operation_method

BALANCE_VARIABLE = "balance"


class Deposit(LocalOperation):
    """Add ``amount`` to the balance; returns ``None``."""

    name = "Deposit"

    def __init__(self, amount: float):
        super().__init__(amount)
        self.amount = amount

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        balance = state.get(BALANCE_VARIABLE, 0)
        return None, state.set(BALANCE_VARIABLE, balance + self.amount)

    def read_set(self) -> frozenset[str]:
        return frozenset({BALANCE_VARIABLE})

    def write_set(self) -> frozenset[str]:
        return frozenset({BALANCE_VARIABLE})


class Withdraw(LocalOperation):
    """Remove ``amount`` if the balance allows it; returns ``True``/``False``."""

    name = "Withdraw"

    def __init__(self, amount: float):
        super().__init__(amount)
        self.amount = amount

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        balance = state.get(BALANCE_VARIABLE, 0)
        if balance >= self.amount:
            return True, state.set(BALANCE_VARIABLE, balance - self.amount)
        return False, state

    def read_set(self) -> frozenset[str]:
        return frozenset({BALANCE_VARIABLE})

    def write_set(self) -> frozenset[str]:
        return frozenset({BALANCE_VARIABLE})


class GetBalance(LocalOperation):
    """Return the current balance."""

    name = "GetBalance"

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return state.get(BALANCE_VARIABLE, 0), state

    def read_set(self) -> frozenset[str]:
        return frozenset({BALANCE_VARIABLE})

    def write_set(self) -> frozenset[str]:
        return frozenset()


class BankAccountConflicts(ConflictSpec):
    """Operation-level (conservative) conflicts for the account."""

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        pair = (first.name, second.name)
        if pair == ("Deposit", "Deposit"):
            return False
        if pair == ("GetBalance", "GetBalance"):
            return False
        return True


class BankAccountStepConflicts(BankAccountConflicts):
    """Step-level refinement exploiting ``Withdraw`` return values.

    ``steps_conflict(first, second)`` assumes ``first`` executed before
    ``second`` and answers whether transposing them could change a return
    value or the final balance (Definition 3).
    """

    def steps_conflict(self, first: LocalStep, second: LocalStep) -> bool:
        names = (first.operation.name, second.operation.name)
        outcomes = (first.return_value, second.return_value)
        if names == ("Deposit", "Deposit") or names == ("GetBalance", "GetBalance"):
            return False
        if names == ("Withdraw", "Deposit"):
            # A successful withdrawal is unaffected by a later deposit; a
            # failed one might have succeeded had the deposit come first.
            return outcomes[0] is not True
        if names == ("Deposit", "Withdraw"):
            # A withdrawal that failed despite the deposit would also fail
            # without it; a successful one may owe its success to the money.
            return outcomes[1] is not False
        if names == ("Withdraw", "Withdraw"):
            # Equal outcomes commute; success-then-failure does not (the
            # failure might have succeeded had it gone first).
            return outcomes[0] is True and outcomes[1] is False
        if names == ("GetBalance", "Withdraw") or names == ("Withdraw", "GetBalance"):
            # A failed withdrawal leaves the balance unchanged, so the read
            # is unaffected; a successful one conflicts with the read.
            withdraw_outcome = outcomes[names.index("Withdraw")]
            return withdraw_outcome is not False
        return self.operations_conflict(first.operation, second.operation)


def bank_account_definition(name: str, initial_balance: float = 0) -> ObjectDefinition:
    """Create a bank-account object with deposit/withdraw/balance methods."""
    definition = ObjectDefinition(
        name=name,
        initial_state=ObjectState({BALANCE_VARIABLE: initial_balance}),
        operation_conflicts=BankAccountConflicts(),
        step_conflicts=BankAccountStepConflicts(),
    )
    definition.add_method(single_operation_method("deposit", Deposit))
    definition.add_method(single_operation_method("withdraw", Withdraw))
    definition.add_method(single_operation_method("balance", GetBalance, read_only=True))
    return definition
