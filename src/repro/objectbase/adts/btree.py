"""B-tree index abstract data type.

Section 2 of the paper motivates per-object synchronisation with "an object
representing a dictionary data type (with methods Lookup, Insert, and
Delete) might be implemented as a B-tree", for which a specialised
concurrency-control algorithm can be chosen.  This module provides that
object: a real B-tree (minimum-degree ``t``) implemented functionally over
immutable node tuples so it can live inside an :class:`ObjectState`, with
key-granularity and range-aware conflict specifications.

The pure-functional B-tree algorithms (search, insert with node splitting,
delete with borrowing and merging, range scan, invariant validation) are
exposed as module-level functions so they can be tested independently of the
object-base machinery.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable

from ...core.conflicts import ConflictSpec
from ...core.errors import InvalidOperationError
from ...core.operations import LocalOperation, LocalStep
from ...core.state import ObjectState
from ..base import ObjectDefinition, single_operation_method

ROOT_VARIABLE = "root"
DEGREE_VARIABLE = "degree"
NOT_FOUND = None

LEAF = "leaf"
INTERNAL = "internal"

# A node is ("leaf", keys, values) or ("internal", keys, children); keys,
# values and children are tuples, children has len(keys) + 1 entries.

Node = tuple


def empty_tree() -> Node:
    """A B-tree with no keys."""
    return (LEAF, (), ())


def is_leaf(node: Node) -> bool:
    return node[0] == LEAF


def node_keys(node: Node) -> tuple:
    return node[1]


def tree_search(node: Node, key) -> Any:
    """Return the value bound to ``key`` or ``NOT_FOUND``."""
    while True:
        kind, keys, payload = node
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            if kind == LEAF:
                return payload[index]
            # Internal nodes store separator keys only; continue right of it.
            node = payload[index + 1]
            continue
        if kind == LEAF:
            return NOT_FOUND
        node = payload[index]


def tree_insert(node: Node, key, value, degree: int) -> Node:
    """Insert (or overwrite) ``key`` and return the new root."""
    root = _insert_into(node, key, value, degree)
    if len(node_keys(root)) > 2 * degree - 1:
        return _split_root(root, degree)
    return root


def _split_root(root: Node, degree: int) -> Node:
    left, separator, right = _split_node(root, degree)
    return (INTERNAL, (separator,), (left, right))


def _split_node(node: Node, degree: int) -> tuple[Node, Any, Node]:
    kind, keys, payload = node
    middle = len(keys) // 2
    separator = keys[middle]
    if kind == LEAF:
        left = (LEAF, keys[:middle], payload[:middle])
        right = (LEAF, keys[middle:], payload[middle:])
        # Leaves keep the separator key in the right sibling (B+-tree style),
        # so the separator guides the search without holding a value twice.
        return left, separator, right
    left = (INTERNAL, keys[:middle], payload[: middle + 1])
    right = (INTERNAL, keys[middle + 1 :], payload[middle + 1 :])
    return left, separator, right


def _insert_into(node: Node, key, value, degree: int) -> Node:
    kind, keys, payload = node
    index = bisect.bisect_left(keys, key)
    if kind == LEAF:
        if index < len(keys) and keys[index] == key:
            values = payload[:index] + (value,) + payload[index + 1 :]
            return (LEAF, keys, values)
        new_keys = keys[:index] + (key,) + keys[index:]
        new_values = payload[:index] + (value,) + payload[index:]
        return (LEAF, new_keys, new_values)
    if index < len(keys) and keys[index] == key:
        index += 1
    child = _insert_into(payload[index], key, value, degree)
    children = payload[:index] + (child,) + payload[index + 1 :]
    if len(node_keys(child)) > 2 * degree - 1:
        left, separator, right = _split_node(child, degree)
        new_keys = keys[:index] + (separator,) + keys[index:]
        children = payload[:index] + (left, right) + payload[index + 1 :]
        return (INTERNAL, new_keys, children)
    return (INTERNAL, keys, children)


def tree_delete(node: Node, key, degree: int) -> tuple[Node, bool]:
    """Delete ``key``; returns ``(new_root, removed)``."""
    root, removed = _delete_from(node, key, degree)
    if not is_leaf(root) and len(node_keys(root)) == 0:
        root = root[2][0]
    return root, removed


def _delete_from(node: Node, key, degree: int) -> tuple[Node, bool]:
    kind, keys, payload = node
    index = bisect.bisect_left(keys, key)
    if kind == LEAF:
        if index < len(keys) and keys[index] == key:
            return (LEAF, keys[:index] + keys[index + 1 :], payload[:index] + payload[index + 1 :]), True
        return node, False
    child_index = index + 1 if index < len(keys) and keys[index] == key else index
    child, removed = _delete_from(payload[child_index], key, degree)
    children = payload[:child_index] + (child,) + payload[child_index + 1 :]
    rebalanced = _rebalance((INTERNAL, keys, children), child_index, degree)
    return rebalanced, removed


def _rebalance(node: Node, child_index: int, degree: int) -> Node:
    """Fix up a child that may have become too small after a deletion."""
    _, keys, children = node
    child = children[child_index]
    if len(node_keys(child)) >= degree - 1 or len(children) == 1:
        return (INTERNAL, keys, children)

    # Try borrowing from the left sibling.
    if child_index > 0 and len(node_keys(children[child_index - 1])) > degree - 1:
        left = children[child_index - 1]
        new_left, new_child, separator = _borrow_from_left(left, child, keys[child_index - 1])
        new_keys = keys[: child_index - 1] + (separator,) + keys[child_index:]
        new_children = (
            children[: child_index - 1] + (new_left, new_child) + children[child_index + 1 :]
        )
        return (INTERNAL, new_keys, new_children)

    # Try borrowing from the right sibling.
    if child_index < len(children) - 1 and len(node_keys(children[child_index + 1])) > degree - 1:
        right = children[child_index + 1]
        new_child, new_right, separator = _borrow_from_right(child, right, keys[child_index])
        new_keys = keys[:child_index] + (separator,) + keys[child_index + 1 :]
        new_children = (
            children[:child_index] + (new_child, new_right) + children[child_index + 2 :]
        )
        return (INTERNAL, new_keys, new_children)

    # Merge with a sibling.
    if child_index > 0:
        merged = _merge(children[child_index - 1], child, keys[child_index - 1])
        new_keys = keys[: child_index - 1] + keys[child_index:]
        new_children = children[: child_index - 1] + (merged,) + children[child_index + 1 :]
    else:
        merged = _merge(child, children[child_index + 1], keys[child_index])
        new_keys = keys[:child_index] + keys[child_index + 1 :]
        new_children = children[:child_index] + (merged,) + children[child_index + 2 :]
    return (INTERNAL, new_keys, new_children)


def _borrow_from_left(left: Node, child: Node, separator) -> tuple[Node, Node, Any]:
    kind, left_keys, left_payload = left
    if kind == LEAF:
        moved_key, moved_value = left_keys[-1], left_payload[-1]
        new_left = (LEAF, left_keys[:-1], left_payload[:-1])
        new_child = (LEAF, (moved_key,) + child[1], (moved_value,) + child[2])
        return new_left, new_child, moved_key
    moved_key = left_keys[-1]
    moved_child = left_payload[-1]
    new_left = (INTERNAL, left_keys[:-1], left_payload[:-1])
    new_child = (INTERNAL, (separator,) + child[1], (moved_child,) + child[2])
    return new_left, new_child, moved_key


def _borrow_from_right(child: Node, right: Node, separator) -> tuple[Node, Node, Any]:
    kind, right_keys, right_payload = right
    if kind == LEAF:
        moved_key, moved_value = right_keys[0], right_payload[0]
        new_right = (LEAF, right_keys[1:], right_payload[1:])
        new_child = (LEAF, child[1] + (moved_key,), child[2] + (moved_value,))
        return new_child, new_right, right_keys[1] if len(right_keys) > 1 else moved_key
    moved_child = right_payload[0]
    new_right = (INTERNAL, right_keys[1:], right_payload[1:])
    new_child = (INTERNAL, child[1] + (separator,), child[2] + (moved_child,))
    return new_child, new_right, right_keys[0]


def _merge(left: Node, right: Node, separator) -> Node:
    kind = left[0]
    if kind == LEAF:
        return (LEAF, left[1] + right[1], left[2] + right[2])
    return (INTERNAL, left[1] + (separator,) + right[1], left[2] + right[2])


def tree_items(node: Node) -> Iterable[tuple[Any, Any]]:
    """Yield ``(key, value)`` pairs in ascending key order."""
    kind, keys, payload = node
    if kind == LEAF:
        yield from zip(keys, payload)
        return
    for index, child in enumerate(payload):
        yield from tree_items(child)
        if index < len(keys):
            pass  # separator keys carry no values


def tree_range(node: Node, low, high) -> list[tuple[Any, Any]]:
    """All ``(key, value)`` pairs with ``low <= key <= high``."""
    return [(key, value) for key, value in tree_items(node) if low <= key <= high]


def tree_height(node: Node) -> int:
    height = 1
    while not is_leaf(node):
        node = node[2][0]
        height += 1
    return height


def tree_size(node: Node) -> int:
    return sum(1 for _ in tree_items(node))


def validate_tree(node: Node, degree: int) -> None:
    """Raise :class:`InvalidOperationError` when B-tree invariants fail."""
    leaf_depths: set[int] = set()

    def check(current: Node, lower, upper, depth: int, is_root: bool) -> None:
        kind, keys, payload = current
        if list(keys) != sorted(keys):
            raise InvalidOperationError("keys are not sorted within a node")
        if not is_root and len(keys) < degree - 1 and kind == INTERNAL:
            raise InvalidOperationError("internal node underflow")
        if len(keys) > 2 * degree - 1:
            raise InvalidOperationError("node overflow")
        for key in keys:
            if lower is not None and key < lower:
                raise InvalidOperationError("key below permitted range")
            if upper is not None and key > upper:
                raise InvalidOperationError("key above permitted range")
        if kind == LEAF:
            leaf_depths.add(depth)
            return
        if len(payload) != len(keys) + 1:
            raise InvalidOperationError("child count must be key count + 1")
        bounds = (lower,) + keys + (upper,)
        for index, child in enumerate(payload):
            check(child, bounds[index], bounds[index + 1], depth + 1, False)

    check(node, None, None, 0, True)
    if len(leaf_depths) > 1:
        raise InvalidOperationError("leaves are not all at the same depth")


# ---------------------------------------------------------------------------
# Local operations
# ---------------------------------------------------------------------------


def _root(state: ObjectState) -> Node:
    return state.get(ROOT_VARIABLE, empty_tree())


def _degree(state: ObjectState) -> int:
    return state.get(DEGREE_VARIABLE, 2)


class SearchKey(LocalOperation):
    """Return the value bound to ``key`` (``NOT_FOUND`` when absent)."""

    name = "SearchKey"

    def __init__(self, key):
        super().__init__(key)
        self.key = key

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return tree_search(_root(state), self.key), state


class InsertKey(LocalOperation):
    """Insert or overwrite ``key``; returns the previous value (or ``NOT_FOUND``)."""

    name = "InsertKey"

    def __init__(self, key, value: Any = True):
        super().__init__(key, value)
        self.key = key
        self.value = value

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        root = _root(state)
        previous = tree_search(root, self.key)
        new_root = tree_insert(root, self.key, self.value, _degree(state))
        return previous, state.set(ROOT_VARIABLE, new_root)


class DeleteKey(LocalOperation):
    """Delete ``key``; returns ``True`` when a binding was removed."""

    name = "DeleteKey"

    def __init__(self, key):
        super().__init__(key)
        self.key = key

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        root = _root(state)
        new_root, removed = tree_delete(root, self.key, _degree(state))
        if not removed:
            return False, state
        return True, state.set(ROOT_VARIABLE, new_root)


class RangeScan(LocalOperation):
    """Return all ``(key, value)`` pairs with keys in ``[low, high]``."""

    name = "RangeScan"

    def __init__(self, low, high):
        super().__init__(low, high)
        self.low = low
        self.high = high

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return tuple(tree_range(_root(state), self.low, self.high)), state


class IndexSize(LocalOperation):
    """Return the number of keys in the index."""

    name = "IndexSize"

    def apply(self, state: ObjectState) -> tuple[Any, ObjectState]:
        return tree_size(_root(state)), state


_KEYED = {"SearchKey", "InsertKey", "DeleteKey"}
_MUTATORS = {"InsertKey", "DeleteKey"}


class BTreeConflicts(ConflictSpec):
    """Conflict specification for the *physical* B-tree index.

    Observers (``SearchKey``, ``RangeScan``, ``IndexSize``) read logical
    content only, so they conflict with a mutation exactly when that
    mutation could change what they observe: a search conflicts with a
    mutator of the same key, a range scan with a mutator whose key falls
    inside the scanned interval, the size observer with any mutator.

    Mutators (``InsertKey``, ``DeleteKey``) always conflict with one
    another, even on distinct keys: the object's state is the physical node
    structure, and node splits and merges make the final tree shape depend
    on the order of structural changes.  (A dictionary object that exposes
    only the logical mapping — :mod:`repro.objectbase.adts.kv_store` — can
    soundly declare distinct-key mutations commuting; recovering that
    freedom for a physical B-tree requires the state/operation abstraction
    the paper's Section 3 deliberately leaves out of its model.)
    """

    def operations_conflict(self, first: LocalOperation, second: LocalOperation) -> bool:
        if first.name in _MUTATORS and second.name in _MUTATORS:
            return True
        if first.name in _KEYED and second.name in _KEYED:
            if first.key != second.key:
                return False
            return first.name in _MUTATORS or second.name in _MUTATORS
        if {first.name, second.name} == {"RangeScan"}:
            return False
        if "RangeScan" in (first.name, second.name):
            scan, other = (first, second) if first.name == "RangeScan" else (second, first)
            if other.name in _MUTATORS:
                return scan.low <= other.key <= scan.high
            return False
        if "IndexSize" in (first.name, second.name):
            other = second if first.name == "IndexSize" else first
            return other.name in _MUTATORS
        return True


class BTreeStepConflicts(BTreeConflicts):
    """Step-level refinement: redundant deletions commute.

    A ``DeleteKey`` that returned ``False`` removed nothing and left the
    physical structure untouched, so it commutes with every operation whose
    own behaviour does not depend on that key — only an ``InsertKey`` or
    ``DeleteKey`` of the *same* key is (conservatively) kept conflicting.
    """

    def steps_conflict(self, first: LocalStep, second: LocalStep) -> bool:
        for redundant, other in ((first, second), (second, first)):
            if redundant.operation.name == "DeleteKey" and redundant.return_value is False:
                other_operation = other.operation
                if other_operation.name in _MUTATORS and getattr(
                    other_operation, "key", None
                ) == redundant.operation.key:
                    return True
                return False
        return self.operations_conflict(first.operation, second.operation)


def btree_definition(name: str, degree: int = 2, initial_items: dict | None = None) -> ObjectDefinition:
    """Create a B-tree index object with search/insert/delete/range methods."""
    if degree < 2:
        raise InvalidOperationError("B-tree minimum degree must be at least 2")
    root = empty_tree()
    for key, value in sorted((initial_items or {}).items()):
        root = tree_insert(root, key, value, degree)
    definition = ObjectDefinition(
        name=name,
        initial_state=ObjectState({ROOT_VARIABLE: root, DEGREE_VARIABLE: degree}),
        operation_conflicts=BTreeConflicts(),
        step_conflicts=BTreeStepConflicts(),
        intra_object_synchroniser="btree-key-locking",
    )
    definition.add_method(single_operation_method("search", SearchKey, read_only=True))
    definition.add_method(single_operation_method("insert", InsertKey))
    definition.add_method(single_operation_method("delete", DeleteKey))
    definition.add_method(single_operation_method("range", RangeScan, read_only=True))
    definition.add_method(single_operation_method("size", lambda: IndexSize(), read_only=True))
    return definition
