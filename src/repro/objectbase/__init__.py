"""Object-base runtime: object definitions, methods and ready-made ADTs."""

from .base import (
    MethodDefinition,
    ObjectBase,
    ObjectDefinition,
    build_object_base,
    single_operation_method,
)

__all__ = [
    "MethodDefinition",
    "ObjectBase",
    "ObjectDefinition",
    "build_object_base",
    "single_operation_method",
]
