"""The stable entry point: one call from scenario description to result.

:func:`run` is the supported way to execute a single scenario
programmatically.  It accepts the same declarative shapes the sweep layer
uses — so anything a :class:`~repro.sweep.spec.ScenarioSpec` can express
(workload and scheduler registry names, engine options, fault plans,
sharding) is reachable without importing from deep module paths — and
returns the engine's :class:`~repro.simulation.metrics.RunResult` (or a
:class:`~repro.shard.engine.ShardedRunResult` when the spec asks for
shards).

For grids of scenarios use :class:`~repro.sweep.spec.SweepSpec` with
:func:`~repro.sweep.runner.run_sweep`; for one-off exploration this
facade is the shortest path::

    import repro

    result = repro.run("hotspot", scheduler="n2pl-step", seed=3)
    result = repro.run(
        "zipf-stream",
        scheduler="adaptive",
        workload_params={
            "inner_params": {"transactions": 200, "skew": 1.2},
            "arrival": "flash-crowd",
        },
        engine_params={"fault_plan": {"name": "crash", "period": 5000}},
    )
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

#: Scheduler used when the scenario shape does not name one.
DEFAULT_SCHEDULER = "modular"


def run(spec_or_scenario: Any = "hotspot", **overrides: Any):
    """Run one scenario described by a spec, a mapping, or a workload name.

    Accepted shapes, mirroring the component-spec contract of
    :func:`repro.core.registry.resolve_component`:

    * a workload registry name — ``repro.run("hotspot", seed=3)``;
      ``overrides`` are :class:`~repro.sweep.spec.ScenarioSpec` fields;
    * a mapping of ScenarioSpec fields —
      ``repro.run({"workload": "banking", "scheduler": "nto-step"})``;
      ``overrides`` take precedence over the mapping's entries;
    * a ready :class:`~repro.sweep.spec.ScenarioSpec` — run as is, or
      re-built with ``overrides`` replacing the named fields.

    The scheduler defaults to :data:`DEFAULT_SCHEDULER` when the shape
    does not name one.  Validation is the spec's own eager validation:
    unknown workloads, schedulers, parameters or engine options fail
    before anything runs.

    Returns:
        :class:`~repro.simulation.metrics.RunResult` for plain scenarios;
        :class:`~repro.shard.engine.ShardedRunResult` when the spec sets
        ``shards > 1``.

    Raises:
        TypeError: on an unsupported ``spec_or_scenario`` type.
        SweepSpecError: on invalid scenario fields.
    """
    # Imported lazily so ``import repro`` stays light and cycle-free.
    from .sweep.runner import build_engine, run_sharded_scenario
    from .sweep.spec import ScenarioSpec

    if isinstance(spec_or_scenario, ScenarioSpec):
        spec = (
            dataclasses.replace(spec_or_scenario, **overrides)
            if overrides
            else spec_or_scenario
        )
    elif isinstance(spec_or_scenario, str):
        fields = {"workload": spec_or_scenario, "scheduler": DEFAULT_SCHEDULER}
        fields.update(overrides)
        spec = ScenarioSpec(**fields)
    elif isinstance(spec_or_scenario, Mapping):
        fields = {"scheduler": DEFAULT_SCHEDULER}
        fields.update(spec_or_scenario)
        fields.update(overrides)
        spec = ScenarioSpec(**fields)
    else:
        raise TypeError(
            "scenario must be a workload name, a mapping of ScenarioSpec "
            f"fields or a ScenarioSpec instance, got {spec_or_scenario!r}"
        )
    if spec.shards > 1:
        return run_sharded_scenario(spec)
    return build_engine(spec).run()
