"""Profile the simulation hot loop: where do scheduling decisions spend time?

The raw-speed work on the engine (ROADMAP item 3, locked in by
``benchmarks/bench_e16_hot_loop.py``) is profile-driven: optimisations are
picked from a ranked cProfile report of a standard scenario, not guessed.
This module is that workflow, packaged:

* :func:`profile_scenario` runs the E15 hotspot configuration for one
  scheduler under :mod:`cProfile` and returns a :class:`ProfileReport`
  with the top functions ranked by cumulative time, plus the run's
  decision throughput (so before/after comparisons come for free).
* ``python -m repro.analysis.profile`` prints that report per scheduler —
  the quickstart documented in the README.  ``--sort tottime`` ranks by
  self-time instead; ``--scan`` profiles the legacy ``hot_loop="scan"``
  strategy for comparison.

The report rows are plain dictionaries so tests (and future tooling) can
assert on them; the text rendering is one formatting call away.  For a
flame graph, feed the saved ``.pstats`` file (``--dump PATH``) to any
pstats-compatible visualiser — see DESIGN.md's hot-loop section.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..scheduler import make_scheduler
from ..simulation import SimulationEngine
from ..simulation.workloads import make_workload

#: The standard profiling scenario: the E15 hotspot configuration (two hot
#: objects under heavy contention, a cold working set, backoff restarts).
DEFAULT_TRANSACTIONS = 300
DEFAULT_SEED = 1515
DEFAULT_SCHEDULERS = ("n2pl", "nto-step", "certifier")


@dataclass(slots=True)
class ProfileReport:
    """One profiled run: ranked hot spots plus headline throughput."""

    scheduler: str
    hot_loop: str
    wall_seconds: float
    decisions: int
    rows: list[dict[str, Any]]

    @property
    def decisions_per_second(self) -> float:
        return self.decisions / max(self.wall_seconds, 1e-9)

    def format(self, limit: int = 15) -> str:
        lines = [
            f"== {self.scheduler} (hot_loop={self.hot_loop}): "
            f"{self.decisions} decisions in {self.wall_seconds:.2f}s "
            f"({self.decisions_per_second:,.0f}/s) ==",
            f"{'cumtime':>9} {'tottime':>9} {'calls':>10}  function",
        ]
        for row in self.rows[:limit]:
            lines.append(
                f"{row['cumtime']:9.3f} {row['tottime']:9.3f} "
                f"{row['calls']:>10}  {row['function']}"
            )
        return "\n".join(lines)


def build_standard_engine(
    scheduler: str,
    *,
    transactions: int = DEFAULT_TRANSACTIONS,
    seed: int = DEFAULT_SEED,
    hot_loop: str = "event",
) -> SimulationEngine:
    """The standard profiling scenario, ready to :meth:`run`."""
    workload = make_workload(
        "hotspot",
        transactions=transactions,
        hot_objects=2,
        cold_objects=128,
        operations_per_transaction=2,
        hot_probability=0.05,
        use_service_layer=False,
        seed=seed,
    )
    base, specs = workload.build()
    engine = SimulationEngine(
        base,
        make_scheduler(scheduler, restart_policy="backoff"),
        seed=seed,
        hot_loop=hot_loop,
    )
    engine.submit_all(specs)
    return engine


def profile_call(
    target: Callable[[], Any], *, sort: str = "cumtime", dump: str | None = None
) -> tuple[Any, list[dict[str, Any]]]:
    """Run ``target`` under cProfile; return (result, ranked stat rows)."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = target()
    finally:
        profiler.disable()
    if dump:
        profiler.dump_stats(dump)
    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats(sort)
    rows = []
    for func in stats.fcn_list or []:
        cc, nc, tottime, cumtime, _ = stats.stats[func]
        filename, lineno, name = func
        location = f"{filename}:{lineno}" if lineno else filename
        rows.append(
            {
                "function": f"{name} ({location})",
                "calls": nc,
                "tottime": tottime,
                "cumtime": cumtime,
            }
        )
    return result, rows


def profile_scenario(
    scheduler: str,
    *,
    transactions: int = DEFAULT_TRANSACTIONS,
    seed: int = DEFAULT_SEED,
    hot_loop: str = "event",
    sort: str = "cumtime",
    dump: str | None = None,
) -> ProfileReport:
    """Profile one scheduler on the standard scenario."""
    engine = build_standard_engine(
        scheduler, transactions=transactions, seed=seed, hot_loop=hot_loop
    )
    started = time.perf_counter()
    result, rows = profile_call(engine.run, sort=sort, dump=dump)
    wall = time.perf_counter() - started
    return ProfileReport(
        scheduler=scheduler,
        hot_loop=hot_loop,
        wall_seconds=wall,
        decisions=result.metrics.decisions,
        rows=rows,
    )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.profile",
        description="Profile the engine hot loop on the standard E15 hotspot scenario.",
    )
    parser.add_argument(
        "--scheduler",
        action="append",
        choices=DEFAULT_SCHEDULERS,
        help="scheduler(s) to profile (default: all three)",
    )
    parser.add_argument(
        "--transactions", type=int, default=DEFAULT_TRANSACTIONS, help="batch size"
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--scan",
        action="store_true",
        help='profile the legacy hot_loop="scan" strategy instead of the event loop',
    )
    parser.add_argument(
        "--sort", choices=("cumtime", "tottime"), default="cumtime", help="ranking key"
    )
    parser.add_argument("--limit", type=int, default=15, help="rows per report")
    parser.add_argument(
        "--dump",
        metavar="PATH",
        help="also save raw pstats to PATH (suffixed per scheduler) for flame-graph tools",
    )
    args = parser.parse_args(argv)
    schedulers = tuple(args.scheduler) if args.scheduler else DEFAULT_SCHEDULERS
    hot_loop = "scan" if args.scan else "event"
    for scheduler in schedulers:
        dump = f"{args.dump}.{scheduler}.pstats" if args.dump else None
        report = profile_scenario(
            scheduler,
            transactions=args.transactions,
            seed=args.seed,
            hot_loop=hot_loop,
            sort=args.sort,
            dump=dump,
        )
        print(report.format(args.limit))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
