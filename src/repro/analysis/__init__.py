"""Analysis layer: run certification, history statistics and text reports.

Hot-loop profiling lives in :mod:`repro.analysis.profile` (also a CLI:
``python -m repro.analysis.profile``); it is not re-exported here so the
module can double as the ``-m`` entry point without an import cycle
warning.
"""

from .certify import CertificationReport, certify_history, certify_run
from .streaming import StreamingCertifier
from .report import (
    format_comparison,
    format_markdown_table,
    format_table,
    relative_change,
    summarise_sweep,
)
from .stats import HistoryStatistics, history_statistics

__all__ = [
    "CertificationReport",
    "HistoryStatistics",
    "StreamingCertifier",
    "certify_history",
    "certify_run",
    "format_comparison",
    "format_markdown_table",
    "format_table",
    "history_statistics",
    "relative_change",
    "summarise_sweep",
]
