"""Online certification: grow ``SG(h)`` at commit time, O(new work) per commit.

Post-hoc certification (:func:`~repro.analysis.certify.certify_run`)
replays the *whole* committed projection after the run — quadratic-ish
work that made certification unaffordable above a few thousand
transactions (E15 shipped ``certify=False``).  The
:class:`StreamingCertifier` does the same checks as the run progresses
instead:

* every committed transaction's subtree is snapshotted at commit time
  (its steps and message intervals are final the moment it commits) and
  its local steps are classified against the retained window of earlier
  committed steps, exactly like :class:`~repro.core.graphs.IncrementalSG`
  classifies steps fed in temporal order;
* Definition 9's type (a)/(b) edges, Theorem 5(a)'s per-object combined
  graphs and Theorem 5(b)'s message relations are all maintained (or, for
  the intra-transaction parts, evaluated once on a small per-transaction
  ``History``), with per-edge DFS cycle checks;
* legality (Definition 6, condition 3) is checked by replaying each
  object's committed steps in stamp order — but only the *stable prefix*:
  a step is replayed once every live transaction began after it, because
  any step a future commit could contribute carries a later stamp;
* a rolling serial order is emitted (see :meth:`_emit_ready`) and
  transactions that are certified, emitted and unreachable from the
  *frontier* are pruned, which keeps the retained window O(in-flight +
  GC interval) — the window-soundness argument is sketched in DESIGN.md
  ("Streaming certification") and mirrors the optimistic certifier's
  ``collect_garbage``.

The contract, enforced by the property tests in
``tests/analysis/test_streaming_certification.py``, is that
:meth:`finalise` returns a :class:`~repro.analysis.certify.CertificationReport`
whose verdicts (``legal``, ``serialisable``, ``theorem5_holds``), counters,
``serial_order``, ``cycle`` and ``violations`` equal the post-hoc report of
the same run bit-for-bit.  The one deliberate exception is ``sg_edges``:
the streaming graph drops edges incident to pruned transactions (they can
never rejoin a cycle), so it reports the *retained* edge count.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator, Mapping

import networkx as nx

from ..core.conflicts import PerObjectConflicts
from ..core.executions import MethodExecution
from ..core.operations import LocalStep
from ..core.state import ObjectState
from ..core.theorems import natural_execution_key
from .certify import CertificationReport, cyclic_nodes


def _dict_has_path(succ: Mapping[str, set[str]], source: str, target: str) -> bool:
    """Directed reachability ``source -> ... -> target`` over a succ-dict.

    The certifier keeps its graphs as plain ``{node: set(successors)}``
    dicts rather than :class:`networkx.DiGraph`: edge installation runs
    tens of thousands of times per thousand commits, and the dict form
    makes the duplicate check and this DFS a handful of dict/set ops.
    """
    stack = [source]
    seen = {source}
    while stack:
        for successor in succ.get(stack.pop(), ()):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return False


def _has_cycle(adjacency: Mapping[int, set[int]]) -> bool:
    """Iterative three-colour DFS over a tiny adjacency mapping."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in adjacency}
    for root in adjacency:
        if colour[root] != WHITE:
            continue
        stack: list[tuple[int, Iterator[int]]] = [(root, iter(adjacency[root]))]
        colour[root] = GREY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                state = colour.get(successor, BLACK)
                if state == GREY:
                    return True
                if state == WHITE:
                    colour[successor] = GREY
                    stack.append((successor, iter(adjacency[successor])))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return False


class _StepEntry:
    """One retained committed local step: the classification window's unit."""

    __slots__ = ("stamp", "step", "execution_id", "top_id")

    def __init__(self, stamp: int, step: LocalStep, execution_id: str, top_id: str):
        self.stamp = stamp
        self.step = step
        self.execution_id = execution_id
        self.top_id = top_id


class StreamingCertifier:
    """Maintain the certification verdicts of a run while it is running.

    The engine drives the four lifecycle hooks (:meth:`note_begin`,
    :meth:`note_commit`, :meth:`note_abort`, :meth:`collect_garbage`) and
    calls :meth:`finalise` once, after the last event.  The certifier is a
    pure observer: it never influences scheduling, so a run with
    ``certify="stream"`` is bit-identical to the same run without it.

    Top-level ids must be begun in :func:`natural_execution_key` order
    (``HistoryBuilder`` numbers them ``T1, T2, ...``); the rolling
    serial-order emission relies on every future transaction carrying a
    larger key than every existing one.

    Args:
        conflicts: the step-level conflict registry of the run's history.
        initial_states: initial object states for the legality replay.
    """

    def __init__(
        self,
        conflicts: PerObjectConflicts,
        initial_states: Mapping[str, ObjectState] | None = None,
    ):
        self._conflicts = conflicts
        # Per-object leaf ``steps_conflict`` methods: the window scan tests
        # every retained pair on one object, so the ``PerObjectConflicts``
        # dispatch (name compare + registry lookup) is hoisted out of the
        # pair loops once per object.
        self._conflict_fn: dict[str, Callable[[LocalStep, LocalStep], bool]] = {}
        # -- live transactions -------------------------------------------------
        self._live_begin: dict[str, int] = {}
        # -- the retained committed window ------------------------------------
        # SG(h) as succ/pred dict-of-sets (see :func:`_dict_has_path`).
        self._succ: dict[str, set[str]] = {}
        self._pred: dict[str, set[str]] = {}
        self._edge_count = 0
        # Theorem 5(a) combined graphs, one succ/pred pair per object.
        self._object_succ: dict[str, dict[str, set[str]]] = {}
        self._object_pred: dict[str, dict[str, set[str]]] = {}
        self._object_edges: dict[str, int] = {}
        self._steps_by_object: dict[str, list[_StepEntry]] = {}
        # Ancestor chain per execution, nearest parent first, including the
        # execution itself.  Chains are a handful of ids deep, so the same
        # tuple doubles as the membership set in the hot classification
        # loops (tuple scans beat frozenset construction at these sizes).
        self._chain: dict[str, tuple[str, ...]] = {}
        self._object_of: dict[str, str] = {}
        self._resolve_stamp: dict[str, int] = {}
        self._txn_executions: dict[str, tuple[str, ...]] = {}
        # -- rolling serial order ---------------------------------------------
        # Unemitted committed top-levels, same succ/pred dict shape.
        self._top_succ: dict[str, set[str]] = {}
        self._top_pred: dict[str, set[str]] = {}
        self._order: list[str] = []
        # -- legality (stable-prefix replay) ----------------------------------
        self._replay_states: dict[str, ObjectState] = {
            name: state for name, state in (initial_states or {}).items()
        }
        self._pending_replay: dict[str, list[tuple[int, int, LocalStep]]] = {}
        # First replay mismatch per object, in ``History.replay``'s exact
        # wording: the post-hoc checker raises on the alphabetically first
        # illegal object's first bad step, and :meth:`finalise` reproduces
        # that single violation bit-for-bit.
        self._legality_first: dict[str, str] = {}
        # -- verdict accumulators (monotone) ----------------------------------
        self._cycle_detected = False
        self._cyclic_objects: set[str] = set()
        self._cyclic_executions: set[str] = set()
        self._committed_transactions = 0
        self._committed_executions = 0
        self._committed_local_steps = 0
        #: GC telemetry, public for the window-bound tests.
        self.gc_passes = 0
        self.gc_pruned = 0
        self._finalised: CertificationReport | None = None

    # -- lifecycle hooks -------------------------------------------------------

    def note_begin(self, top_id: str, begin_stamp: int) -> None:
        """A top-level transaction (or a restart attempt) began."""
        self._live_begin[top_id] = begin_stamp

    def note_abort(self, top_id: str) -> None:
        """A live transaction aborted: it will never contribute steps.

        An abort changes nothing about the pending-emission graph; it can
        only move the settle threshold, and only when the aborted
        transaction held the oldest live begin stamp — the one case worth
        re-running the emission scan for (aborts dominate events on
        contended streams, so this gate keeps them O(1)).
        """
        begin = self._live_begin.pop(top_id, None)
        if begin is None:
            return
        if not self._live_begin or begin < min(self._live_begin.values()):
            self._emit_ready()

    def note_commit(
        self,
        top_id: str,
        executions: Iterable[MethodExecution],
        intervals: Mapping[int, tuple[int, int]],
        resolve_stamp: int,
    ) -> None:
        """A transaction committed; fold its (now final) subtree in.

        Args:
            top_id: the committed top-level execution id.
            executions: every execution of the subtree (the top level and
                all its descendants), snapshotted from the builder.
            intervals: the interval slice covering the subtree's steps
                (see :meth:`~repro.core.history.HistoryBuilder.intervals_for`).
            resolve_stamp: the builder clock at commit time.
        """
        self._live_begin.pop(top_id, None)
        executions = list(executions)
        # Register the top-level before installing any edges: edges into
        # this very transaction are discovered during its own
        # classification below, and :meth:`_sg_add_edge` only mirrors a
        # top-top edge into the pending-emission graph when both endpoints
        # are already registered.
        self._resolve_stamp[top_id] = resolve_stamp
        self._top_succ[top_id] = set()
        self._top_pred[top_id] = set()
        # The subtree's ancestry forest, computed directly on the records
        # (building a per-commit ``History`` for these lookups dominated
        # the certifier's cost; the structure is a tree of a handful of
        # executions, so plain dict walks are far cheaper).
        by_id = {execution.execution_id: execution for execution in executions}
        children_by_step: dict[int, str] = {}
        children_index: dict[str, list[str]] = {}
        for execution in executions:
            execution_id = execution.execution_id
            parent_id = execution.parent_id
            if parent_id is not None and parent_id in by_id:
                children_index.setdefault(parent_id, []).append(execution_id)
            if execution.invoking_step_id is not None:
                children_by_step.setdefault(execution.invoking_step_id, execution_id)
            # Ancestor chain, nearest parent first (ids outside the
            # committed subtree terminate the walk, matching
            # ``History.ancestors`` on the subtree-only history).
            chain = [execution_id]
            current = parent_id
            while current is not None and current in by_id:
                chain.append(current)
                current = by_id[current].parent_id
            self._chain[execution_id] = tuple(chain)
            self._object_of[execution_id] = execution.object_name
            self._succ[execution_id] = set()
            self._pred[execution_id] = set()

        # Each execution's local steps are consulted by the message-relation
        # buckets below and again when building the window entries; snapshot
        # the lists once instead of re-filtering the step sequence each time.
        local_steps_of = {
            execution_id: execution.local_steps()
            for execution_id, execution in by_id.items()
        }

        descendants: dict[str, tuple[str, ...]] = {}

        def descendants_of(execution_id: str) -> tuple[str, ...]:
            cached = descendants.get(execution_id)
            if cached is None:
                collected = [execution_id]
                frontier = [execution_id]
                while frontier:
                    for child in children_index.get(frontier.pop(), ()):
                        collected.append(child)
                        frontier.append(child)
                cached = descendants[execution_id] = tuple(collected)
            return cached

        # Type (b) structure edges (intra-transaction by construction:
        # between descendants of two programme-ordered messages) and
        # Theorem 5(b)'s message relation ->_e, both evaluated directly on
        # the subtree.  ``->_e`` orders two messages when programme order
        # does, or when conflicting descendant steps do temporally.
        for execution in executions:
            messages = execution.message_steps()
            if len(messages) < 2:
                continue
            local_buckets: dict[int, dict[str, list[LocalStep]]] = {}
            for message in messages:
                buckets: dict[str, list[LocalStep]] = {}
                child_id = children_by_step.get(message.step_id)
                if child_id is not None:
                    for descendant_id in descendants_of(child_id):
                        for step in local_steps_of[descendant_id]:
                            buckets.setdefault(step.object_name, []).append(step)
                local_buckets[message.step_id] = buckets
            relation: dict[int, set[int]] = {message.step_id: set() for message in messages}
            for first_message in messages:
                for second_message in messages:
                    if first_message.step_id == second_message.step_id:
                        continue
                    if execution.program_precedes(first_message, second_message):
                        relation[first_message.step_id].add(second_message.step_id)
                        first_child = children_by_step.get(first_message.step_id)
                        second_child = children_by_step.get(second_message.step_id)
                        if first_child is not None and second_child is not None:
                            # Type (b) edges connect two disjoint, freshly
                            # registered subtrees along the programme order
                            # (a series-parallel partial order), so they can
                            # neither close a cycle nor touch the top-level
                            # mirror — install them without the per-edge
                            # path check :meth:`_sg_add_edge` pays.
                            succ = self._succ
                            pred = self._pred
                            for source in descendants_of(first_child):
                                out = succ[source]
                                for target in descendants_of(second_child):
                                    if target not in out:
                                        out.add(target)
                                        pred[target].add(source)
                                        self._edge_count += 1
                        continue
                    if self._messages_conflict_ordered(
                        local_buckets[first_message.step_id],
                        local_buckets[second_message.step_id],
                        intervals,
                    ):
                        relation[first_message.step_id].add(second_message.step_id)
            if _has_cycle(relation):
                self._cyclic_executions.add(execution.execution_id)

        # Type (a) conflict edges + Theorem 5(a) local/mesg edges: classify
        # the new steps, in temporal order, against the retained window
        # (which grows to include this transaction's own earlier steps, so
        # intra-transaction witnesses are covered as well).
        new_entries = sorted(
            (
                _StepEntry(intervals[step.step_id][0], step, execution_id, top_id)
                for execution_id, steps in local_steps_of.items()
                for step in steps
            ),
            key=lambda entry: (entry.stamp, entry.step.step_id),
        )
        steps_by_object = self._steps_by_object
        pending_replay = self._pending_replay
        conflict_fn = self._conflict_fn
        classify = self._classify_conflict
        heappush = heapq.heappush
        for entry in new_entries:
            step = entry.step
            stamp = entry.stamp
            object_name = step.object_name
            conflict = conflict_fn.get(object_name)
            if conflict is None:
                conflict = conflict_fn[object_name] = self._conflicts[
                    object_name
                ].steps_conflict
            window = steps_by_object.get(object_name)
            if window is None:
                window = steps_by_object[object_name] = []
            for other in window:
                if other.stamp < stamp:
                    if conflict(other.step, step):
                        classify(other, entry)
                elif conflict(step, other.step):
                    classify(entry, other)
            window.append(entry)
            heappush(
                pending_replay.setdefault(object_name, []),
                (stamp, step.step_id, step),
            )

        self._committed_transactions += 1
        self._committed_executions += len(executions)
        self._committed_local_steps += len(new_entries)
        self._txn_executions[top_id] = tuple(execution.execution_id for execution in executions)
        # Serial-order emission is deferred to the GC pass (and to
        # :meth:`finalise`): emittability is monotone — settled stays
        # settled, in-degrees only fall, and the key floor only rises —
        # so batching the scan every ``gc_interval`` commits changes no
        # emitted order, only when it becomes visible, and keeps the
        # per-commit path free of the O(pending tops) rescan.

    # -- edge installation -----------------------------------------------------

    def _sg_add_edge(self, source: str, target: str) -> None:
        if source == target:
            return
        out = self._succ[source]
        if target in out:
            return
        if not self._cycle_detected and _dict_has_path(self._succ, target, source):
            self._cycle_detected = True
        out.add(target)
        self._pred[target].add(source)
        self._edge_count += 1
        # "." never appears in a top-level id, so this spots top-top edges.
        if "." not in source and "." not in target:
            top_out = self._top_succ.get(source)
            if top_out is not None and target in self._top_succ and target not in top_out:
                top_out.add(target)
                self._top_pred[target].add(source)

    def _sg_remove_node(self, node: str) -> None:
        out = self._succ.pop(node, None)
        if out is not None:
            self._edge_count -= len(out)
            for target in out:
                pred = self._pred.get(target)
                if pred is not None:
                    pred.discard(node)
        incoming = self._pred.pop(node, None)
        if incoming is not None:
            self._edge_count -= len(incoming)
            for source in incoming:
                successors = self._succ.get(source)
                if successors is not None:
                    successors.discard(node)

    def _object_add_edge(self, object_name: str, source: str, target: str) -> None:
        succ = self._object_succ.get(object_name)
        if succ is None:
            succ = self._object_succ[object_name] = {}
            self._object_pred[object_name] = {}
            self._object_edges[object_name] = 0
        pred = self._object_pred[object_name]
        out = succ.get(source)
        if out is None:
            out = succ[source] = set()
            pred[source] = set()
        elif target in out:
            return
        if target not in succ:
            succ[target] = set()
            pred[target] = set()
        if object_name not in self._cyclic_objects and _dict_has_path(succ, target, source):
            self._cyclic_objects.add(object_name)
        out.add(target)
        pred[target].add(source)
        self._object_edges[object_name] += 1

    def _object_remove_node(self, object_name: str, node: str) -> None:
        succ = self._object_succ[object_name]
        pred = self._object_pred[object_name]
        removed = 0
        out = succ.pop(node, None)
        if out is not None:
            removed += len(out)
            for target in out:
                target_pred = pred.get(target)
                if target_pred is not None:
                    target_pred.discard(node)
        incoming = pred.pop(node, None)
        if incoming is not None:
            removed += len(incoming)
            for source in incoming:
                successors = succ.get(source)
                if successors is not None:
                    successors.discard(node)
        if removed:
            self._object_edges[object_name] -= removed

    def _messages_conflict_ordered(
        self,
        first_buckets: Mapping[str, list[LocalStep]],
        second_buckets: Mapping[str, list[LocalStep]],
        intervals: Mapping[int, tuple[int, int]],
    ) -> bool:
        """True when a descendant step of the first message temporally
        precedes and conflicts (in either direction) with one of the
        second's — the conflict clause of Theorem 5(b)'s ``->_e``."""
        conflict_fn = self._conflict_fn
        for object_name, first_steps in first_buckets.items():
            second_steps = second_buckets.get(object_name)
            if not second_steps:
                continue
            conflict = conflict_fn.get(object_name)
            if conflict is None:
                conflict = conflict_fn[object_name] = self._conflicts[
                    object_name
                ].steps_conflict
            for first_step in first_steps:
                first_end = intervals[first_step.step_id][1]
                for second_step in second_steps:
                    if first_end >= intervals[second_step.step_id][0]:
                        continue
                    if conflict(first_step, second_step) or conflict(
                        second_step, first_step
                    ):
                        return True
        return False

    def _classify_conflict(self, first: _StepEntry, second: _StepEntry) -> None:
        """Install every edge witnessed by the ordered conflicting pair.

        Incomparability (neither execution an ancestor of the other) is
        checked with direct ``_chain`` tuple scans — this method and
        :meth:`_sg_add_edge` are the streaming hot path.
        """
        chain = self._chain
        first_id = first.execution_id
        second_id = second.execution_id
        first_chain = chain[first_id]
        second_chain = chain[second_id]
        sg_add_edge = self._sg_add_edge
        # Definition 9, type (a): between every incomparable ancestor pair.
        for source in first_chain:
            source_chain = chain[source]
            for target in second_chain:
                if (
                    source != target
                    and target not in source_chain
                    and source not in chain[target]
                ):
                    sg_add_edge(source, target)
        # Definition 10: a local edge between the issuing executions, mapped
        # up to every incomparable proper-ancestor pair sharing an object.
        if first_id in chain[second_id] or second_id in chain[first_id]:
            return
        self._object_add_edge(first.step.object_name, first_id, second_id)
        object_of = self._object_of
        for source in first_chain[1:]:
            source_object = object_of[source]
            source_chain = chain[source]
            for target in second_chain[1:]:
                if (
                    object_of[target] == source_object
                    and source != target
                    and target not in source_chain
                    and source not in chain[target]
                ):
                    self._object_add_edge(source_object, source, target)

    # -- rolling serial order --------------------------------------------------

    def _settle_threshold(self) -> int | None:
        """Stamps at or below this are final; ``None`` means everything is.

        Any step a live transaction (or one not yet begun) can still
        contribute is stamped strictly after the oldest live begin, so a
        committed transaction whose resolve stamp is at or below it can
        never gain another in-edge (the frontier argument of DESIGN.md).
        """
        if not self._live_begin:
            return None
        return min(self._live_begin.values())

    def _emit_ready(self) -> None:
        """Append every decidable transaction to the rolling serial order.

        A pending top-level ``u`` is decidable when (a) it is *settled* —
        no future edge can enter it, (b) it has in-degree 0 among the
        unemitted committed tops, and (c) its key is smaller than that of
        every live top and every unsettled committed top (any of which
        could still become ready before ``u``'s position is fixed; blocked
        *settled* tops cannot, and not-yet-begun transactions always carry
        larger keys).  Under these conditions ``u`` is provably the next
        node the final lexicographic topological sort pops.
        """
        if self._cycle_detected:
            return
        threshold = self._settle_threshold()

        def settled(top: str) -> bool:
            return threshold is None or self._resolve_stamp[top] <= threshold

        top_succ = self._top_succ
        top_pred = self._top_pred
        floor_keys = [natural_execution_key(top) for top in self._live_begin]
        floor_keys.extend(
            natural_execution_key(top) for top in top_succ if not settled(top)
        )
        floor = min(floor_keys, default=None)
        ready = [
            (natural_execution_key(top), top)
            for top in top_succ
            if not top_pred[top] and settled(top)
        ]
        heapq.heapify(ready)
        while ready and (floor is None or ready[0][0] < floor):
            _, top = heapq.heappop(ready)
            self._order.append(top)
            successors = top_succ.pop(top)
            del top_pred[top]
            for successor in successors:
                pred = top_pred[successor]
                pred.discard(top)
                if not pred and settled(successor):
                    heapq.heappush(ready, (natural_execution_key(successor), successor))

    # -- legality --------------------------------------------------------------

    def _replay_stable_prefix(self, threshold: int | None) -> None:
        """Replay committed steps up to ``threshold`` (all of them if None)."""
        for object_name, pending in self._pending_replay.items():
            if not pending:
                continue
            state = self._replay_states.get(object_name, ObjectState())
            while pending and (threshold is None or pending[0][0] <= threshold):
                _, _, step = heapq.heappop(pending)
                value, state = step.operation.apply(state)
                if (
                    value != step.return_value
                    and not step.is_abort()
                    and object_name not in self._legality_first
                ):
                    self._legality_first[object_name] = (
                        f"step {step.step_id} of object {object_name!r} recorded "
                        f"return value {step.return_value!r} but replay produced {value!r}"
                    )
            self._replay_states[object_name] = state

    # -- garbage collection ----------------------------------------------------

    def collect_garbage(self) -> int:
        """Prune emitted transactions nothing live or future can reach back to.

        A committed transaction is retained while it is in the *frontier*
        (some live transaction began before it resolved — only then can it
        gain new in-edges), while its top-level is still awaiting serial-
        order emission, or while it is forward-reachable from a frontier
        transaction's nodes (a future cycle's path into the pruned region
        would have to pass through a frontier node first).  Everything else
        can never rejoin a cycle and is dropped.  Frozen after the first
        cycle so the violating nodes survive to :meth:`finalise`.
        """
        threshold = self._settle_threshold()
        self._replay_stable_prefix(threshold)
        self._emit_ready()
        self.gc_passes += 1
        if self._cycle_detected:
            return 0
        frontier = {
            top
            for top, resolve in self._resolve_stamp.items()
            if threshold is not None and resolve > threshold
        }
        if len(frontier) == len(self._resolve_stamp):
            return 0

        marked: set[str] = set()
        stack = [
            execution_id
            for top in frontier
            for execution_id in self._txn_executions[top]
        ]
        graph_succ = self._succ
        while stack:
            current = stack.pop()
            for successor in graph_succ.get(current, ()):
                if successor not in marked:
                    marked.add(successor)
                    stack.append(successor)

        pruned_txns: set[str] = set()
        pruned = 0
        for top in list(self._resolve_stamp):
            if top in frontier or top in self._top_succ:
                continue
            if any(execution_id in marked for execution_id in self._txn_executions[top]):
                continue
            pruned_txns.add(top)
            for execution_id in self._txn_executions[top]:
                self._sg_remove_node(execution_id)
                object_name = self._object_of[execution_id]
                object_succ = self._object_succ.get(object_name)
                if object_succ is not None and execution_id in object_succ:
                    self._object_remove_node(object_name, execution_id)
                del self._chain[execution_id]
                del self._object_of[execution_id]
                pruned += 1
            del self._resolve_stamp[top]
            del self._txn_executions[top]
        if pruned_txns:
            for object_name, window in self._steps_by_object.items():
                self._steps_by_object[object_name] = [
                    entry for entry in window if entry.top_id not in pruned_txns
                ]
        self.gc_pruned += pruned
        return pruned

    # -- gauge -----------------------------------------------------------------

    def live_state_size(self) -> int:
        """Retained items, sampled into the engine's bounded-memory gauge."""
        return (
            sum(len(window) for window in self._steps_by_object.values())
            + sum(len(pending) for pending in self._pending_replay.values())
            + len(self._succ)
            + self._edge_count
            + sum(len(succ) for succ in self._object_succ.values())
            + sum(self._object_edges.values())
            + len(self._top_succ)
            + len(self._live_begin)
        )

    # -- finalisation ----------------------------------------------------------

    def finalise(self) -> CertificationReport:
        """The rolling report, completed; equals the post-hoc verdict.

        Transactions still live at this point never committed (e.g. the
        run was truncated): the committed projection excludes them, so
        they are dropped before the remaining steps are replayed and the
        remaining serial order is emitted.
        """
        if self._finalised is not None:
            return self._finalised
        self._live_begin.clear()
        self._replay_stable_prefix(None)
        self._emit_ready()

        legal = not self._legality_first
        serialisable = not self._cycle_detected
        cycle: tuple[str, ...] | None = None
        serial_order: tuple[str, ...] = ()
        if serialisable:
            serial_order = tuple(self._order)
        else:
            # Only here does networkx enter: one graph build for the SCC
            # computation shared with the post-hoc certifier.
            graph = nx.DiGraph()
            graph.add_nodes_from(self._succ)
            for source, targets in self._succ.items():
                for target in targets:
                    graph.add_edge(source, target)
            cycle = cyclic_nodes(graph)

        # ``History.check_legal`` raises at the alphabetically first
        # illegal object; reproduce exactly that one violation string.
        violations = (
            ["legality: " + self._legality_first[min(self._legality_first)]]
            if self._legality_first
            else []
        )
        if not serialisable:
            violations.append("serialisation graph contains a cycle")
        if self._cyclic_objects:
            violations.append(
                "Theorem 5(a) violated for objects: " + ", ".join(sorted(self._cyclic_objects))
            )
        if self._cyclic_executions:
            violations.append(
                "Theorem 5(b) violated for executions: "
                + ", ".join(sorted(self._cyclic_executions))
            )

        self._finalised = CertificationReport(
            legal=legal,
            serialisable=serialisable,
            theorem5_holds=not self._cyclic_objects and not self._cyclic_executions,
            violations=violations,
            committed_transactions=self._committed_transactions,
            committed_executions=self._committed_executions,
            committed_local_steps=self._committed_local_steps,
            sg_nodes=self._committed_executions,
            sg_edges=self._edge_count,
            serial_order=serial_order,
            cycle=cycle,
        )
        return self._finalised
