"""Descriptive statistics of histories.

These are the numbers the experiment harness prints next to its headline
metrics: how many executions and steps a history contains, how deeply the
transactions nest, and how the local steps distribute over objects.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from ..core.history import History


@dataclass
class HistoryStatistics:
    """Structural summary of one history."""

    executions: int = 0
    top_level_executions: int = 0
    local_steps: int = 0
    message_steps: int = 0
    objects_touched: int = 0
    max_nesting_depth: int = 0
    mean_nesting_depth: float = 0.0
    steps_per_object: dict[str, int] = field(default_factory=dict)
    executions_per_object: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "executions": self.executions,
            "top_level_executions": self.top_level_executions,
            "local_steps": self.local_steps,
            "message_steps": self.message_steps,
            "objects_touched": self.objects_touched,
            "max_nesting_depth": self.max_nesting_depth,
            "mean_nesting_depth": self.mean_nesting_depth,
        }


def history_statistics(history: History) -> HistoryStatistics:
    """Compute :class:`HistoryStatistics` for the given history."""
    executions = list(history.executions.values())
    depths = [history.level(execution.execution_id) for execution in executions]
    steps_per_object = Counter(step.object_name for step in history.local_steps())
    executions_per_object = Counter(execution.object_name for execution in executions)
    local_steps = history.local_steps()
    return HistoryStatistics(
        executions=len(executions),
        top_level_executions=len(history.top_level_executions()),
        local_steps=len(local_steps),
        message_steps=len(history.message_steps()),
        objects_touched=len({step.object_name for step in local_steps}),
        max_nesting_depth=max(depths, default=0),
        mean_nesting_depth=(sum(depths) / len(depths)) if depths else 0.0,
        steps_per_object=dict(steps_per_object),
        executions_per_object=dict(executions_per_object),
    )
