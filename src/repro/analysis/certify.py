"""Post-hoc certification of simulation runs.

The schedulers are proven correct in the paper (Theorems 3 and 4); the
certification layer verifies the same claim *operationally* on every run:
the committed projection of the recorded history must be legal, its
serialisation graph must be acyclic (Theorem 2's sufficient condition) and
the modular conditions of Theorem 5 must hold.  Experiments that disable a
part of the machinery (e.g. the intra-object-only configuration of E4) use
the certification verdicts to count correctness violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from ..core.errors import IllegalHistoryError
from ..core.graphs import (
    incremental_serialisation_graph,
    is_acyclic,
    serialisation_graph,
    serialisation_graph_legacy,
)
from ..core.history import History
from ..core.theorems import execution_serial_order, theorem_5_conditions
from ..simulation.metrics import RunResult

SG_MODES = ("indexed", "incremental", "legacy")


@dataclass
class CertificationReport:
    """Verdicts of certifying one run's committed projection."""

    legal: bool
    serialisable: bool
    theorem5_holds: bool
    violations: list[str] = field(default_factory=list)
    committed_transactions: int = 0
    committed_executions: int = 0
    committed_local_steps: int = 0
    sg_nodes: int = 0
    sg_edges: int = 0
    serial_order: tuple[str, ...] = ()
    #: Sorted execution ids on some serialisation-graph cycle (the nodes of
    #: the graph's non-trivial strongly connected components), or ``None``
    #: when the graph is acyclic.  The node *set* is canonical — unlike a
    #: single reported cycle it does not depend on edge insertion order —
    #: so the streaming certifier can be compared against it bit-for-bit.
    cycle: tuple[str, ...] | None = None

    @property
    def correct(self) -> bool:
        """True when the run passed every check."""
        return self.legal and self.serialisable and self.theorem5_holds

    def as_dict(self) -> dict[str, Any]:
        return {
            "legal": self.legal,
            "serialisable": self.serialisable,
            "theorem5_holds": self.theorem5_holds,
            "correct": self.correct,
            "violations": list(self.violations),
            "committed_transactions": self.committed_transactions,
            "committed_executions": self.committed_executions,
            "committed_local_steps": self.committed_local_steps,
            "sg_nodes": self.sg_nodes,
            "sg_edges": self.sg_edges,
            "serial_order": list(self.serial_order),
            "cycle": None if self.cycle is None else list(self.cycle),
        }


def cyclic_nodes(graph: nx.DiGraph) -> tuple[str, ...]:
    """All nodes on some cycle of ``graph``, as a sorted tuple.

    A non-trivial strongly connected component contains exactly the nodes
    that lie on at least one cycle, so the returned set is independent of
    the order the graph's edges were inserted in.
    """
    nodes: set[str] = set()
    for component in nx.strongly_connected_components(graph):
        if len(component) > 1:
            nodes.update(component)
        else:
            (node,) = component
            if graph.has_edge(node, node):
                nodes.add(node)
    return tuple(sorted(nodes))


def certify_history(
    history: History,
    *,
    check_legality: bool = True,
    sg_mode: str = "indexed",
) -> CertificationReport:
    """Certify an arbitrary history (assumed already projected to committed work).

    ``sg_mode`` selects the serialisation-graph machinery:

    * ``"indexed"`` (default) — the sorted-interval sweep builders; the
      graph is built once and reused for the acyclicity test and the serial
      order instead of being rebuilt per question;
    * ``"incremental"`` — :class:`~repro.core.graphs.IncrementalSG` fed the
      committed steps in temporal order (the certifier-shaped construction);
    * ``"legacy"`` — the original from-scratch permutation builders,
      retained for oracle cross-checks and the E12 benchmark baseline.
    """
    if sg_mode not in SG_MODES:
        raise ValueError(f"unknown sg_mode {sg_mode!r}; expected one of {SG_MODES}")
    violations: list[str] = []

    legal = True
    if check_legality:
        try:
            history.check_legal()
        except IllegalHistoryError as error:
            legal = False
            violations.append(f"legality: {error}")

    if sg_mode == "legacy":
        graph = serialisation_graph_legacy(history)
        serialisable = is_acyclic(graph)
    elif sg_mode == "incremental":
        incremental = incremental_serialisation_graph(history)
        graph = incremental.graph
        serialisable = incremental.is_acyclic
    else:
        graph = serialisation_graph(history)
        serialisable = is_acyclic(graph)
    cycle: tuple[str, ...] | None = None
    if not serialisable:
        violations.append("serialisation graph contains a cycle")
        cycle = cyclic_nodes(graph)

    report5 = theorem_5_conditions(history, legacy=sg_mode == "legacy")
    if not report5.holds:
        if report5.cyclic_objects:
            violations.append(
                "Theorem 5(a) violated for objects: " + ", ".join(report5.cyclic_objects)
            )
        if report5.cyclic_executions:
            violations.append(
                "Theorem 5(b) violated for executions: " + ", ".join(report5.cyclic_executions)
            )

    serial_order: tuple[str, ...] = ()
    if serialisable:
        order = execution_serial_order(history, graph=graph)
        serial_order = tuple(
            execution_id for execution_id in order if history.execution(execution_id).is_top_level
        )

    return CertificationReport(
        legal=legal,
        serialisable=serialisable,
        theorem5_holds=report5.holds,
        violations=violations,
        committed_transactions=len(history.top_level_executions()),
        committed_executions=len(history.execution_ids()),
        committed_local_steps=len(history.local_steps()),
        sg_nodes=graph.number_of_nodes(),
        sg_edges=graph.number_of_edges(),
        serial_order=serial_order,
        cycle=cycle,
    )


def certify_run(
    result: RunResult, *, check_legality: bool = True, sg_mode: str = "indexed"
) -> CertificationReport:
    """Certify the committed projection of a simulation run."""
    committed = result.committed_history()
    return certify_history(committed, check_legality=check_legality, sg_mode=sg_mode)
