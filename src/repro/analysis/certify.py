"""Post-hoc certification of simulation runs.

The schedulers are proven correct in the paper (Theorems 3 and 4); the
certification layer verifies the same claim *operationally* on every run:
the committed projection of the recorded history must be legal, its
serialisation graph must be acyclic (Theorem 2's sufficient condition) and
the modular conditions of Theorem 5 must hold.  Experiments that disable a
part of the machinery (e.g. the intra-object-only configuration of E4) use
the certification verdicts to count correctness violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.errors import IllegalHistoryError
from ..core.graphs import serialisation_graph
from ..core.history import History
from ..core.theorems import execution_serial_order, is_serialisable, theorem_5_conditions
from ..simulation.metrics import RunResult


@dataclass
class CertificationReport:
    """Verdicts of certifying one run's committed projection."""

    legal: bool
    serialisable: bool
    theorem5_holds: bool
    violations: list[str] = field(default_factory=list)
    committed_transactions: int = 0
    committed_executions: int = 0
    committed_local_steps: int = 0
    sg_nodes: int = 0
    sg_edges: int = 0
    serial_order: tuple[str, ...] = ()

    @property
    def correct(self) -> bool:
        """True when the run passed every check."""
        return self.legal and self.serialisable and self.theorem5_holds

    def as_dict(self) -> dict[str, Any]:
        return {
            "legal": self.legal,
            "serialisable": self.serialisable,
            "theorem5_holds": self.theorem5_holds,
            "correct": self.correct,
            "violations": list(self.violations),
            "committed_transactions": self.committed_transactions,
            "committed_executions": self.committed_executions,
            "committed_local_steps": self.committed_local_steps,
            "sg_nodes": self.sg_nodes,
            "sg_edges": self.sg_edges,
        }


def certify_history(history: History, *, check_legality: bool = True) -> CertificationReport:
    """Certify an arbitrary history (assumed already projected to committed work)."""
    violations: list[str] = []

    legal = True
    if check_legality:
        try:
            history.check_legal()
        except IllegalHistoryError as error:
            legal = False
            violations.append(f"legality: {error}")

    graph = serialisation_graph(history)
    serialisable = is_serialisable(history)
    if not serialisable:
        violations.append("serialisation graph contains a cycle")

    report5 = theorem_5_conditions(history)
    if not report5.holds:
        if report5.cyclic_objects:
            violations.append(
                "Theorem 5(a) violated for objects: " + ", ".join(report5.cyclic_objects)
            )
        if report5.cyclic_executions:
            violations.append(
                "Theorem 5(b) violated for executions: " + ", ".join(report5.cyclic_executions)
            )

    serial_order: tuple[str, ...] = ()
    if serialisable:
        order = execution_serial_order(history)
        serial_order = tuple(
            execution_id for execution_id in order if history.execution(execution_id).is_top_level
        )

    return CertificationReport(
        legal=legal,
        serialisable=serialisable,
        theorem5_holds=report5.holds,
        violations=violations,
        committed_transactions=len(history.top_level_executions()),
        committed_executions=len(history.execution_ids()),
        committed_local_steps=len(history.local_steps()),
        sg_nodes=graph.number_of_nodes(),
        sg_edges=graph.number_of_edges(),
        serial_order=serial_order,
    )


def certify_run(result: RunResult, *, check_legality: bool = True) -> CertificationReport:
    """Certify the committed projection of a simulation run."""
    committed = result.committed_history()
    return certify_history(committed, check_legality=check_legality)
