"""Plain-text tables for experiment output.

The benchmark harness and the examples print their results as aligned text
tables (the paper has no tables of its own, so these are the artefacts
EXPERIMENTS.md records).  Keeping the formatting here keeps every
experiment's output uniform.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence


def _format_value(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render ``rows`` (dictionaries) as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [_format_value(row.get(column, ""), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(rendered[index]) for rendered in rendered_rows))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * widths[index] for index in range(len(columns)))
    body = [
        "  ".join(rendered[index].ljust(widths[index]) for index in range(len(columns)))
        for rendered in rendered_rows
    ]
    lines = []
    if title:
        lines.extend([title, "=" * len(title)])
    lines.extend([header, separator, *body])
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render ``rows`` (dictionaries) as a GitHub-flavoured markdown table.

    Args:
        rows: the table rows; missing cells render empty.
        columns: column order; defaults to the first row's keys.
        precision: decimal places for float cells.
        title: optional heading emitted above the table.

    Returns:
        The markdown text (no trailing newline).
    """
    if not rows:
        return f"**{title}**\n\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(str(column) for column in columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = [
        "| "
        + " | ".join(_format_value(row.get(column, ""), precision) for column in columns)
        + " |"
        for row in rows
    ]
    lines = [f"**{title}**", ""] if title else []
    lines.extend([header, separator, *body])
    return "\n".join(lines)


def format_comparison(
    rows: Sequence[Mapping[str, Any]],
    group_column: str,
    metric_columns: Sequence[str],
    *,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render a comparison keyed by ``group_column`` over chosen metrics."""
    columns = [group_column, *metric_columns]
    return format_table(rows, columns, precision=precision, title=title)


def relative_change(baseline: float, value: float) -> float:
    """Relative improvement of ``value`` over ``baseline`` (positive = better)."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline


def summarise_sweep(rows: Iterable[Mapping[str, Any]], key: str, metric: str) -> dict[str, Any]:
    """Minimum, maximum and argmax of ``metric`` across a parameter sweep."""
    materialised = list(rows)
    if not materialised:
        return {"min": None, "max": None, "best": None}
    best = max(materialised, key=lambda row: row.get(metric, float("-inf")))
    return {
        "min": min(row.get(metric, float("inf")) for row in materialised),
        "max": max(row.get(metric, float("-inf")) for row in materialised),
        "best": best.get(key),
    }
