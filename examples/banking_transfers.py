"""Banking example: compare schedulers on a nested-transfer workload.

The workload is the one the paper's model is built for: user transactions
(transfers, payrolls, audits) that run as nested method executions across
teller, account and branch-counter objects.  The script runs the same
transaction mix under several concurrency-control algorithms — the coarse
single-active-object baseline, Moss' nested two-phase locking at both
conflict granularities, Reed's nested timestamp ordering and the optimistic
certifier — and prints a comparison table plus the safety invariant
(total money is conserved by transfers).

Run it with ``python examples/banking_transfers.py``.
"""

from __future__ import annotations

from repro.analysis import certify_run, format_table
from repro.scheduler import make_scheduler
from repro.simulation import BankingWorkload, SimulationEngine

SCHEDULERS = ["single-active", "n2pl", "n2pl-step", "nto", "nto-step", "certifier"]


def run_one(scheduler_name: str, seed: int = 11) -> dict:
    workload = BankingWorkload(
        accounts=12,
        branches=2,
        transactions=40,
        transfer_fraction=0.7,
        payroll_fraction=0.0,  # keep the conservation invariant exact
        hot_fraction=0.25,
        seed=seed,
    )
    base, specs = workload.build()
    engine = SimulationEngine(base, make_scheduler(scheduler_name), seed=seed)
    engine.submit_all(specs)
    result = engine.run()

    finals = result.final_states()
    total_balance = sum(
        finals[name]["balance"] for name in finals if name.startswith("account-")
    )
    report = certify_run(result, check_legality=False)
    metrics = result.metrics
    return {
        "scheduler": scheduler_name,
        "committed": metrics.committed,
        "aborts": metrics.aborted_attempts,
        "deadlocks": metrics.aborts_by_reason.get("deadlock", 0),
        "ts_aborts": metrics.aborts_by_reason.get("timestamp", 0),
        "makespan": metrics.total_ticks,
        "blocked%": 100 * metrics.blocked_fraction,
        "serialisable": report.serialisable,
        "money_conserved": abs(total_balance - workload.expected_total_balance()) < 1e-9,
    }


def main() -> None:
    rows = [run_one(name) for name in SCHEDULERS]
    print(
        format_table(
            rows,
            [
                "scheduler",
                "committed",
                "aborts",
                "deadlocks",
                "ts_aborts",
                "makespan",
                "blocked%",
                "serialisable",
                "money_conserved",
            ],
            precision=1,
            title="Banking workload: 40 nested transactions over 12 accounts",
        )
    )
    print(
        "\nReading the table: every scheduler keeps the run serialisable and the\n"
        "money conserved; they differ in *how* they pay for it — blocking (N2PL,\n"
        "single-active), restarts (NTO), or validation aborts (certifier) — and in\n"
        "the resulting makespan."
    )


if __name__ == "__main__":
    main()
