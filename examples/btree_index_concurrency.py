"""B-tree index example: object-specific conflict knowledge in action.

The paper motivates per-object synchronisation with a dictionary object
implemented as a B-tree (Section 2).  This script runs an index-maintenance
workload over a real B-tree object and contrasts three views of it:

* the coarse baseline that serialises every method execution on the index;
* fine-grained locking driven by the B-tree's own conflict specification
  (readers of other keys / ranges proceed concurrently with mutators);
* nested timestamp ordering over the same specification.

It also prints the index's structural invariants after the run, checked by
the B-tree validator.

Run it with ``python examples/btree_index_concurrency.py``.
"""

from __future__ import annotations

from repro.analysis import certify_run, format_table
from repro.objectbase.adts.btree import tree_height, tree_size, validate_tree
from repro.scheduler import make_scheduler
from repro.simulation import BTreeWorkload, SimulationEngine

SCHEDULERS = ["single-active", "n2pl", "nto", "certifier"]


def run_one(scheduler_name: str, seed: int = 23) -> tuple[dict, dict]:
    workload = BTreeWorkload(
        indexes=1,
        transactions=30,
        operations_per_transaction=4,
        key_space=150,
        initial_keys=80,
        degree=3,
        read_fraction=0.55,
        scan_fraction=0.15,
        seed=seed,
    )
    base, specs = workload.build()
    engine = SimulationEngine(base, make_scheduler(scheduler_name), seed=seed)
    engine.submit_all(specs)
    result = engine.run()
    metrics = result.metrics
    row = {
        "scheduler": scheduler_name,
        "committed": metrics.committed,
        "aborts": metrics.aborted_attempts,
        "makespan": metrics.total_ticks,
        "blocked%": 100 * metrics.blocked_fraction,
        "serialisable": certify_run(result, check_legality=False).serialisable,
    }
    final_index_state = result.final_states()["index-0"]
    return row, dict(final_index_state)


def main() -> None:
    rows = []
    final_state = {}
    for scheduler_name in SCHEDULERS:
        row, final_state = run_one(scheduler_name)
        rows.append(row)
    print(
        format_table(
            rows,
            ["scheduler", "committed", "aborts", "makespan", "blocked%", "serialisable"],
            precision=1,
            title="B-tree index maintenance: 30 transactions, key space 150",
        )
    )

    root = final_state["root"]
    degree = final_state["degree"]
    validate_tree(root, degree)
    print(
        f"\nFinal index (last run): {tree_size(root)} keys, height {tree_height(root)}, "
        f"minimum degree {degree} — structural invariants verified."
    )
    print(
        "\nThe coarse baseline pays for ignoring object semantics: every search,\n"
        "scan and update on the index excludes every other, whereas the fine-grained\n"
        "schedulers only serialise operations the B-tree's conflict specification\n"
        "actually declares conflicting."
    )


if __name__ == "__main__":
    main()
