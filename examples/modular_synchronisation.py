"""Modular synchronisation example: per-object algorithms plus Theorem 5.

The paper's conceptual contribution (Sections 2 and 5.3) is the split into
*intra-object* and *inter-object* synchronisation: each object may use the
algorithm best suited to its semantics provided the per-object serial
orders are kept compatible.  This script demonstrates all three regimes on
an order-processing object base (B-tree catalogue, accounts, shipping
queue, counters, audit log):

* every object uses its own intra-object algorithm and the inter-object
  coordinator enforces Theorem 5's conditions  -> serialisable;
* the same per-object algorithms *without* inter-object coordination,
  using per-object timestamp orders                 -> violations appear;
* per-object strict two-phase locking without coordination (a *local
  atomicity* property in Weihl's sense)             -> serialisable again.

Run it with ``python examples/modular_synchronisation.py``.
"""

from __future__ import annotations

from repro.analysis import certify_run, format_table
from repro.scheduler import make_scheduler
from repro.simulation import HotspotWorkload, MixedWorkload, SimulationEngine


def run_mixed(configuration: str, seed: int = 29) -> dict:
    workload = MixedWorkload(customers=8, transactions=30, seed=seed)
    strategies = workload.modular_strategy_map()
    if configuration == "modular (per-object algorithms + coordinator)":
        scheduler = make_scheduler("modular", per_object_strategy=strategies)
    elif configuration == "uniform n2pl":
        scheduler = make_scheduler("n2pl")
    else:
        scheduler = make_scheduler("single-active")
    base, specs = workload.build()
    engine = SimulationEngine(base, scheduler, seed=seed)
    engine.submit_all(specs)
    result = engine.run()
    report = certify_run(result, check_legality=False)
    return {
        "configuration": configuration,
        "makespan": result.metrics.total_ticks,
        "blocked%": 100 * result.metrics.blocked_fraction,
        "aborts": result.metrics.aborted_attempts,
        "serialisable": report.serialisable,
    }


def run_intra_only(strategy: str, with_coordinator: bool, seeds=range(8)) -> dict:
    """Count serialisability violations over several seeds (experiment E4)."""
    violations = 0
    for seed in seeds:
        workload = HotspotWorkload(
            transactions=12,
            hot_objects=3,
            cold_objects=4,
            hot_probability=0.9,
            operations_per_transaction=3,
            use_service_layer=False,
            seed=seed,
        )
        name = "modular" if with_coordinator else "modular-intra-only"
        scheduler = make_scheduler(name, default_strategy=strategy)
        base, specs = workload.build()
        engine = SimulationEngine(base, scheduler, seed=seed)
        engine.submit_all(specs)
        result = engine.run()
        if not certify_run(result, check_legality=False).serialisable:
            violations += 1
    return {
        "intra-object algorithm": strategy,
        "inter-object coordinator": "on" if with_coordinator else "off",
        "non-serialisable runs": f"{violations}/{len(list(seeds))}",
    }


def main() -> None:
    print(
        format_table(
            [
                run_mixed("single-active baseline"),
                run_mixed("uniform n2pl"),
                run_mixed("modular (per-object algorithms + coordinator)"),
            ],
            ["configuration", "makespan", "blocked%", "aborts", "serialisable"],
            precision=1,
            title="Order-processing object base: heterogeneous objects, one scheduler each",
        )
    )

    print()
    print(
        format_table(
            [
                run_intra_only("timestamp", with_coordinator=False),
                run_intra_only("timestamp", with_coordinator=True),
                run_intra_only("locking", with_coordinator=False),
            ],
            ["intra-object algorithm", "inter-object coordinator", "non-serialisable runs"],
            title="Why inter-object synchronisation is needed (the paper's Section 2 example)",
        )
    )
    print(
        "\nPer-object timestamp orders are each serialisable locally, yet without the\n"
        "coordinator the objects pick incompatible orders and the global execution is\n"
        "not serialisable.  Per-object strict 2PL is a local atomicity property\n"
        "(Weihl), so it composes even without coordination — exactly the relationship\n"
        "between the paper's scheme and local atomicity discussed in Section 2."
    )


if __name__ == "__main__":
    main()
