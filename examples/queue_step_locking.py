"""Queue example: operation-level vs step-level (return-value aware) conflicts.

Section 5.1 of the paper observes that "in many reasonable representations
of queues, an Enqueue conflicts with a Dequeue only if the latter returns
the item placed into the queue by the former", so locking *steps* instead
of *operations* buys concurrency.  This script measures exactly that on a
producer/consumer workload over pre-populated FIFO queues, for both the
locking (N2PL) and the timestamp-ordering (NTO) family.

Run it with ``python examples/queue_step_locking.py``.
"""

from __future__ import annotations

from repro.analysis import certify_run, format_table
from repro.scheduler import make_scheduler
from repro.simulation import QueueWorkload, SimulationEngine

CONFIGURATIONS = [
    ("n2pl (operation locks)", "n2pl", {}),
    ("n2pl (step locks)", "n2pl-step", {}),
    ("nto (operation checks)", "nto", {}),
    ("nto (step checks)", "nto-step", {}),
]


def run_one(label: str, scheduler_name: str, kwargs: dict, seed: int = 17) -> dict:
    workload = QueueWorkload(
        queues=2,
        producers=12,
        consumers=12,
        items_per_transaction=3,
        initial_depth=15,
        seed=seed,
    )
    base, specs = workload.build()
    engine = SimulationEngine(base, make_scheduler(scheduler_name, **kwargs), seed=seed)
    engine.submit_all(specs)
    result = engine.run()
    metrics = result.metrics
    return {
        "configuration": label,
        "makespan": metrics.total_ticks,
        "blocked_ticks": metrics.blocked_ticks,
        "aborts": metrics.aborted_attempts,
        "throughput": metrics.throughput,
        "serialisable": certify_run(result, check_legality=False).serialisable,
    }


def main() -> None:
    rows = [run_one(label, name, kwargs) for label, name, kwargs in CONFIGURATIONS]
    print(
        format_table(
            rows,
            ["configuration", "makespan", "blocked_ticks", "aborts", "throughput", "serialisable"],
            title="Producer/consumer queues: conflict granularity comparison",
        )
    )
    operation_row = rows[0]
    step_row = rows[1]
    speedup = operation_row["makespan"] / step_row["makespan"] if step_row["makespan"] else 1.0
    print(
        f"\nStep-level locking finishes the same work {speedup:.2f}x faster than\n"
        "operation-level locking because enqueues and dequeues of different items\n"
        "no longer exclude one another (the paper's Section 5.1 claim)."
    )


if __name__ == "__main__":
    main()
