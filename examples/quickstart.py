"""Quickstart: build a tiny object base, run transactions, certify the run.

This example walks through the library's three layers in ~60 lines:

1. define objects (a bank account and a FIFO queue) and a nested
   transaction type on the environment;
2. execute a handful of concurrent transactions under nested two-phase
   locking (Moss' algorithm, Theorem 3 of the paper);
3. certify the recorded history: legality, serialisation-graph acyclicity
   (Theorem 2) and the modular conditions of Theorem 5.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro.analysis import certify_run, format_table, history_statistics
from repro.objectbase import MethodDefinition, ObjectBase
from repro.objectbase.adts import bank_account_definition, fifo_queue_definition
from repro.scheduler import make_scheduler
from repro.simulation import SimulationEngine, TransactionSpec


def build_object_base() -> ObjectBase:
    """Two accounts, one settlement queue, and a 'pay' transaction type."""
    base = ObjectBase()
    base.register(bank_account_definition("alice", initial_balance=100))
    base.register(bank_account_definition("bob", initial_balance=100))
    base.register(fifo_queue_definition("settlement-queue"))

    def pay(ctx, payer: str, payee: str, amount: float):
        # A nested transaction: withdraw, then deposit, then log the payment.
        paid = yield ctx.invoke(payer, "withdraw", amount)
        if not paid:
            return "insufficient funds"
        yield ctx.invoke(payee, "deposit", amount)
        yield ctx.invoke("settlement-queue", "enqueue", (payer, payee, amount))
        return "paid"

    def audit(ctx, accounts):
        balances = yield ctx.parallel(*[ctx.call(name, "balance") for name in accounts])
        pending = yield ctx.invoke("settlement-queue", "length")
        return {"total": sum(balances), "pending_settlements": pending}

    base.register_transaction(MethodDefinition("pay", pay))
    base.register_transaction(MethodDefinition("audit", audit, read_only=True))
    return base


def main() -> None:
    base = build_object_base()
    scheduler = make_scheduler("n2pl")  # nested two-phase locking (Moss)
    engine = SimulationEngine(base, scheduler, seed=7)

    engine.submit_all(
        [
            TransactionSpec("pay", ("alice", "bob", 30.0)),
            TransactionSpec("pay", ("bob", "alice", 45.0)),
            TransactionSpec("pay", ("alice", "bob", 500.0)),  # will bounce
            TransactionSpec("audit", (("alice", "bob"),)),
        ]
    )
    result = engine.run()

    print("== run metrics ==")
    print(format_table([result.summary()], ["scheduler", "committed", "aborted_attempts", "total_ticks", "throughput"]))

    print("\n== final states (committed projection) ==")
    finals = result.final_states()
    for name in ("alice", "bob", "settlement-queue"):
        print(f"  {name}: {dict(finals[name])}")

    print("\n== history structure ==")
    stats = history_statistics(result.history)
    print(
        f"  {stats.top_level_executions} top-level transactions, {stats.executions} method "
        f"executions, {stats.local_steps} local steps, max nesting depth {stats.max_nesting_depth}"
    )

    print("\n== certification (Theorems 2 and 5, applied to the run) ==")
    report = certify_run(result)
    print(f"  legal history:        {report.legal}")
    print(f"  serialisable (SG):    {report.serialisable}")
    print(f"  Theorem 5 conditions: {report.theorem5_holds}")
    print(f"  equivalent serial order of transactions: {' < '.join(report.serial_order)}")


if __name__ == "__main__":
    main()
