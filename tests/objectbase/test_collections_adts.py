"""Unit tests for the queue, key-value store, set, log and directory ADTs."""

from repro.core import LocalStep, ObjectState
from repro.objectbase.adts.append_log import (
    Append,
    AppendLogConflicts,
    AppendLogStepConflicts,
    LogLength,
    ReadAt,
    append_log_definition,
)
from repro.objectbase.adts.directory import (
    CreateFile,
    DirectoryConflicts,
    ListDirectory,
    MakeDirectory,
    PathExists,
    RemoveEntry,
    directory_definition,
)
from repro.objectbase.adts.fifo_queue import (
    Dequeue,
    Enqueue,
    FifoQueueConflicts,
    FifoQueueStepConflicts,
    QueueLength,
    fifo_queue_definition,
)
from repro.objectbase.adts.kv_store import (
    CountEntries,
    Delete,
    Insert,
    KVStoreConflicts,
    KVStoreStepConflicts,
    Lookup,
    kv_store_definition,
)
from repro.objectbase.adts.set_object import (
    AddMember,
    Contains,
    RemoveMember,
    SetConflicts,
    SetSize,
    SetStepConflicts,
    set_definition,
)


def step(operation, value, object_name="obj"):
    return LocalStep("e", object_name, operation, value)


class TestFifoQueue:
    def test_enqueue_dequeue_order(self):
        state = fifo_queue_definition("q").initial_state
        _, state = Enqueue("a").apply(state)
        _, state = Enqueue("b").apply(state)
        first, state = Dequeue().apply(state)
        second, state = Dequeue().apply(state)
        empty, _ = Dequeue().apply(state)
        assert (first, second, empty) == ("a", "b", None)

    def test_length_observer(self):
        state = fifo_queue_definition("q", ("x", "y")).initial_state
        length, _ = QueueLength().apply(state)
        assert length == 2

    def test_operation_level_is_conservative(self):
        spec = FifoQueueConflicts()
        assert spec.operations_conflict(Enqueue("a"), Dequeue())
        assert spec.operations_conflict(Dequeue(), Dequeue())
        assert not spec.operations_conflict(QueueLength(), QueueLength())

    def test_step_level_enqueue_dequeue_rule(self):
        spec = FifoQueueStepConflicts()
        enqueue = step(Enqueue("item-1"), None)
        dequeue_other = step(Dequeue(), "seed-item")
        dequeue_same = step(Dequeue(), "item-1")
        dequeue_empty = step(Dequeue(), None)
        # Enqueue first: only the dequeue that removed the new item conflicts.
        assert not spec.steps_conflict(enqueue, dequeue_other)
        assert spec.steps_conflict(enqueue, dequeue_same)
        # Dequeue first: only a dequeue that found the queue empty conflicts.
        assert not spec.steps_conflict(dequeue_other, enqueue)
        assert spec.steps_conflict(dequeue_empty, enqueue)

    def test_step_level_dequeue_pairs(self):
        spec = FifoQueueStepConflicts()
        assert spec.steps_conflict(step(Dequeue(), "a"), step(Dequeue(), "b"))
        assert not spec.steps_conflict(step(Dequeue(), None), step(Dequeue(), None))

    def test_step_level_length_rule(self):
        spec = FifoQueueStepConflicts()
        assert not spec.steps_conflict(step(QueueLength(), 3), step(Dequeue(), None))
        assert spec.steps_conflict(step(QueueLength(), 3), step(Dequeue(), "a"))
        assert spec.steps_conflict(step(QueueLength(), 3), step(Enqueue("x"), None))

    def test_definition_methods(self):
        definition = fifo_queue_definition("q", ("a",))
        assert set(definition.methods) == {"enqueue", "dequeue", "length"}
        assert definition.initial_state["items"] == ("a",)


class TestKVStore:
    def test_insert_lookup_delete_roundtrip(self):
        state = kv_store_definition("kv", {"a": 1}).initial_state
        previous, state = Insert("b", 2).apply(state)
        assert previous is None
        value, _ = Lookup("b").apply(state)
        assert value == 2
        removed, state = Delete("a").apply(state)
        assert removed == 1
        missing, state = Delete("a").apply(state)
        assert missing is None
        count, _ = CountEntries().apply(state)
        assert count == 1

    def test_key_granularity_conflicts(self):
        spec = KVStoreConflicts()
        assert not spec.operations_conflict(Insert("a", 1), Insert("b", 2))
        assert spec.operations_conflict(Insert("a", 1), Lookup("a"))
        assert not spec.operations_conflict(Lookup("a"), Lookup("a"))
        assert spec.operations_conflict(CountEntries(), Insert("a", 1))
        assert not spec.operations_conflict(CountEntries(), Lookup("a"))

    def test_step_level_redundant_delete(self):
        spec = KVStoreStepConflicts()
        absent_delete = step(Delete("a"), None)
        absent_lookup = step(Lookup("a"), None)
        assert not spec.steps_conflict(absent_delete, absent_lookup)
        real_delete = step(Delete("a"), 1)
        assert spec.steps_conflict(real_delete, absent_lookup)

    def test_definition_methods(self):
        assert set(kv_store_definition("kv").methods) == {"lookup", "insert", "delete", "size"}


class TestSetObject:
    def test_add_remove_contains(self):
        state = set_definition("s", {"x"}).initial_state
        added, state = AddMember("y").apply(state)
        assert added is True
        again, state = AddMember("y").apply(state)
        assert again is False
        present, _ = Contains("y").apply(state)
        assert present is True
        removed, state = RemoveMember("x").apply(state)
        assert removed is True
        size, _ = SetSize().apply(state)
        assert size == 1

    def test_element_granularity_conflicts(self):
        spec = SetConflicts()
        assert not spec.operations_conflict(AddMember("a"), AddMember("b"))
        assert spec.operations_conflict(AddMember("a"), Contains("a"))
        assert not spec.operations_conflict(Contains("a"), Contains("a"))
        assert spec.operations_conflict(SetSize(), AddMember("a"))

    def test_step_level_redundant_mutations(self):
        spec = SetStepConflicts()
        redundant_add = step(AddMember("a"), False)
        contains = step(Contains("a"), True)
        assert not spec.steps_conflict(redundant_add, contains)
        effective_add = step(AddMember("a"), True)
        assert spec.steps_conflict(effective_add, contains)
        assert not spec.steps_conflict(redundant_add, step(AddMember("a"), False))


class TestAppendLog:
    def test_append_assigns_indexes(self):
        state = append_log_definition("log").initial_state
        index0, state = Append("first").apply(state)
        index1, state = Append("second").apply(state)
        assert (index0, index1) == (0, 1)
        entry, _ = ReadAt(1).apply(state)
        assert entry == "second"
        missing, _ = ReadAt(7).apply(state)
        assert missing is None
        length, _ = LogLength().apply(state)
        assert length == 2

    def test_operation_level_conflicts(self):
        spec = AppendLogConflicts()
        assert spec.operations_conflict(Append("a"), Append("b"))
        assert not spec.operations_conflict(ReadAt(0), ReadAt(1))
        assert not spec.operations_conflict(ReadAt(0), LogLength())
        assert spec.operations_conflict(Append("a"), LogLength())

    def test_step_level_read_vs_append(self):
        spec = AppendLogStepConflicts()
        append = step(Append("x"), 5)
        earlier_read = step(ReadAt(2), "value")
        same_position_read = step(ReadAt(5), "x")
        unwritten_read = step(ReadAt(9), None)
        assert not spec.steps_conflict(append, earlier_read)
        assert spec.steps_conflict(append, same_position_read)
        assert spec.steps_conflict(append, unwritten_read)


class TestDirectory:
    def test_mkdir_create_list_remove(self):
        state = directory_definition("fs").initial_state
        created, state = MakeDirectory("home").apply(state)
        assert created is True
        nested, state = MakeDirectory("home/user").apply(state)
        assert nested is True
        file_created, state = CreateFile("home/user/notes.txt").apply(state)
        assert file_created is True
        orphan, state = CreateFile("missing/child").apply(state)
        assert orphan is False
        listing, _ = ListDirectory("home/user").apply(state)
        assert listing == ("notes.txt",)
        exists, _ = PathExists("home/user/notes.txt").apply(state)
        assert exists is True
        removed, state = RemoveEntry("home").apply(state)
        assert removed is True
        gone, _ = PathExists("home/user").apply(state)
        assert gone is False

    def test_path_granularity_conflicts(self):
        spec = DirectoryConflicts()
        assert not spec.operations_conflict(CreateFile("a/x"), CreateFile("b/y"))
        assert spec.operations_conflict(CreateFile("a/x"), RemoveEntry("a"))
        assert spec.operations_conflict(ListDirectory("a"), CreateFile("a/x"))
        assert not spec.operations_conflict(ListDirectory("a"), CreateFile("b/y"))
        assert not spec.operations_conflict(PathExists("a/x"), PathExists("a/x"))
        # Creating two entries in the same parent directory conflicts (their
        # common parent listing changes either way).
        assert spec.operations_conflict(CreateFile("a/x"), CreateFile("a/y"))

    def test_definition_methods(self):
        assert set(directory_definition("fs").methods) == {
            "mkdir",
            "create",
            "remove",
            "list",
            "exists",
        }
