"""Unit tests for the B-tree index ADT and its pure-functional algorithms."""

import random

import pytest

from repro.core import LocalStep
from repro.core.errors import InvalidOperationError
from repro.objectbase.adts.btree import (
    BTreeConflicts,
    BTreeStepConflicts,
    DeleteKey,
    IndexSize,
    InsertKey,
    RangeScan,
    SearchKey,
    btree_definition,
    empty_tree,
    tree_delete,
    tree_height,
    tree_insert,
    tree_items,
    tree_range,
    tree_search,
    tree_size,
    validate_tree,
)


def build_tree(keys, degree=2):
    root = empty_tree()
    for key in keys:
        root = tree_insert(root, key, f"value-{key}", degree)
    return root


class TestTreeAlgorithms:
    def test_empty_tree_search(self):
        assert tree_search(empty_tree(), 1) is None
        assert tree_size(empty_tree()) == 0
        assert tree_height(empty_tree()) == 1

    def test_sequential_inserts_keep_invariants(self):
        root = build_tree(range(50), degree=2)
        validate_tree(root, 2)
        assert tree_size(root) == 50
        assert [key for key, _ in tree_items(root)] == list(range(50))

    def test_reverse_and_shuffled_inserts(self):
        for keys in (list(range(40, 0, -1)), random.Random(7).sample(range(200), 60)):
            root = build_tree(keys, degree=3)
            validate_tree(root, 3)
            assert sorted(keys) == [key for key, _ in tree_items(root)]

    def test_overwrite_keeps_single_binding(self):
        root = build_tree([5, 5, 5])
        assert tree_size(root) == 1
        assert tree_search(root, 5) == "value-5"

    def test_height_grows_logarithmically(self):
        root = build_tree(range(200), degree=3)
        assert tree_height(root) <= 5

    def test_delete_existing_and_missing(self):
        root = build_tree(range(20))
        root, removed = tree_delete(root, 7, 2)
        assert removed is True
        assert tree_search(root, 7) is None
        root, removed = tree_delete(root, 7, 2)
        assert removed is False
        validate_tree(root, 2)

    def test_delete_everything(self):
        keys = list(range(30))
        root = build_tree(keys, degree=2)
        random.Random(3).shuffle(keys)
        for key in keys:
            root, removed = tree_delete(root, key, 2)
            assert removed
            validate_tree(root, 2)
        assert tree_size(root) == 0

    def test_range_scan(self):
        root = build_tree(range(0, 100, 3), degree=3)
        result = tree_range(root, 10, 40)
        assert result == [(key, f"value-{key}") for key in range(12, 41, 3)]

    def test_validate_rejects_corrupt_tree(self):
        bad = ("leaf", (3, 1, 2), ("a", "b", "c"))
        with pytest.raises(InvalidOperationError):
            validate_tree(bad, 2)


class TestBTreeOperations:
    def test_insert_search_delete_operations(self):
        definition = btree_definition("idx", degree=2, initial_items={1: "one"})
        state = definition.initial_state
        previous, state = InsertKey(2, "two").apply(state)
        assert previous is None
        value, _ = SearchKey(2).apply(state)
        assert value == "two"
        overwritten, state = InsertKey(2, "TWO").apply(state)
        assert overwritten == "two"
        removed, state = DeleteKey(1).apply(state)
        assert removed is True
        missing, state = DeleteKey(1).apply(state)
        assert missing is False
        size, _ = IndexSize().apply(state)
        assert size == 1

    def test_range_scan_operation(self):
        definition = btree_definition("idx", degree=2, initial_items={i: i * 10 for i in range(10)})
        rows, _ = RangeScan(3, 6).apply(definition.initial_state)
        assert rows == ((3, 30), (4, 40), (5, 50), (6, 60))

    def test_degree_must_be_at_least_two(self):
        with pytest.raises(InvalidOperationError):
            btree_definition("idx", degree=1)

    def test_definition_methods_and_synchroniser_hint(self):
        definition = btree_definition("idx")
        assert set(definition.methods) == {"search", "insert", "delete", "range", "size"}
        assert definition.intra_object_synchroniser == "btree-key-locking"


class TestBTreeConflicts:
    def test_key_granularity_for_observers(self):
        spec = BTreeConflicts()
        assert spec.operations_conflict(InsertKey(1, "a"), SearchKey(1))
        assert not spec.operations_conflict(InsertKey(1, "a"), SearchKey(2))
        assert not spec.operations_conflict(SearchKey(1), SearchKey(1))
        assert spec.operations_conflict(DeleteKey(1), InsertKey(1, "a"))

    def test_mutators_conflict_structurally_even_on_distinct_keys(self):
        # The object's state is the physical node structure, so splits and
        # merges make distinct-key mutations order-dependent.
        spec = BTreeConflicts()
        assert spec.operations_conflict(InsertKey(1, "a"), InsertKey(2, "b"))
        assert spec.operations_conflict(DeleteKey(1), InsertKey(2, "b"))

    def test_range_scan_conflicts_only_inside_interval(self):
        spec = BTreeConflicts()
        assert spec.operations_conflict(RangeScan(0, 10), InsertKey(5, "a"))
        assert not spec.operations_conflict(RangeScan(0, 10), InsertKey(50, "a"))
        assert not spec.operations_conflict(RangeScan(0, 10), SearchKey(5))
        assert not spec.operations_conflict(RangeScan(0, 10), RangeScan(5, 15))

    def test_size_conflicts_with_mutators_only(self):
        spec = BTreeConflicts()
        assert spec.operations_conflict(IndexSize(), InsertKey(1, "a"))
        assert not spec.operations_conflict(IndexSize(), SearchKey(1))

    def test_step_level_redundant_delete(self):
        spec = BTreeStepConflicts()
        redundant = LocalStep("e", "idx", DeleteKey(9), False)
        search = LocalStep("e2", "idx", SearchKey(9), None)
        assert not spec.steps_conflict(redundant, search)
        effective = LocalStep("e", "idx", DeleteKey(9), True)
        assert spec.steps_conflict(effective, search)
