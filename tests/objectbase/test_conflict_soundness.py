"""Soundness of declared conflict specifications.

A conflict specification is allowed to be conservative (declare a conflict
where the operations actually commute) but must never be unsound: whenever
it declares that two operations or steps do *not* conflict, transposing
them on any reachable state must leave return values and the final state
unchanged (Definition 3).  These tests check that property for every ADT by
exhaustively comparing the declared relation against the semantic one on a
collection of representative states.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import (
    ObjectState,
    operations_commute_on_states,
    steps_commute_on_states,
)
from repro.core.operations import LocalStep
from repro.objectbase.adts import (
    bank_account_definition,
    btree_definition,
    counter_definition,
    fifo_queue_definition,
    kv_store_definition,
    register_definition,
    set_definition,
)
from repro.objectbase.adts.bank_account import Deposit, GetBalance, Withdraw
from repro.objectbase.adts.btree import DeleteKey, IndexSize, InsertKey, RangeScan, SearchKey
from repro.objectbase.adts.counter import AddToCounter, GetCount
from repro.objectbase.adts.fifo_queue import Dequeue, Enqueue, QueueLength
from repro.objectbase.adts.kv_store import CountEntries, Delete, Insert, Lookup
from repro.objectbase.adts.register import ReadRegister, WriteRegister
from repro.objectbase.adts.set_object import AddMember, Contains, RemoveMember, SetSize


def assert_operation_spec_sound(spec, operations, states):
    """Declared non-conflicts must commute semantically on every sample state."""
    for first, second in itertools.product(operations, repeat=2):
        if not spec.operations_conflict(first, second):
            assert operations_commute_on_states(first, second, states), (
                f"{first!r} and {second!r} are declared non-conflicting but do not commute"
            )


def assert_step_spec_sound(spec, operations, states, object_name):
    """Same soundness check for the step-level (return-value aware) relation."""
    for state in states:
        for first_op, second_op in itertools.product(operations, repeat=2):
            first_value, middle = first_op.apply(state)
            second_value, _ = second_op.apply(middle)
            first = LocalStep("e1", object_name, first_op, first_value)
            second = LocalStep("e2", object_name, second_op, second_value)
            if not spec.steps_conflict(first, second):
                assert steps_commute_on_states(first, second, [state]), (
                    f"steps {first!r}, {second!r} declared non-conflicting but do not "
                    f"commute on {dict(state)!r}"
                )


class TestRegisterSoundness:
    states = [ObjectState({"value": v}) for v in (0, 1, "text")]
    operations = [ReadRegister(), WriteRegister(1), WriteRegister(2)]

    def test_operation_level(self):
        definition = register_definition("r")
        assert_operation_spec_sound(definition.conflicts("operation"), self.operations, self.states)

    def test_step_level(self):
        definition = register_definition("r")
        assert_step_spec_sound(definition.conflicts("step"), self.operations, self.states, "r")


class TestCounterSoundness:
    states = [ObjectState({"count": value}) for value in (0, 5, -3)]
    operations = [AddToCounter(1), AddToCounter(-2), GetCount()]

    def test_operation_level(self):
        definition = counter_definition("c")
        assert_operation_spec_sound(definition.conflicts("operation"), self.operations, self.states)


class TestBankAccountSoundness:
    states = [ObjectState({"balance": value}) for value in (0, 10, 100)]
    operations = [Deposit(10), Deposit(5), Withdraw(8), Withdraw(150), GetBalance()]

    def test_operation_level(self):
        definition = bank_account_definition("a")
        assert_operation_spec_sound(definition.conflicts("operation"), self.operations, self.states)

    def test_step_level(self):
        definition = bank_account_definition("a")
        assert_step_spec_sound(definition.conflicts("step"), self.operations, self.states, "a")


class TestQueueSoundness:
    states = [
        ObjectState({"items": ()}),
        ObjectState({"items": ("a",)}),
        ObjectState({"items": ("a", "b", "c")}),
    ]
    operations = [Enqueue("x"), Enqueue("y"), Dequeue(), QueueLength()]

    def test_operation_level(self):
        definition = fifo_queue_definition("q")
        assert_operation_spec_sound(definition.conflicts("operation"), self.operations, self.states)

    def test_step_level(self):
        definition = fifo_queue_definition("q")
        assert_step_spec_sound(definition.conflicts("step"), self.operations, self.states, "q")


class TestKVStoreSoundness:
    states = [
        ObjectState({"entries": {}}),
        ObjectState({"entries": {"a": 1}}),
        ObjectState({"entries": {"a": 1, "b": 2}}),
    ]
    operations = [Lookup("a"), Lookup("b"), Insert("a", 9), Insert("c", 3), Delete("a"), Delete("z"), CountEntries()]

    def test_operation_level(self):
        definition = kv_store_definition("kv")
        assert_operation_spec_sound(definition.conflicts("operation"), self.operations, self.states)

    def test_step_level(self):
        definition = kv_store_definition("kv")
        assert_step_spec_sound(definition.conflicts("step"), self.operations, self.states, "kv")


class TestSetSoundness:
    states = [
        ObjectState({"members": frozenset()}),
        ObjectState({"members": frozenset({"a"})}),
        ObjectState({"members": frozenset({"a", "b"})}),
    ]
    operations = [AddMember("a"), AddMember("c"), RemoveMember("a"), RemoveMember("z"), Contains("a"), SetSize()]

    def test_operation_level(self):
        definition = set_definition("s")
        assert_operation_spec_sound(definition.conflicts("operation"), self.operations, self.states)

    def test_step_level(self):
        definition = set_definition("s")
        assert_step_spec_sound(definition.conflicts("step"), self.operations, self.states, "s")


class TestBTreeSoundness:
    @pytest.fixture
    def definition(self):
        return btree_definition("idx", degree=2, initial_items={1: "one", 5: "five", 9: "nine"})

    def test_operation_level(self, definition):
        base = definition.initial_state
        _, grown = InsertKey(3, "three").apply(base)
        _, shrunk = DeleteKey(5).apply(base)
        states = [base, grown, shrunk]
        operations = [
            SearchKey(1),
            SearchKey(2),
            InsertKey(1, "x"),
            InsertKey(7, "y"),
            DeleteKey(5),
            DeleteKey(2),
            RangeScan(0, 4),
            IndexSize(),
        ]
        assert_operation_spec_sound(definition.conflicts("operation"), operations, states)
